//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Renders the vendored serde's [`serde::Value`] tree to JSON text and parses
//! it back: [`to_string`], [`to_string_pretty`], [`from_str`]. Supports the
//! full JSON grammar (nested arrays/objects, string escapes including
//! `\uXXXX`, integer/float distinction) so every round-trip this workspace
//! performs is lossless.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{DeserializeOwned, Serialize};
use std::fmt::{self, Display, Write as _};

mod parse;
mod write;

/// A serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    pub(crate) fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// The usual `serde_json` result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = serde::to_value(value).map_err(|e| Error::msg(e.to_string()))?;
    let mut out = String::new();
    write::compact(&tree, &mut out);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = serde::to_value(value).map_err(|e| Error::msg(e.to_string()))?;
    let mut out = String::new();
    write::pretty(&tree, &mut out, 0);
    Ok(out)
}

/// Parses JSON text into any owned deserializable type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let tree = parse::parse(s)?;
    serde::from_value(tree).map_err(|e| Error::msg(e.to_string()))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(v: f64, out: &mut String) {
    if v == 0.0 && v.is_sign_negative() {
        // Plain `{}` prints `-0`, which would re-parse as the integer 0 and
        // lose the sign bit.
        out.push_str("-0.0");
    } else if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's `null`.
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        label: String,
        weight: f64,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        id: u64,
        tags: Vec<String>,
        inner: Nested,
        maybe: Option<i64>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mode {
        Plain,
        Windowed { width: usize },
        Pair(u32),
    }

    #[test]
    fn struct_roundtrip() {
        let v = Outer {
            id: u64::MAX,
            tags: vec!["a\"b".into(), "c\\d".into(), "tab\there".into()],
            inner: Nested {
                label: "x".into(),
                weight: 0.1 + 0.2,
            },
            maybe: None,
        };
        let json = crate::to_string(&v).unwrap();
        let back: Outer = crate::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn enum_roundtrip_all_shapes() {
        for v in [Mode::Plain, Mode::Windowed { width: 5 }, Mode::Pair(9)] {
            let json = crate::to_string(&v).unwrap();
            let back: Mode = crate::from_str(&json).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn f64_extremes_roundtrip() {
        for v in [0.0f64, -0.0, 1e-300, -1e300, f64::MIN_POSITIVE, 2.0] {
            let json = crate::to_string(&v).unwrap();
            let back: f64 = crate::from_str(&json).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Outer {
            id: 1,
            tags: vec![],
            inner: Nested {
                label: String::new(),
                weight: -1.5,
            },
            maybe: Some(-3),
        };
        let json = crate::to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Outer = crate::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(crate::from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(crate::from_str::<u64>("\"nope\"").is_err());
        assert!(crate::from_str::<Vec<u8>>("[1] trailing").is_err());
        // RFC 8259: raw control characters in strings and leading-zero
        // integers are invalid JSON.
        assert!(crate::from_str::<String>("\"a\nb\"").is_err());
        assert!(crate::from_str::<Vec<u8>>("[01]").is_err());
        assert!(crate::from_str::<f64>("-01.5").is_err());
        // Plain zero and fractional zero still parse.
        assert_eq!(crate::from_str::<u64>("0").unwrap(), 0);
        assert_eq!(crate::from_str::<f64>("0.5").unwrap(), 0.5);
    }

    #[test]
    fn missing_optional_field_is_none() {
        // Real serde treats an absent field of type Option<T> as None; the
        // stand-in must match so documents written by either parse in both.
        let v: Outer =
            crate::from_str(r#"{"id":1,"tags":[],"inner":{"label":"x","weight":1.0}}"#).unwrap();
        assert_eq!(v.maybe, None);
        // A missing required field still errors.
        assert!(crate::from_str::<Outer>(r#"{"id":1,"tags":[]}"#).is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = crate::from_str(r#""Aé 😀""#).unwrap();
        assert_eq!(s, "Aé 😀");
        let paired: String = crate::from_str(r#""😀""#).unwrap();
        assert_eq!(paired, "😀");
    }

    #[test]
    fn malformed_surrogates_rejected() {
        // High surrogate whose following escape is not a low surrogate: the
        // parser must error, not mask the code point into a wrong character.
        assert!(crate::from_str::<String>("\"\\uD801\\u0041\"").is_err());
        // High surrogate followed by a literal character.
        assert!(crate::from_str::<String>("\"\\uD801A\"").is_err());
        // Lone high surrogate at end of string.
        assert!(crate::from_str::<String>("\"\\uD801\"").is_err());
        // A valid pair still decodes.
        let smiley: String = crate::from_str("\"\\uD83D\\uDE00\"").unwrap();
        assert_eq!(smiley, "😀");
    }
}
