//! A recursive-descent JSON parser producing the serde stand-in's `Value`.

use crate::{Error, Result};
use serde::Value;

pub(crate) fn parse(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "unterminated array at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "unterminated object at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                if self.bytes[self.pos] < 0x20 {
                    return Err(Error::msg(format!(
                        "unescaped control character 0x{:02x} in string",
                        self.bytes[self.pos]
                    )));
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char> {
        let c = self.peek().ok_or_else(|| Error::msg("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let high = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: require a following `\uXXXX` low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let low = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(Error::msg("invalid low surrogate"));
                        }
                        0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                    } else {
                        return Err(Error::msg("lone high surrogate"));
                    }
                } else {
                    high
                };
                char::from_u32(code).ok_or_else(|| Error::msg("invalid \\u escape"))?
            }
            other => return Err(Error::msg(format!("invalid escape `\\{}`", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        // RFC 8259: no leading zeros on the integer part ("01" is invalid).
        let int_part = text.strip_prefix('-').unwrap_or(text);
        if int_part.len() > 1
            && int_part.starts_with('0')
            && int_part.as_bytes()[1].is_ascii_digit()
        {
            return Err(Error::msg(format!("leading zero in number `{text}`")));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}
