//! JSON text rendering.

use crate::{write_escaped, write_number};
use serde::Value;
use std::fmt::Write as _;

pub(crate) fn compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => write_number(*v, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                compact(val, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn pretty(value: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(key, out);
                out.push_str(": ");
                pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => compact(other, out),
    }
}
