//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually declares — non-generic structs (named,
//! tuple, unit) and enums whose variants are unit, tuple, or struct-like —
//! by parsing the item's token stream directly (the build environment has no
//! crates.io access, so `syn`/`quote` are unavailable).
//!
//! Wire format (realized by the sibling `serde`/`serde_json` stand-ins):
//! named structs become objects, newtype structs are transparent, tuple
//! structs become arrays; unit enum variants become `"Variant"` strings and
//! data-carrying variants become `{"Variant": payload}` objects — the same
//! externally-tagged layout real serde defaults to.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stand-in does not support generic types (type `{name}`)");
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other} {name}`"),
    };
    Item { name, shape }
}

/// Advances past attributes (`#[...]`) and a visibility modifier
/// (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` then the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream at top-level commas, treating `<...>` spans as
/// nested so commas inside generic arguments don't split.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("never empty").push(tree);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, got {other:?}"),
            };
            i += 1;
            let shape = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_tuple_fields(g.stream()))
                }
                None => VariantShape::Unit,
                other => panic!("unsupported variant body: {other:?}"),
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const SER_ERR: &str = "<__S::Error as ::serde::ser::Error>::custom";
const DE_ERR: &str = "<__D::Error as ::serde::de::Error>::custom";

/// `("a".to_string(), to_value(expr)?)` pushes for a list of (key, expr).
fn push_fields(out: &mut String, pairs: &[(String, String)]) {
    for (key, expr) in pairs {
        out.push_str(&format!(
            "__out.push((\"{key}\".to_string(), ::serde::to_value({expr}).map_err({SER_ERR})?));\n"
        ));
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.shape {
        Shape::NamedStruct(fields) => {
            body.push_str(
                "let mut __out: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| (f.clone(), format!("&self.{f}")))
                .collect();
            push_fields(&mut body, &pairs);
            body.push_str("__serializer.serialize_value(::serde::Value::Object(__out))\n");
        }
        Shape::TupleStruct(1) => {
            body.push_str(&format!(
                "__serializer.serialize_value(::serde::to_value(&self.0).map_err({SER_ERR})?)\n"
            ));
        }
        Shape::TupleStruct(n) => {
            body.push_str(
                "let mut __out: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n",
            );
            for i in 0..*n {
                body.push_str(&format!(
                    "__out.push(::serde::to_value(&self.{i}).map_err({SER_ERR})?);\n"
                ));
            }
            body.push_str("__serializer.serialize_value(::serde::Value::Array(__out))\n");
        }
        Shape::UnitStruct => {
            body.push_str("__serializer.serialize_value(::serde::Value::Null)\n");
        }
        Shape::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => body.push_str(&format!(
                        "{name}::{vname} => __serializer.serialize_value(\
                         ::serde::Value::Str(\"{vname}\".to_string())),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            format!("::serde::to_value(__f0).map_err({SER_ERR})?")
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::to_value({b}).map_err({SER_ERR})?"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        body.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let __payload = {payload};\n\
                             __serializer.serialize_value(::serde::Value::Object(vec![\
                             (\"{vname}\".to_string(), __payload)]))\n}}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::new();
                        inner.push_str(
                            "let mut __out: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        let pairs: Vec<(String, String)> =
                            fields.iter().map(|f| (f.clone(), f.clone())).collect();
                        push_fields(&mut inner, &pairs);
                        body.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n{inner}\
                             __serializer.serialize_value(::serde::Value::Object(vec![\
                             (\"{vname}\".to_string(), ::serde::Value::Object(__out))]))\n}}\n"
                        ));
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}}}\n}}\n"
    )
}

fn take_named(fields: &[String], target: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::take_field(&mut __obj, \"{f}\").map_err({DE_ERR})?"))
        .collect();
    format!("{target} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    body.push_str("let __value = __deserializer.into_value()?;\n");
    match &item.shape {
        Shape::NamedStruct(fields) => {
            let build = take_named(fields, name);
            body.push_str(&format!(
                "match __value {{\n\
                 ::serde::Value::Object(mut __obj) => ::std::result::Result::Ok({build}),\n\
                 __other => ::std::result::Result::Err({DE_ERR}(::std::format!(\
                 \"expected object for {name}, got {{}}\", __other.kind()))),\n}}\n"
            ));
        }
        Shape::TupleStruct(1) => {
            body.push_str(&format!(
                "::std::result::Result::Ok({name}(::serde::from_value(__value).map_err({DE_ERR})?))\n"
            ));
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|_| {
                    format!(
                        "::serde::from_value(__iter.next().ok_or_else(|| {DE_ERR}(\
                         \"array too short\".to_string()))?).map_err({DE_ERR})?"
                    )
                })
                .collect();
            body.push_str(&format!(
                "match __value {{\n\
                 ::serde::Value::Array(__items) => {{\n\
                 let mut __iter = __items.into_iter();\n\
                 ::std::result::Result::Ok({name}({}))\n}}\n\
                 __other => ::std::result::Result::Err({DE_ERR}(::std::format!(\
                 \"expected array for {name}, got {{}}\", __other.kind()))),\n}}\n",
                items.join(", ")
            ));
        }
        Shape::UnitStruct => {
            body.push_str(&format!("::std::result::Result::Ok({name})\n"));
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::from_value(__payload).map_err({DE_ERR})?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|_| {
                                format!(
                                    "::serde::from_value(__iter.next().ok_or_else(|| {DE_ERR}(\
                                     \"array too short\".to_string()))?).map_err({DE_ERR})?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __payload {{\n\
                             ::serde::Value::Array(__items) => {{\n\
                             let mut __iter = __items.into_iter();\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}}\n\
                             __other => ::std::result::Result::Err({DE_ERR}(::std::format!(\
                             \"expected array payload, got {{}}\", __other.kind()))),\n}},\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let build = take_named(fields, &format!("{name}::{vname}"));
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __payload {{\n\
                             ::serde::Value::Object(mut __obj) => \
                             ::std::result::Result::Ok({build}),\n\
                             __other => ::std::result::Result::Err({DE_ERR}(::std::format!(\
                             \"expected object payload, got {{}}\", __other.kind()))),\n}},\n"
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "match __value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err({DE_ERR}(::std::format!(\
                 \"unknown variant `{{__other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Object(__obj) if __obj.len() == 1 => {{\n\
                 let (__tag, __payload) = __obj.into_iter().next().expect(\"length checked\");\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => ::std::result::Result::Err({DE_ERR}(::std::format!(\
                 \"unknown variant `{{__other}}` for {name}\"))),\n}}\n}}\n\
                 __other => ::std::result::Result::Err({DE_ERR}(::std::format!(\
                 \"expected enum value for {name}, got {{}}\", __other.kind()))),\n}}\n"
            ));
        }
    }
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n{body}}}\n}}\n"
    )
}
