//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal serde: the [`Serialize`] / [`Deserialize`] traits (plus derive
//! macros of the same names, re-exported from `serde_derive`), routed through
//! an in-memory [`Value`] tree instead of serde's visitor machinery. The
//! sibling `serde_json` stand-in renders that tree to and from JSON text.
//!
//! The public shapes match real serde closely enough that every call site in
//! this workspace (derives, manual `impl Serialize`/`Deserialize` with
//! `S::Ok`/`S::Error`/`D::Error::custom`, `serde_json::to_string`/`from_str`)
//! compiles unchanged against the real crates if they are swapped back in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod ser;
mod value;

pub use value::Value;

/// A type that can be serialized through any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for serialized data. In this stand-in, a serializer consumes a
/// fully built [`Value`] tree.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Consumes a finished value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be deserialized through any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A source of serialized data. In this stand-in, a deserializer yields a
/// fully parsed [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Produces the parsed value tree.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// The error type used by the in-memory value serializer/deserializer.
#[derive(Clone, Debug)]
pub struct SimpleError(pub String);

impl Display for SimpleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SimpleError {}

impl ser::Error for SimpleError {
    fn custom<T: Display>(msg: T) -> Self {
        SimpleError(msg.to_string())
    }
}

impl de::Error for SimpleError {
    fn custom<T: Display>(msg: T) -> Self {
        SimpleError(msg.to_string())
    }
}

struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = SimpleError;

    fn serialize_value(self, value: Value) -> Result<Value, SimpleError> {
        Ok(value)
    }
}

struct ValueDeserializer(Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = SimpleError;

    fn into_value(self) -> Result<Value, SimpleError> {
        Ok(self.0)
    }
}

/// Serializes any value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, SimpleError> {
    value.serialize(ValueSerializer)
}

/// Deserializes any owned type from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, SimpleError> {
    T::deserialize(ValueDeserializer(value))
}

/// Removes and deserializes the named field from a decoded object's field
/// list. Used by derived `Deserialize` impls.
pub fn take_field<T: DeserializeOwned>(
    fields: &mut Vec<(String, Value)>,
    name: &str,
) -> Result<T, SimpleError> {
    match fields.iter().position(|(k, _)| k == name) {
        Some(idx) => from_value(fields.remove(idx).1),
        // A missing field is treated as `null`, so `Option<T>` fields absent
        // from the document become `None` (matching real serde's
        // missing-optional behavior) while required fields still error.
        None => from_value(Value::Null).map_err(|_| SimpleError(format!("missing field `{name}`"))),
    }
}
