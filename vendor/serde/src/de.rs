//! Deserialization half: the error trait and `Deserialize` impls for std
//! types.

use crate::{from_value, Deserialize, Deserializer, Value};
use std::fmt::Display;

pub use crate::DeserializeOwned;

/// Errors produced during deserialization.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

fn unexpected<E: Error, T>(expected: &str, got: &Value) -> Result<T, E> {
    Err(E::custom(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

macro_rules! impl_de_uint {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.into_value()? {
                    Value::U64(v) => <$ty>::try_from(v)
                        .map_err(|_| D::Error::custom(format!("{v} out of range"))),
                    other => unexpected("unsigned integer", &other),
                }
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let raw: i64 = match deserializer.into_value()? {
                    Value::U64(v) => i64::try_from(v)
                        .map_err(|_| D::Error::custom(format!("{v} out of range")))?,
                    Value::I64(v) => v,
                    other => return unexpected("integer", &other),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| D::Error::custom(format!("{raw} out of range")))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::F64(v) => Ok(v),
            // Integral floats print without a decimal point and parse back as
            // integers; accept them here so round-trips are lossless.
            Value::U64(v) => Ok(v as f64),
            Value::I64(v) => Ok(v as f64),
            other => unexpected("number", &other),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Bool(v) => Ok(v),
            other => unexpected("bool", &other),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Str(s) => Ok(s),
            other => unexpected("string", &other),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Null => Ok(None),
            value => from_value(value).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|item| from_value(item).map_err(D::Error::custom))
                .collect(),
            other => unexpected("array", &other),
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($len:literal: $($name:ident),+))*) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                match deserializer.into_value()? {
                    Value::Array(items) => {
                        if items.len() != $len {
                            return Err(De::Error::custom(format!(
                                "expected array of length {}, got {}", $len, items.len()
                            )));
                        }
                        let mut iter = items.into_iter();
                        Ok(($(
                            from_value::<$name>(iter.next().expect("length checked"))
                                .map_err(De::Error::custom)?,
                        )+))
                    }
                    other => unexpected("array", &other),
                }
            }
        }
    )*};
}
impl_de_tuple! {
    (1: A)
    (2: A, B)
    (3: A, B, C)
    (4: A, B, C, D)
}
