//! The in-memory data model every (de)serialization routes through.

/// A JSON-shaped value tree.
///
/// Object fields keep insertion order (a `Vec`, not a map) so serialized
/// output is deterministic and field order mirrors declaration order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered field list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short human-readable tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
