//! Serialization half: the error trait and `Serialize` impls for std types.

use crate::{to_value, Serialize, Serializer, Value};
use std::fmt::Display;

/// Errors produced during serialization.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

macro_rules! impl_ser_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    serializer.serialize_value(Value::U64(v as u64))
                } else {
                    serializer.serialize_value(Value::I64(v))
                }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self as f64))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn seq_to_value<S: Serializer, T: Serialize>(
    items: &[T],
    serializer: S,
) -> Result<S::Ok, S::Error> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        out.push(to_value(item).map_err(S::Error::custom)?);
    }
    serializer.serialize_value(Value::Array(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        seq_to_value(self, serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        seq_to_value(self, serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        seq_to_value(self, serializer)
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let out = vec![
                    $(to_value(&self.$idx).map_err(S::Error::custom)?),+
                ];
                serializer.serialize_value(Value::Array(out))
            }
        }
    )*};
}
impl_ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
