//! The [`Strategy`] trait and primitive strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces one concrete value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Maps generated values to a dependent strategy and samples it.
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.erased_generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut StdRng) -> O::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = (1usize..4).prop_flat_map(|len| {
            crate::collection::vec(0u8..10, len..len + 1).prop_map(move |v| (len, v))
        });
        for _ in 0..50 {
            let (len, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), len);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = (5u32..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }
}
