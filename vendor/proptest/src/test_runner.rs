//! Test-runner plumbing: configuration, case rejection, per-test seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the heavier crypto/bigint
        // suites fast while still exercising plenty of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` when a case is rejected.
#[derive(Clone, Copy, Debug)]
pub struct Rejected;

/// Drop guard that reports the failing attempt when a test body panics.
///
/// There is no shrinking in this stand-in, so the replay recipe is the
/// context: generation is seeded from the test name, and the printed attempt
/// index identifies exactly which inputs failed.
pub struct FailureContext {
    name: &'static str,
    attempt: u32,
    armed: bool,
}

impl FailureContext {
    /// Arms the guard for one test case.
    pub fn new(name: &'static str, attempt: u32) -> Self {
        FailureContext {
            name,
            attempt,
            armed: true,
        }
    }

    /// Disarms the guard: the case completed without panicking.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for FailureContext {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest `{}`: failure on attempt {} (deterministic — rerun \
                 replays the same inputs)",
                self.name, self.attempt
            );
        }
    }
}

/// Deterministic per-test generator: seeded from an FNV-1a hash of the test
/// name so every test sees a distinct but reproducible stream.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}
