//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// The size specification for [`vec`]: a fixed length or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_length_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = vec(0u8..255, 2..7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn vec_fixed_length() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = vec(crate::any::<u64>(), 5usize);
        assert_eq!(strat.generate(&mut rng).len(), 5);
    }
}
