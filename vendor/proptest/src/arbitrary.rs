//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_via_gen {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> $ty {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite values spanning many magnitudes, not raw bit patterns:
        // property tests here expect usable arithmetic inputs.
        let mantissa: f64 = rng.gen_range(-1.0..1.0);
        let exp: i32 = rng.gen_range(-60i32..60);
        mantissa * (exp as f64).exp2()
    }
}
