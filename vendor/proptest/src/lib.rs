//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of proptest its property tests use: the [`proptest!`] macro
//! (with optional `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`], the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! `any::<T>()` strategies, [`collection::vec`], and [`sample::subsequence`].
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: no shrinking, and `prop_assert*!` panics do not carry the generated
//! inputs — instead the runner prints the failing attempt number on the way
//! out, and because case generation is seeded deterministically from the test
//! name, re-running the test replays the identical input sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(20).max(100);
            while __accepted < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "proptest `{}`: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name), __accepted, __cfg.cases,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                // On panic, report which deterministic attempt failed so the
                // case can be replayed (generation is seeded from the test
                // name; the attempt index pins the exact inputs).
                let __guard = $crate::test_runner::FailureContext::new(
                    stringify!($name),
                    __attempts,
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                __guard.disarm();
                if __outcome.is_ok() {
                    __accepted += 1;
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        ::std::assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        ::std::assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        ::std::assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        ::std::assert_eq!($left, $right, $($fmt)+)
    };
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}
