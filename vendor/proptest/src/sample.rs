//! Sampling strategies over fixed collections.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A strategy producing order-preserving subsequences of fixed size from a
/// source vector.
pub fn subsequence<T: Clone>(source: Vec<T>, size: usize) -> Subsequence<T> {
    assert!(
        size <= source.len(),
        "subsequence size {size} exceeds source length {}",
        source.len()
    );
    Subsequence { source, size }
}

/// See [`subsequence`].
pub struct Subsequence<T> {
    source: Vec<T>,
    size: usize,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut StdRng) -> Vec<T> {
        let mut indices: Vec<usize> = (0..self.source.len()).collect();
        indices.shuffle(rng);
        let mut picked: Vec<usize> = indices.into_iter().take(self.size).collect();
        picked.sort_unstable();
        picked.into_iter().map(|i| self.source[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn subsequence_preserves_order_and_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let strat = subsequence(vec![0, 1, 2, 3, 4], 3);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert_eq!(s.len(), 3);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
