//! Distributions and uniform range sampling.

use crate::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over the whole domain of integer
/// types, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i128 {
        Distribution::<u128>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform range sampling (`Rng::gen_range`).
pub mod uniform {
    use super::*;
    use core::ops::{Range, RangeInclusive};

    /// A range that can be sampled uniformly.
    pub trait SampleRange<T> {
        /// Draws one value from the range. Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    fn wide(rng: &mut (impl RngCore + ?Sized)) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }

    macro_rules! impl_int_range {
        ($($ty:ty),*) => {$(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((wide(rng) % span) as $ty)
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if span == 0 {
                        // Full u128 domain.
                        return wide(rng) as $ty;
                    }
                    lo.wrapping_add((wide(rng) % span) as $ty)
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u * (self.end - self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
