//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of `rand 0.8`: exactly the items the
//! Chiaroscuro reproduction uses —
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`, `fill_bytes`;
//! * [`SeedableRng`] with `from_seed` and `seed_from_u64`;
//! * [`rngs::StdRng`], here a xoshiro256++ generator seeded via SplitMix64
//!   (deterministic, high statistical quality, no claim of cryptographic
//!   security — same contract callers should assume of the real `StdRng`);
//! * [`seq::SliceRandom`] with `shuffle` (Fisher-Yates) and `choose`.
//!
//! Swapping the real crate back in is a one-line change in the workspace
//! manifest; no call site needs to move.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// The core of a random number generator: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard (uniform) distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from the given range. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills any integer-slice destination with random data.
    fn fill<T: AsMut<[u8]>>(&mut self, dest: &mut T) {
        self.fill_bytes(dest.as_mut());
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64 — the
    /// standard seeding recommended by the xoshiro authors.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}
