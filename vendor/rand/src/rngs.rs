//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Small, fast, passes BigCrush; seeded from a `u64` via SplitMix64 (see
/// [`SeedableRng::seed_from_u64`]). Not cryptographically secure — neither
/// call sites here nor the paper's simulator need that.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro256++ requires a non-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
