//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with simple wall-clock
//! median timing instead of criterion's statistical machinery. Good enough to
//! keep benches compiling, runnable, and comparable run-over-run offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration batching granularity for [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: batch many per setup.
    SmallInput,
    /// Large inputs: few per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation (recorded, echoed in output).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            budget,
        }
    }

    /// Times `routine`, called repeatedly until the time budget is spent.
    ///
    /// Fast routines are batched so each recorded sample covers ~1ms of
    /// calls; otherwise the two `Instant::now()` reads would dominate the
    /// measurement and the samples vector would grow into the millions.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();
        self.samples.push(first);
        let target = Duration::from_millis(1);
        let batch = if first < target {
            (target.as_nanos() / first.as_nanos().max(1)).clamp(1, 10_000_000) as u32
        } else {
            1
        };
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is excluded.
    /// Unbatched: each input is consumed by one timed call.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in is time-budgeted, not
    /// sample-count-driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self._parent.budget);
        f(&mut bencher);
        self.report(&id, bencher.median());
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self._parent.budget);
        f(&mut bencher, input);
        self.report(&id, bencher.median());
        self
    }

    fn report(&self, id: &BenchmarkId, median: Duration) {
        let rate = match (self.throughput, median.as_secs_f64()) {
            (Some(Throughput::Elements(n)), secs) if secs > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / secs)
            }
            (Some(Throughput::Bytes(n)), secs) if secs > 0.0 => {
                format!("  ({:.0} B/s)", n as f64 / secs)
            }
            _ => String::new(),
        };
        println!("{}/{}: median {:?}{}", self.name, id.id, median, rate);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Per-benchmark time budget; keep small so `cargo bench` terminates
        // quickly even for the heavyweight end-to-end benches.
        let millis = std::env::var("CRITERION_STUB_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        Criterion {
            budget: Duration::from_millis(millis),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        let median = bencher.median();
        println!("{}: median {:?}", id.id, median);
        self
    }
}

/// Declares a group of benchmark functions as a single callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
