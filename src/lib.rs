//! # chiaroscuro-repro — workspace facade
//!
//! Re-exports every crate of the Chiaroscuro reproduction so examples and
//! integration tests can use one coherent namespace. See the individual
//! crates for the substance:
//!
//! * [`chiaroscuro`] — the protocol itself (Diptych, engine, participants);
//! * [`cs_bigint`] / [`cs_crypto`] — arbitrary-precision arithmetic and the
//!   Damgård-Jurik threshold cryptosystem;
//! * [`cs_dp`] — Laplace/gamma differential-privacy machinery;
//! * [`cs_gossip`] — the cycle- and event-driven gossip simulators and
//!   push-sum (plaintext and homomorphic);
//! * [`cs_timeseries`] — series types, distances, PAA, synthetic datasets;
//! * [`cs_kmeans`] — the centralized baseline and quality metrics;
//! * [`cs_net`] — the message-passing node runtime: wire codec, threaded
//!   transport, TCP socket transport, churn injection;
//! * [`cs_node`] — the multi-process deployment: `csnoded` daemon,
//!   cluster coordinator, local-cluster supervisor.
#![doc = include_str!("../docs/quickstart.md")]

pub use chiaroscuro;
pub use cs_bigint;
pub use cs_crypto;
pub use cs_dp;
pub use cs_gossip;
pub use cs_kmeans;
pub use cs_net;
pub use cs_node;
pub use cs_obs;
pub use cs_timeseries;

/// `docs/architecture.md`, rendered into rustdoc. Including the guides
/// here compiles and runs their fenced Rust examples as doctests, so the
/// prose can never drift from the APIs it describes.
#[doc = include_str!("../docs/architecture.md")]
pub mod doc_architecture {}

/// `docs/observability.md`, rendered into rustdoc (examples doctested).
#[doc = include_str!("../docs/observability.md")]
pub mod doc_observability {}

/// `docs/benchmarks.md`, rendered into rustdoc (examples doctested).
#[doc = include_str!("../docs/benchmarks.md")]
pub mod doc_benchmarks {}

/// `docs/deployment.md`, rendered into rustdoc (examples doctested).
#[doc = include_str!("../docs/deployment.md")]
pub mod doc_deployment {}
