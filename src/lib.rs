//! # chiaroscuro-repro — workspace facade
//!
//! Re-exports every crate of the Chiaroscuro reproduction so examples and
//! integration tests can use one coherent namespace. See the individual
//! crates for the substance:
//!
//! * [`chiaroscuro`] — the protocol itself (Diptych, engine, participants);
//! * [`cs_bigint`] / [`cs_crypto`] — arbitrary-precision arithmetic and the
//!   Damgård-Jurik threshold cryptosystem;
//! * [`cs_dp`] — Laplace/gamma differential-privacy machinery;
//! * [`cs_gossip`] — the cycle- and event-driven gossip simulators and
//!   push-sum (plaintext and homomorphic);
//! * [`cs_timeseries`] — series types, distances, PAA, synthetic datasets;
//! * [`cs_kmeans`] — the centralized baseline and quality metrics.
//!
//! ## End-to-end in eight lines
//!
//! ```
//! use chiaroscuro::{ChiaroscuroConfig, Engine};
//! use cs_timeseries::datasets::blobs::{generate, BlobsConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let data = generate(&BlobsConfig { count: 60, clusters: 2, len: 6, ..Default::default() }, &mut rng);
//! let mut config = ChiaroscuroConfig::demo_simulated();
//! config.k = 2;
//! config.max_iterations = 2;
//! let output = Engine::new(config).unwrap().run(&data.series).unwrap();
//! assert_eq!(output.centroids.len(), 2);
//! ```

pub use chiaroscuro;
pub use cs_bigint;
pub use cs_crypto;
pub use cs_dp;
pub use cs_gossip;
pub use cs_kmeans;
pub use cs_timeseries;
