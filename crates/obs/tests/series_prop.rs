//! Property tests for the time-series ring: `MetricsSnapshot::since`'s
//! counter-reset semantics must survive being fed through a `SeriesRing`
//! across simulated daemon restarts — rates are non-negative (a restart
//! interval reports the post-restart count, never a negative or a
//! saturated zero) and every within-lifetime interval reports exactly the
//! increments applied during it.

use cs_obs::metrics::Registry;
use cs_obs::series::SeriesRing;
use proptest::collection::vec;
use proptest::prelude::*;

/// One recorded sample's ground truth.
struct Truth {
    cum: u64,
    inc: u64,
    restart_boundary: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rates_are_non_negative_and_window_consistent_across_restarts(
        // Each inner vec is one daemon lifetime: per-step counter
        // increments applied to a fresh registry.
        lifetimes in vec(vec(0u64..1000, 1..6), 1..4),
        capacity in 2usize..10,
    ) {
        let mut ring = SeriesRing::new(capacity);
        let mut truths: Vec<Truth> = Vec::new();
        let mut tick = 0u64;
        for (life, steps) in lifetimes.iter().enumerate() {
            let registry = Registry::new(); // restart: counters re-zero
            let c = registry.counter("net.pushes");
            for (i, inc) in steps.iter().enumerate() {
                c.add(*inc);
                ring.record(tick, registry.snapshot());
                truths.push(Truth {
                    cum: c.get(),
                    inc: *inc,
                    restart_boundary: life > 0 && i == 0,
                });
                tick += 1;
            }
        }

        // Align ground truth to the ring's retained window.
        let retained = ring.len();
        prop_assert_eq!(retained, truths.len().min(capacity));
        let window = &truths[truths.len() - retained..];

        let rates = ring.counter_rates("net.pushes");
        prop_assert_eq!(rates.len(), retained - 1);
        let deltas = ring.deltas();
        let samples: Vec<_> = ring.samples().collect();
        for i in 0..rates.len() {
            let prev = &window[i];
            let cur = &window[i + 1];
            if !cur.restart_boundary {
                prop_assert_eq!(
                    rates[i], cur.inc,
                    "within a lifetime, the rate is exactly the increment"
                );
                // The delta also inverts plus for monotone intervals.
                prop_assert_eq!(
                    &samples[i].snapshot.plus(&deltas[i]),
                    &samples[i + 1].snapshot
                );
            } else if cur.cum < prev.cum {
                prop_assert_eq!(
                    rates[i], cur.cum,
                    "a detected reset reports everything since the restart"
                );
            } else {
                // The reset is arithmetically invisible (the reborn counter
                // already passed the old value); since() can only subtract.
                prop_assert_eq!(rates[i], cur.cum - prev.cum);
            }
        }

        // The view agrees with the piecewise rates.
        let view = ring.view();
        let series = view
            .counters
            .iter()
            .find(|c| c.name == "net.pushes")
            .expect("counter present in view");
        prop_assert_eq!(&series.rates, &rates);
        prop_assert_eq!(series.total, window.last().unwrap().cum);
    }
}
