//! Golden-file tests for the Prometheus text exposition: the byte-exact
//! output is pinned in `tests/fixtures/prom_exposition.txt`, so any
//! accidental change to name sanitization, the cumulative `le` bucket
//! encoding, or the counter/gauge/histogram type headers breaks this test
//! even if the encoder and its unit tests drift together.

use cs_obs::metrics::Registry;
use cs_obs::prom::{encode_text, sanitize_metric_name};

fn golden_registry() -> Registry {
    let registry = Registry::new();
    registry.counter("net.gossip.messages").add(42);
    // Registered but never incremented: still exposed, at zero.
    registry.counter("obs.trace.dropped").add(0);
    // Sanitization edge: leading digit gets an underscore prefix.
    registry.counter("9starts.with.digit").inc();
    registry.gauge("exec.queue.depth").set(-3);
    let h = registry.histogram("phase.gossip.ns");
    h.record(0); // bucket 0 → le="0"
    h.record(1); // bucket 1 → le="1"
    h.record(2); // bucket 2 → le="3"
    h.record(3); // bucket 2
    h.record(512); // bucket 10 → le="1023"
    registry
}

#[test]
fn exposition_matches_the_golden_file_byte_for_byte() {
    let text = encode_text(&golden_registry().snapshot());
    let golden = include_str!("fixtures/prom_exposition.txt");
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from the golden file; if the \
         change is intentional, update tests/fixtures/prom_exposition.txt"
    );
}

#[test]
fn golden_covers_the_three_metric_types() {
    let golden = include_str!("fixtures/prom_exposition.txt");
    assert!(golden.contains("# TYPE net_gossip_messages counter"));
    assert!(golden.contains("# TYPE exec_queue_depth gauge"));
    assert!(golden.contains("# TYPE phase_gossip_ns histogram"));
}

#[test]
fn histogram_buckets_in_the_golden_are_cumulative() {
    // The log₂ buckets hold {0}:1, {1}:1, {2,3}:2, {512..1023}:1; the
    // exposition must accumulate them: 1, 2, 4, 5, and close with +Inf.
    let golden = include_str!("fixtures/prom_exposition.txt");
    let counts: Vec<u64> = golden
        .lines()
        .filter(|l| l.starts_with("phase_gossip_ns_bucket"))
        .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
        .collect();
    assert_eq!(counts, vec![1, 2, 4, 5, 5]);
    assert!(counts.windows(2).all(|w| w[0] <= w[1]), "monotone buckets");
}

#[test]
fn sanitized_names_satisfy_the_prometheus_grammar() {
    for name in [
        "net.gossip.messages",
        "9starts.with.digit",
        "weird name-with/chars",
        "",
    ] {
        let s = sanitize_metric_name(name);
        assert!(!s.is_empty());
        let mut chars = s.chars();
        let first = chars.next().unwrap();
        assert!(
            first.is_ascii_alphabetic() || first == '_' || first == ':',
            "bad first char in {s:?}"
        );
        assert!(
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad char in {s:?}"
        );
    }
}
