//! Prometheus text exposition (format version 0.0.4) for a
//! [`MetricsSnapshot`].
//!
//! The registry's dot-separated metric names are sanitized to the
//! Prometheus grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`), and the sparse
//! log₂-bucket histograms are re-encoded as the *cumulative* `le` buckets
//! the format requires: bucket `i`'s upper bound is
//! [`bucket_upper_bound`]`(i)` and every bucket's count includes all
//! smaller buckets, closed by the mandatory `+Inf` bucket equal to the
//! observation count. The output is deterministic — snapshots are sorted
//! by name, buckets ascend by index — so goldens can assert on it
//! byte-for-byte.

use crate::metrics::{bucket_upper_bound, MetricsSnapshot};
use std::fmt::Write;

/// Maps a registry metric name onto the Prometheus grammar: every byte
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gets a `_`
/// prefix (`net.gossip.bytes` → `net_gossip_bytes`).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if valid { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders `snap` in the Prometheus text format, one `# TYPE` header per
/// metric, counters and gauges as single samples, histograms as
/// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
pub fn encode_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = sanitize_metric_name(&c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snap.gauges {
        let name = sanitize_metric_name(&g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", g.value);
    }
    for h in &snap.histograms {
        let name = sanitize_metric_name(&h.name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for bc in &h.buckets {
            cumulative += bc.count;
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                bucket_upper_bound(bc.bucket as usize)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn sanitization_covers_dots_dashes_and_leading_digits() {
        assert_eq!(sanitize_metric_name("net.gossip.bytes"), "net_gossip_bytes");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok:name_1"), "ok:name_1");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let registry = Registry::new();
        let h = registry.histogram("t.h");
        h.record(0); // bucket 0, le="0"
        h.record(1); // bucket 1, le="1"
        h.record(2); // bucket 2, le="3"
        h.record(3); // bucket 2
        let text = encode_text(&registry.snapshot());
        assert!(text.contains("t_h_bucket{le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("t_h_bucket{le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("t_h_bucket{le=\"3\"} 4\n"), "{text}");
        assert!(text.contains("t_h_bucket{le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("t_h_sum 6\n"), "{text}");
        assert!(text.contains("t_h_count 4\n"), "{text}");
    }
}
