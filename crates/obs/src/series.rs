//! Time-series telemetry: a fixed-capacity ring of [`MetricsSnapshot`]
//! samples with rate/derivative views and windowed quantiles.
//!
//! The point-in-time registry answers "how many so far"; a long-lived
//! daemon also needs "how fast, lately". A [`SeriesRing`] keeps the last
//! `capacity` scrapes (one per step or epoch, pushed by whoever drives the
//! sampling — the ring itself never scrapes), evicting the oldest, and
//! derives the continuous views from them:
//!
//! * **counter rates** — per-interval deltas via [`MetricsSnapshot::since`],
//!   so a daemon restart mid-window reports the post-restart count instead
//!   of a bogus negative (the counter-reset semantics `since` pins down);
//! * **gauge derivatives** — signed level changes between samples;
//! * **windowed quantiles** — p50/p95/p99 from the log₂ histograms of the
//!   newest-minus-oldest window delta, i.e. over the ring's horizon rather
//!   than the process lifetime.
//!
//! [`SeriesRing::view`] flattens all of that into the serializable
//! [`SeriesView`] the `/series` HTTP route returns.

use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One sample in a [`SeriesRing`]: a scrape tagged with the tick (step,
/// epoch, or poll number — whatever cadence the sampler chose) it was
/// taken at.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesSample {
    /// Sampler-defined position on the ring's axis (monotone per process
    /// lifetime; a restart may rewind it, which the rate views absorb).
    pub tick: u64,
    /// The scrape taken at `tick`.
    pub snapshot: MetricsSnapshot,
}

/// A fixed-capacity, drop-oldest ring of metric scrapes.
#[derive(Debug)]
pub struct SeriesRing {
    capacity: usize,
    samples: VecDeque<SeriesSample>,
}

impl SeriesRing {
    /// A ring holding at most `capacity` samples (clamped to at least 2 —
    /// one sample yields no interval, so no rates).
    pub fn new(capacity: usize) -> SeriesRing {
        let capacity = capacity.max(2);
        SeriesRing {
            capacity,
            samples: VecDeque::with_capacity(capacity),
        }
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` iff nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends a sample, evicting the oldest at capacity.
    pub fn record(&mut self, tick: u64, snapshot: MetricsSnapshot) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(SeriesSample { tick, snapshot });
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &SeriesSample> {
        self.samples.iter()
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<&SeriesSample> {
        self.samples.back()
    }

    /// The oldest retained sample, if any.
    pub fn oldest(&self) -> Option<&SeriesSample> {
        self.samples.front()
    }

    /// Consecutive per-interval deltas (`samples[i+1].since(samples[i])`),
    /// oldest interval first — length `len() − 1` (empty below two
    /// samples). Counter-reset semantics are `since`'s: an interval that
    /// spans a restart reports the post-restart counts, never a negative.
    pub fn deltas(&self) -> Vec<MetricsSnapshot> {
        self.samples
            .iter()
            .zip(self.samples.iter().skip(1))
            .map(|(earlier, later)| later.snapshot.since(&earlier.snapshot))
            .collect()
    }

    /// The per-interval rate series of one counter, oldest interval first.
    pub fn counter_rates(&self, name: &str) -> Vec<u64> {
        self.deltas().iter().map(|d| d.counter(name)).collect()
    }

    /// The whole window's delta: newest sample since oldest, `None` below
    /// two samples. This is what the windowed quantiles are computed from.
    pub fn window_delta(&self) -> Option<MetricsSnapshot> {
        match (self.samples.front(), self.samples.back()) {
            (Some(first), Some(last)) if self.samples.len() >= 2 => {
                Some(last.snapshot.since(&first.snapshot))
            }
            _ => None,
        }
    }

    /// Flattens the ring into the serializable [`SeriesView`] served at
    /// `/series`: ticks, per-counter rates, per-gauge levels, and windowed
    /// p50/p95/p99 for every histogram.
    pub fn view(&self) -> SeriesView {
        let ticks: Vec<u64> = self.samples.iter().map(|s| s.tick).collect();
        let deltas = self.deltas();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut quantiles = Vec::new();
        if let Some(latest) = self.samples.back() {
            counters = latest
                .snapshot
                .counters
                .iter()
                .map(|c| CounterSeries {
                    name: c.name.clone(),
                    total: c.value,
                    rates: deltas.iter().map(|d| d.counter(&c.name)).collect(),
                })
                .collect();
            gauges = latest
                .snapshot
                .gauges
                .iter()
                .map(|g| GaugeSeries {
                    name: g.name.clone(),
                    levels: self
                        .samples
                        .iter()
                        .map(|s| s.snapshot.gauge(&g.name))
                        .collect(),
                })
                .collect();
            // Quantiles over the ring's horizon when there is a window,
            // over the lifetime scrape when only one sample exists yet.
            let window = self.window_delta();
            let source = window.as_ref().unwrap_or(&latest.snapshot);
            quantiles = source
                .histograms
                .iter()
                .filter(|h| h.count > 0)
                .map(|h| QuantileSeries {
                    name: h.name.clone(),
                    count: h.count,
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                })
                .collect();
        }
        SeriesView {
            capacity: self.capacity as u64,
            ticks,
            counters,
            gauges,
            quantiles,
        }
    }
}

/// The rate series of one counter in a [`SeriesView`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSeries {
    /// Metric name.
    pub name: String,
    /// Cumulative value at the newest sample.
    pub total: u64,
    /// Per-interval increments, oldest interval first (`ticks.len() − 1`
    /// entries). Always non-negative: restarts report post-restart counts.
    pub rates: Vec<u64>,
}

/// The level series of one gauge in a [`SeriesView`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSeries {
    /// Metric name.
    pub name: String,
    /// The gauge's level at each retained sample, oldest first.
    pub levels: Vec<i64>,
}

/// Windowed quantile read-out of one histogram in a [`SeriesView`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantileSeries {
    /// Metric name.
    pub name: String,
    /// Observations inside the window.
    pub count: u64,
    /// Median estimate (log₂-bucket upper bound — within 2× of the truth).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// The serializable flattening of a [`SeriesRing`] — the `/series` HTTP
/// payload.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesView {
    /// Ring capacity (samples retained at most).
    pub capacity: u64,
    /// Tick of each retained sample, oldest first.
    pub ticks: Vec<u64>,
    /// Rate series for every counter known to the newest sample.
    pub counters: Vec<CounterSeries>,
    /// Level series for every gauge known to the newest sample.
    pub gauges: Vec<GaugeSeries>,
    /// Windowed p50/p95/p99 for every histogram with in-window data.
    pub quantiles: Vec<QuantileSeries>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn ring_evicts_oldest_and_keeps_capacity() {
        let mut ring = SeriesRing::new(3);
        for tick in 0..5 {
            let registry = Registry::new();
            registry.counter("c").add(tick * 10);
            ring.record(tick, registry.snapshot());
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.oldest().unwrap().tick, 2);
        assert_eq!(ring.latest().unwrap().tick, 4);
        assert_eq!(ring.counter_rates("c"), vec![10, 10]);
    }

    #[test]
    fn rates_stay_non_negative_across_a_restart() {
        // Lifetime 1 counts to 100; the daemon restarts and counts 7.
        let mut ring = SeriesRing::new(8);
        let life1 = Registry::new();
        life1.counter("net.pushes").add(100);
        ring.record(0, life1.snapshot());
        let life2 = Registry::new();
        life2.counter("net.pushes").add(7);
        ring.record(1, life2.snapshot());
        assert_eq!(
            ring.counter_rates("net.pushes"),
            vec![7],
            "the restart interval reports everything since the restart"
        );
    }

    #[test]
    fn window_quantiles_cover_only_the_ring_horizon() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        let mut ring = SeriesRing::new(4);
        h.record(1_000_000); // before the window's first sample
        ring.record(0, registry.snapshot());
        h.record(4);
        h.record(4);
        ring.record(1, registry.snapshot());
        let view = ring.view();
        let q = view.quantiles.iter().find(|q| q.name == "lat").unwrap();
        assert_eq!(q.count, 2, "the pre-window observation is excluded");
        assert_eq!(q.p50, 7, "bucket [4,7] upper bound");
        assert_eq!(q.p99, 7, "the old 1e6 outlier does not leak in");
    }

    #[test]
    fn view_roundtrips_through_serde_json() {
        let registry = Registry::new();
        registry.counter("c").add(2);
        registry.gauge("g").set(-4);
        registry.histogram("h").record(9);
        let mut ring = SeriesRing::new(4);
        ring.record(7, registry.snapshot());
        registry.counter("c").add(3);
        ring.record(8, registry.snapshot());
        let view = ring.view();
        let json = serde_json::to_string(&view).unwrap();
        let back: SeriesView = serde_json::from_str(&json).unwrap();
        assert_eq!(back, view);
        assert_eq!(back.ticks, vec![7, 8]);
        let c = back.counters.iter().find(|c| c.name == "c").unwrap();
        assert_eq!((c.total, c.rates.clone()), (5, vec![3]));
    }
}
