//! Critical-path analysis over a merged [`ClusterTrace`] — the engine
//! behind the `cstrace` binary.
//!
//! The protocol nodes emit a small, fixed vocabulary of marker events
//! (`step.start`, `gossip.end`, `step.done`) plus causal `send`/`recv`
//! pairs. Each node's event stream is segmented into *rounds* at its
//! `step.start` markers (whose `trace` field carries the step seed), and
//! within a round every duration is measured **relative to the node's own
//! `step.start`** — daemons in a cluster each trace on their own
//! wall-clock origin, and the coordinator's `Go` barrier aligns step
//! starts, so per-node-relative spans are the only cross-process-safe
//! measure. The round's *critical path* is then the straggler: the node
//! whose step took longest, broken down into its gossip span
//! (`step.start → gossip.end`) and its decrypt span
//! (`gossip.end → step.done`); every other node's *slack* is how much
//! longer it could have taken without moving the round's finish line.

use crate::trace::{ClusterTrace, NodeTrace, TraceEvent};
use serde::{Deserialize, Serialize};

/// One node's timings within one round, all relative to the node's own
/// `step.start`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeRound {
    /// Node id.
    pub node: u64,
    /// `step.start → step.done` (or the last observed event, for a node
    /// that died mid-round).
    pub total_ns: u64,
    /// `step.start → gossip.end` (0 if gossip never completed).
    pub gossip_ns: u64,
    /// `gossip.end → step.done` (0 without a completed decrypt phase).
    pub decrypt_ns: u64,
    /// Messages this node sent during the round.
    pub sends: u64,
    /// Messages this node received during the round.
    pub recvs: u64,
    /// Whether the node reported `step.done`.
    pub completed: bool,
    /// How much longer this node could have run without extending the
    /// round (straggler total minus own total).
    pub slack_ns: u64,
}

/// One reconstructed round: the straggler (critical path) and every
/// node's slack against it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundAnalysis {
    /// Round index, in order of appearance.
    pub round: u64,
    /// The trace id (step seed) stamped on the round's `step.start`s.
    pub trace_id: u64,
    /// The node on the critical path.
    pub straggler: u64,
    /// The straggler's total, nanoseconds.
    pub straggler_ns: u64,
    /// The straggler's dominant phase: `"gossip"`, `"decrypt"`, or
    /// `"died"` when the straggler never completed the step.
    pub dominant_phase: String,
    /// Per-node breakdown, ascending by node id.
    pub nodes: Vec<NodeRound>,
}

fn field(e: &TraceEvent, key: &str) -> Option<u64> {
    e.fields.iter().find(|f| f.key == key).map(|f| f.value)
}

/// One node's events for one round, pre-segmentation.
struct Segment<'a> {
    node: u64,
    trace_id: u64,
    start_ns: u64,
    events: &'a [TraceEvent],
}

fn segments(trace: &NodeTrace) -> Vec<Segment<'_>> {
    let mut out = Vec::new();
    let starts: Vec<usize> = trace
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.name == "step.start")
        .map(|(i, _)| i)
        .collect();
    for (k, &i) in starts.iter().enumerate() {
        let end = starts.get(k + 1).copied().unwrap_or(trace.events.len());
        let start = &trace.events[i];
        out.push(Segment {
            node: trace.node,
            trace_id: field(start, "trace").unwrap_or(0),
            start_ns: start.ts_ns,
            events: &trace.events[i..end],
        });
    }
    out
}

fn analyze_segment(seg: &Segment<'_>) -> NodeRound {
    let mut gossip_end = None;
    let mut done = None;
    let mut last = seg.start_ns;
    let mut sends = 0;
    let mut recvs = 0;
    for e in seg.events {
        last = last.max(e.ts_ns);
        match e.name.as_str() {
            "gossip.end" => gossip_end = gossip_end.or(Some(e.ts_ns)),
            "step.done" => done = done.or(Some(e.ts_ns)),
            "send" => sends += 1,
            "recv" => recvs += 1,
            _ => {}
        }
    }
    let total_end = done.unwrap_or(last);
    let gossip_ns = gossip_end.map_or(0, |t| t.saturating_sub(seg.start_ns));
    NodeRound {
        node: seg.node,
        total_ns: total_end.saturating_sub(seg.start_ns),
        gossip_ns,
        decrypt_ns: match (gossip_end, done) {
            (Some(g), Some(d)) => d.saturating_sub(g),
            _ => 0,
        },
        sends,
        recvs,
        completed: done.is_some(),
        slack_ns: 0, // filled in once the round's straggler is known
    }
}

/// Reconstructs every round of a merged cluster trace. Rounds are matched
/// across nodes by trace id and ordered by first appearance.
pub fn analyze(trace: &ClusterTrace) -> Vec<RoundAnalysis> {
    // Ordered round keys: trace ids in order of first appearance.
    let mut order: Vec<u64> = Vec::new();
    let mut per_round: Vec<Vec<NodeRound>> = Vec::new();
    for node_trace in &trace.traces {
        for seg in segments(node_trace) {
            let idx = match order.iter().position(|&t| t == seg.trace_id) {
                Some(i) => i,
                None => {
                    order.push(seg.trace_id);
                    per_round.push(Vec::new());
                    order.len() - 1
                }
            };
            per_round[idx].push(analyze_segment(&seg));
        }
    }
    order
        .into_iter()
        .zip(per_round)
        .enumerate()
        .map(|(round, (trace_id, mut nodes))| {
            nodes.sort_by_key(|n| n.node);
            let straggler = nodes
                .iter()
                .max_by_key(|n| (n.total_ns, n.node))
                .cloned()
                .expect("a round has at least one participant");
            for n in &mut nodes {
                n.slack_ns = straggler.total_ns - n.total_ns;
            }
            let dominant_phase = if !straggler.completed {
                "died"
            } else if straggler.decrypt_ns > straggler.gossip_ns {
                "decrypt"
            } else {
                "gossip"
            };
            RoundAnalysis {
                round: round as u64,
                trace_id,
                straggler: straggler.node,
                straggler_ns: straggler.total_ns,
                dominant_phase: dominant_phase.to_string(),
                nodes,
            }
        })
        .collect()
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders an ASCII timeline: one block per round, the straggler named in
/// the header, and the `top` slowest nodes barred against the straggler's
/// total (gossip `#`, decrypt `=`, post-crash truncation `x`).
pub fn render_ascii(rounds: &[RoundAnalysis], top: usize) -> String {
    const WIDTH: usize = 40;
    let mut out = String::new();
    for r in rounds {
        out.push_str(&format!(
            "round {}  trace {:#018x}  straggler node {} ({}, dominant phase: {})\n",
            r.round,
            r.trace_id,
            r.straggler,
            fmt_ns(r.straggler_ns),
            r.dominant_phase
        ));
        let mut slowest: Vec<&NodeRound> = r.nodes.iter().collect();
        slowest.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.node.cmp(&b.node)));
        let shown = slowest.len().min(top);
        for n in &slowest[..shown] {
            let scale = |ns: u64| {
                if r.straggler_ns == 0 {
                    0
                } else {
                    ((ns as u128 * WIDTH as u128) / r.straggler_ns as u128) as usize
                }
            };
            let gossip = scale(n.gossip_ns);
            let decrypt = scale(n.decrypt_ns);
            let rest = scale(n.total_ns).saturating_sub(gossip + decrypt);
            let fill = if n.completed { ' ' } else { 'x' };
            let mut bar = String::new();
            bar.push_str(&"#".repeat(gossip));
            bar.push_str(&"=".repeat(decrypt));
            bar.push_str(&fill.to_string().repeat(rest));
            out.push_str(&format!(
                "  node {:>5} |{bar:<WIDTH$}| total {:>9}  gossip {:>9}  decrypt {:>9}  slack {:>9}{}\n",
                n.node,
                fmt_ns(n.total_ns),
                fmt_ns(n.gossip_ns),
                fmt_ns(n.decrypt_ns),
                fmt_ns(n.slack_ns),
                if n.completed { "" } else { "  [died]" },
            ));
        }
        if r.nodes.len() > shown {
            out.push_str(&format!(
                "  … {} more nodes (max slack {})\n",
                r.nodes.len() - shown,
                fmt_ns(r.nodes.iter().map(|n| n.slack_ns).max().unwrap_or(0)),
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CausalTracer, Clock, TraceContext, Tracer, VirtualClock};
    use std::sync::Arc;

    fn scripted_cluster() -> ClusterTrace {
        // Node 0: fast (gossip 10µs, decrypt 5µs). Node 1: the straggler
        // (gossip 20µs, decrypt 30µs). Node 2: dies mid-gossip.
        let mut traces = Vec::new();
        for (node, gossip_us, decrypt_us, dies) in [
            (0u64, 10u64, 5u64, false),
            (1, 20, 30, false),
            (2, 4, 0, true),
        ] {
            let clock = Arc::new(VirtualClock::new());
            let tracer = Arc::new(Tracer::new(clock.clone() as Arc<dyn Clock>));
            let mut ct = CausalTracer::new(tracer.clone(), 0xABCD, node, TraceContext::NONE);
            ct.on_send(99, 0);
            if dies {
                clock.advance_ns(gossip_us * 1_000);
                ct.on_send(99, 0); // last sign of life
            } else {
                clock.advance_ns(gossip_us * 1_000);
                ct.mark("gossip.end", &[]);
                clock.advance_ns(decrypt_us * 1_000);
                ct.mark("step.done", &[("completed", 1)]);
            }
            traces.push(NodeTrace::capture(node, &tracer));
        }
        ClusterTrace { traces }
    }

    #[test]
    fn straggler_dominant_phase_and_slack_are_reconstructed() {
        let rounds = analyze(&scripted_cluster());
        assert_eq!(rounds.len(), 1);
        let r = &rounds[0];
        assert_eq!(r.trace_id, 0xABCD);
        assert_eq!(r.straggler, 1);
        assert_eq!(r.straggler_ns, 50_000);
        assert_eq!(r.dominant_phase, "decrypt");
        assert_eq!(r.nodes.len(), 3);
        let n0 = &r.nodes[0];
        assert_eq!(
            (n0.total_ns, n0.gossip_ns, n0.decrypt_ns),
            (15_000, 10_000, 5_000)
        );
        assert_eq!(n0.slack_ns, 35_000);
        assert!(n0.completed);
        let dead = &r.nodes[2];
        assert!(!dead.completed);
        assert_eq!(
            dead.total_ns, 4_000,
            "a dead node's span ends at its last event"
        );
    }

    #[test]
    fn multiple_rounds_are_matched_by_trace_id_in_order() {
        let clock = Arc::new(VirtualClock::new());
        let tracer = Arc::new(Tracer::new(clock.clone() as Arc<dyn Clock>));
        for trace_id in [7u64, 8] {
            let mut ct = CausalTracer::new(tracer.clone(), trace_id, 0, TraceContext::NONE);
            clock.advance_ns(1_000);
            ct.mark("step.done", &[("completed", 1)]);
        }
        let cluster = ClusterTrace {
            traces: vec![NodeTrace::capture(0, &tracer)],
        };
        let rounds = analyze(&cluster);
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].trace_id, 7);
        assert_eq!(rounds[1].trace_id, 8);
        assert_eq!(rounds[1].round, 1);
    }

    #[test]
    fn ascii_rendering_names_the_straggler() {
        let rounds = analyze(&scripted_cluster());
        let text = render_ascii(&rounds, 2);
        assert!(text.contains("straggler node 1"), "{text}");
        assert!(text.contains("dominant phase: decrypt"), "{text}");
        assert!(
            text.contains("[died]") || text.contains("… 1 more nodes"),
            "{text}"
        );
    }
}
