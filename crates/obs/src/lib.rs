//! # cs-obs — the observability layer
//!
//! Every substrate in this workspace answers the same two questions with
//! this crate: *where does the time go* and *where does the traffic go*.
//! It is a vendored-stand-in-style, zero-external-dependency implementation
//! of the three observability primitives the repository needs, built so
//! that turning them on never perturbs the determinism guarantees the
//! sharded executor's e2e tests lock in:
//!
//! * [`metrics`] — a **lock-cheap metrics registry**: counters and gauges
//!   are single relaxed atomics behind pre-resolved [`std::sync::Arc`]
//!   handles (the registry lock is touched once at registration and once
//!   per scrape, never on the hot path), histograms use fixed log₂-scale
//!   buckets so recording is a `leading_zeros` plus one atomic add.
//!   [`metrics::MetricsSnapshot`] is the serializable scrape result, with
//!   [`metrics::MetricsSnapshot::plus`] / [`metrics::MetricsSnapshot::since`]
//!   mirroring the arithmetic of `cs_net`'s `TrafficSnapshot` so per-step
//!   deltas and cluster sums compose the same way traffic accounting does.
//! * [`trace`] — a **structured span/event tracing facade** over a
//!   pluggable [`trace::Clock`]: [`trace::WallClock`] for the wall-clock
//!   substrates, [`trace::VirtualClock`] (an explicitly advanced atomic
//!   nanosecond counter) for the sharded executor — a same-seed sharded
//!   run produces a byte-identical trace regardless of worker count,
//!   because every timestamp is virtual time.
//! * [`phase`] — **step-phase profiling**: the five phases of one
//!   Chiaroscuro computation step (encrypt / gossip / decrypt-share /
//!   combine / unpack) as a [`phase::PhaseProfile`] of per-phase
//!   nanosecond totals, accumulated inside the sans-IO protocol node and
//!   summed across the population, so `bench_summary --profile` can emit
//!   per-phase rows instead of one wall number.
//!
//! On top of the primitives sit the distributed-tracing pieces:
//! [`trace::TraceContext`] (the 24-byte causal context stamped into wire
//! frames), [`trace::CausalTracer`] (deterministic span allocation and
//! send→recv linkage), [`trace::NodeTrace`] / [`trace::ClusterTrace`]
//! (the serializable capture shapes), [`critical`] (per-round
//! critical-path reconstruction — which node, which phase, how much slack
//! everyone else had), [`prom`] (Prometheus text exposition of a
//! [`metrics::MetricsSnapshot`]), and [`http`] (a zero-dependency
//! `std::net` endpoint serving `/metrics` and `/trace`).
//!
//! The *continuous* layer sits on top of those: [`series`] keeps a
//! fixed-capacity ring of scrapes with rate and windowed-quantile views
//! (the `/series` route), and [`health`] holds the invariant-audit
//! vocabulary — [`health::InvariantMonitor`], the built-in conservation
//! checks, structured [`health::Alert`]s minted as `obs.alert.<kind>`
//! counters plus flight-recorder events, and the [`health::HealthState`]
//! behind the `/health` and `/healthz` routes.
//!
//! ```
//! use cs_obs::metrics::Registry;
//! use cs_obs::phase::{PhaseProfile, StepPhase};
//!
//! let registry = Registry::new();
//! let frames = registry.counter("transport.gossip.messages");
//! frames.add(3);
//! let depth = registry.histogram("transport.queue_depth");
//! depth.record(17);
//!
//! let mut profile = PhaseProfile::default();
//! profile.add(StepPhase::Encrypt, 1_500);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("transport.gossip.messages"), 3);
//! assert_eq!(profile.total_ns(), 1_500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critical;
pub mod health;
pub mod http;
pub mod metrics;
pub mod phase;
pub mod prom;
pub mod series;
pub mod trace;

pub use health::{
    Alert, AlertKind, AuditConfig, AuditScope, HealthReport, HealthState, HealthStatus,
    InvariantMonitor, Liveness,
};
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
pub use phase::{PhaseProfile, StepPhase};
pub use series::{SeriesRing, SeriesView};
pub use trace::{
    CausalTracer, Clock, ClusterTrace, NodeTrace, OverflowPolicy, TraceContext, Tracer,
    VirtualClock, WallClock,
};
