//! Zero-dependency HTTP exposition over `std::net`: `/metrics` in the
//! Prometheus text format, `/trace` as the flight recorder's JSON.
//!
//! One background thread, a non-blocking accept loop, one request per
//! connection — deliberately the smallest thing that a Prometheus scraper
//! or a `curl`-less `TcpStream` probe can talk to. The server owns no
//! metric state: it snapshots through caller-supplied provider closures
//! at request time, so a scrape always sees live values.

use crate::metrics::MetricsSnapshot;
use crate::prom::encode_text;
use crate::trace::NodeTrace;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// The state providers an [`ObsServer`] snapshots per request.
pub struct ObsProviders {
    /// Produces the cumulative metrics snapshot served at `/metrics`.
    pub metrics: Box<dyn Fn() -> MetricsSnapshot + Send + Sync>,
    /// Produces the flight-recorder capture served at `/trace`.
    pub trace: Box<dyn Fn() -> NodeTrace + Send + Sync>,
}

/// A running exposition endpoint; shuts down when dropped.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves until dropped.
    pub fn serve(addr: &str, providers: ObsProviders) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = thread::Builder::new()
            .name("obs-http".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve inline: scrapes are rare and tiny, a
                            // slow client only delays the next scrape.
                            let _ = handle_connection(stream, &providers);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn obs-http");
        Ok(ObsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, providers: &ObsProviders) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read up to the end of the request head; the request line is all we
    // route on.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                encode_text(&(providers.metrics)()),
            ),
            "/trace" => (
                "200 OK",
                "application/json",
                serde_json::to_string(&(providers.trace)()).unwrap_or_else(|_| "{}".into()),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found (try /metrics or /trace)\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::trace::{Tracer, VirtualClock};

    fn probe(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to obs server");
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_trace_and_404_over_plain_tcp() {
        let registry = Arc::new(Registry::new());
        registry.counter("probe.hits").add(3);
        let tracer = Arc::new(Tracer::ring(Arc::new(VirtualClock::new()), 16));
        tracer.event("boot", &[]);
        let reg = registry.clone();
        let tr = tracer.clone();
        let server = ObsServer::serve(
            "127.0.0.1:0",
            ObsProviders {
                metrics: Box::new(move || reg.snapshot()),
                trace: Box::new(move || NodeTrace::capture(5, &tr)),
            },
        )
        .unwrap();
        let addr = server.addr();

        let metrics = probe(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("probe_hits 3"), "{metrics}");

        registry.counter("probe.hits").inc();
        let metrics = probe(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(
            metrics.contains("probe_hits 4"),
            "scrapes are live: {metrics}"
        );

        let trace = probe(addr, "GET /trace HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(trace.contains("application/json"), "{trace}");
        assert!(trace.contains("\"boot\""), "{trace}");

        let missing = probe(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        drop(server); // clean shutdown joins the accept loop
    }
}
