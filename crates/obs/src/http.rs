//! Zero-dependency HTTP exposition over `std::net`: `/metrics` in the
//! Prometheus text format, `/trace` as the flight recorder's JSON, plus
//! the health-monitor family — `/series` (time-series telemetry),
//! `/health` (invariant verdict; 503 when degraded), and `/healthz`
//! (liveness: the answer itself is the signal).
//!
//! One background thread, a non-blocking accept loop, one request per
//! connection — deliberately the smallest thing that a Prometheus scraper
//! or a `curl`-less `TcpStream` probe can talk to. The server owns no
//! metric state: it snapshots through caller-supplied provider closures
//! at request time, so a scrape always sees live values.

use crate::health::{HealthReport, HealthStatus, Liveness};
use crate::metrics::MetricsSnapshot;
use crate::prom::encode_text;
use crate::series::SeriesView;
use crate::trace::NodeTrace;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// The state providers an [`ObsServer`] snapshots per request. The
/// health-monitor routes are optional: a `None` provider makes its route
/// answer 404, so a bare metrics/trace endpoint stays exactly that.
pub struct ObsProviders {
    /// Produces the cumulative metrics snapshot served at `/metrics`.
    pub metrics: Box<dyn Fn() -> MetricsSnapshot + Send + Sync>,
    /// Produces the flight-recorder capture served at `/trace`.
    pub trace: Box<dyn Fn() -> NodeTrace + Send + Sync>,
    /// Produces the time-series view served at `/series`.
    pub series: Option<Box<dyn Fn() -> SeriesView + Send + Sync>>,
    /// Produces the invariant verdict served at `/health` (HTTP 200 when
    /// healthy, 503 when degraded — probes can route on the status line).
    pub health: Option<Box<dyn Fn() -> HealthReport + Send + Sync>>,
    /// Produces the liveness facts served at `/healthz` (always 200).
    pub healthz: Option<Box<dyn Fn() -> Liveness + Send + Sync>>,
}

impl ObsProviders {
    /// The classic two-route provider set (`/metrics` + `/trace`).
    pub fn new(
        metrics: Box<dyn Fn() -> MetricsSnapshot + Send + Sync>,
        trace: Box<dyn Fn() -> NodeTrace + Send + Sync>,
    ) -> ObsProviders {
        ObsProviders {
            metrics,
            trace,
            series: None,
            health: None,
            healthz: None,
        }
    }
}

/// A running exposition endpoint; shuts down when dropped.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves until dropped.
    pub fn serve(addr: &str, providers: ObsProviders) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = thread::Builder::new()
            .name("obs-http".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve inline: scrapes are rare and tiny, a
                            // slow client only delays the next scrape.
                            let _ = handle_connection(stream, &providers);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn obs-http");
        Ok(ObsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, providers: &ObsProviders) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read up to the end of the request head; the request line is all we
    // route on.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        let not_found = || {
            (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found (try /metrics, /trace, /series, /health, or /healthz)\n".to_string(),
            )
        };
        let json = |body: String| ("200 OK", "application/json", body);
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                encode_text(&(providers.metrics)()),
            ),
            "/trace" => (
                "200 OK",
                "application/json",
                serde_json::to_string(&(providers.trace)()).unwrap_or_else(|_| "{}".into()),
            ),
            "/series" => match &providers.series {
                Some(series) => {
                    json(serde_json::to_string(&series()).unwrap_or_else(|_| "{}".into()))
                }
                None => not_found(),
            },
            "/health" => match &providers.health {
                Some(health) => {
                    let report = health();
                    let status = if report.status == HealthStatus::Degraded {
                        "503 Service Unavailable"
                    } else {
                        "200 OK"
                    };
                    (
                        status,
                        "application/json",
                        serde_json::to_string(&report).unwrap_or_else(|_| "{}".into()),
                    )
                }
                None => not_found(),
            },
            "/healthz" => match &providers.healthz {
                Some(healthz) => {
                    json(serde_json::to_string(&healthz()).unwrap_or_else(|_| "{}".into()))
                }
                None => not_found(),
            },
            _ => not_found(),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::trace::{Tracer, VirtualClock};

    fn probe(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to obs server");
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_trace_and_404_over_plain_tcp() {
        let registry = Arc::new(Registry::new());
        registry.counter("probe.hits").add(3);
        let tracer = Arc::new(Tracer::ring(Arc::new(VirtualClock::new()), 16));
        tracer.event("boot", &[]);
        let reg = registry.clone();
        let tr = tracer.clone();
        let server = ObsServer::serve(
            "127.0.0.1:0",
            ObsProviders::new(
                Box::new(move || reg.snapshot()),
                Box::new(move || NodeTrace::capture(5, &tr)),
            ),
        )
        .unwrap();
        let addr = server.addr();

        let metrics = probe(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("probe_hits 3"), "{metrics}");

        registry.counter("probe.hits").inc();
        let metrics = probe(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(
            metrics.contains("probe_hits 4"),
            "scrapes are live: {metrics}"
        );

        let trace = probe(addr, "GET /trace HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(trace.contains("application/json"), "{trace}");
        assert!(trace.contains("\"boot\""), "{trace}");

        let missing = probe(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let series = probe(addr, "GET /series HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(
            series.starts_with("HTTP/1.1 404"),
            "routes without providers answer 404: {series}"
        );

        drop(server); // clean shutdown joins the accept loop
    }

    #[test]
    fn health_family_routes_serve_json_and_degrade_to_503() {
        use crate::health::{Alert, AlertKind, HealthState, Liveness};
        use crate::series::SeriesRing;
        use std::sync::Mutex;

        let registry = Arc::new(Registry::new());
        registry.counter("step.ticks").add(1);
        let tracer = Arc::new(Tracer::ring(Arc::new(VirtualClock::new()), 16));
        let state = Arc::new(HealthState::new());
        let ring = Arc::new(Mutex::new(SeriesRing::new(8)));
        ring.lock().unwrap().record(0, registry.snapshot());
        registry.counter("step.ticks").add(2);
        ring.lock().unwrap().record(1, registry.snapshot());

        let reg = registry.clone();
        let tr = tracer.clone();
        let st = state.clone();
        let ri = ring.clone();
        let server = ObsServer::serve(
            "127.0.0.1:0",
            ObsProviders {
                metrics: Box::new(move || reg.snapshot()),
                trace: Box::new(move || NodeTrace::capture(5, &tr)),
                series: Some(Box::new(move || ri.lock().unwrap().view())),
                health: Some(Box::new(move || st.report())),
                healthz: Some(Box::new(|| Liveness {
                    node: 5,
                    uptime_seconds: 42,
                    proto_version: 4,
                    wire_version: 3,
                    build: "test".into(),
                })),
            },
        )
        .unwrap();
        let addr = server.addr();

        let series = probe(addr, "GET /series HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(series.starts_with("HTTP/1.1 200 OK"), "{series}");
        assert!(series.contains("\"step.ticks\""), "{series}");
        assert!(series.contains("\"rates\":[2]"), "{series}");

        let healthz = probe(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(healthz.starts_with("HTTP/1.1 200 OK"), "{healthz}");
        assert!(healthz.contains("\"uptime_seconds\":42"), "{healthz}");
        assert!(healthz.contains("\"proto_version\":4"), "{healthz}");

        let health = probe(addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains("\"Healthy\""), "{health}");

        state.raise(Alert {
            kind: AlertKind::MassConservation,
            node: Some(3),
            step: 1,
            measured: 99.0,
            limit: 0.5,
            detail: "test".into(),
        });
        let health = probe(addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(
            health.starts_with("HTTP/1.1 503"),
            "a raised alert flips the status line: {health}"
        );
        assert!(health.contains("\"Degraded\""), "{health}");
        assert!(health.contains("MassConservation"), "{health}");
    }
}
