//! Invariant auditing and health: structured alerts, the
//! [`InvariantMonitor`] trait with the protocol's built-in conservation
//! checks, and the degraded/healthy state served at `/health`.
//!
//! The protocol has hard invariants — push-sum conserves mass, transports
//! conserve frames, a threshold decryption uses exactly the committee's
//! shares, packed lanes keep carry headroom — yet a violation today
//! corrupts centroids *silently*. This module is the detection half of
//! catch-the-cheater (ROADMAP item 3): substrates distill the step's
//! evidence into an [`AuditScope`], run it through a fixed set of
//! monitors, and every violation mints a structured [`Alert`] three ways
//! at once:
//!
//! 1. an `obs.alert.<kind>` counter in the [`Registry`] (scrapes, deltas,
//!    and `/metrics` all see it);
//! 2. an `alert.<kind>` event in the flight-recorder ring (crash dumps
//!    and `/trace` see it, with the measurement in milli-units);
//! 3. the shared [`HealthState`], which flips `/health` to degraded and
//!    keeps the recent-alert feed.
//!
//! Monitors are pure: evidence in, alerts out, in deterministic order —
//! auditing a same-seed run never perturbs it, so the sharded executor's
//! byte-identity contract survives with monitoring enabled.

use crate::metrics::{MetricsSnapshot, Registry};
use crate::trace::Tracer;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// How many alerts a [`HealthState`] retains for the `/health` feed.
pub const RECENT_ALERTS: usize = 32;

/// The kinds of protocol invariant an auditor can see violated.
/// (Serialized by variant name; the snake_case form in metric and event
/// names comes from [`AlertKind::as_str`].)
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlertKind {
    /// Push-sum mass left the DP-noise envelope: a decoded estimate's
    /// normalized weight sum strayed from 1.
    MassConservation,
    /// Transport frame accounting broke: `delivered ≠ sent − dropped` for
    /// some traffic class.
    TrafficAccounting,
    /// A decryption round saw shares it should not have: a sender outside
    /// the committee, more distinct senders than the committee holds, or a
    /// combine below the threshold.
    ShareCount,
    /// A packed-lane plan's carry headroom fell under the watermark.
    LaneHeadroom,
}

impl AlertKind {
    /// Every kind, in the deterministic order monitors run in.
    pub const ALL: [AlertKind; 4] = [
        AlertKind::MassConservation,
        AlertKind::TrafficAccounting,
        AlertKind::ShareCount,
        AlertKind::LaneHeadroom,
    ];

    /// The kind's snake_case name (the `<kind>` in metric/event names).
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertKind::MassConservation => "mass_conservation",
            AlertKind::TrafficAccounting => "traffic_accounting",
            AlertKind::ShareCount => "share_count",
            AlertKind::LaneHeadroom => "lane_headroom",
        }
    }

    /// The registry counter a violation increments.
    pub fn counter_name(&self) -> String {
        format!("obs.alert.{}", self.as_str())
    }

    /// The flight-recorder event a violation emits.
    pub fn event_name(&self) -> String {
        format!("alert.{}", self.as_str())
    }
}

/// One detected invariant violation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Which invariant broke.
    pub kind: AlertKind,
    /// The node the evidence points at, when attributable.
    pub node: Option<u64>,
    /// The computation step the evidence belongs to.
    pub step: u64,
    /// The measured quantity (mass deviation, delivered-count mismatch,
    /// offending share count, headroom bits — kind-dependent).
    pub measured: f64,
    /// The bound it violated.
    pub limit: f64,
    /// Human-readable one-liner for feeds and logs.
    pub detail: String,
}

/// Overall verdict derived from the alert history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthStatus {
    /// No invariant violation observed this lifetime.
    #[default]
    Healthy,
    /// At least one invariant violation observed.
    Degraded,
}

/// Per-kind violation tally inside a [`HealthReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertCount {
    /// The invariant kind.
    pub kind: AlertKind,
    /// Violations of that kind so far.
    pub count: u64,
}

/// The serializable health verdict — the `/health` payload and the body
/// of the control plane's `HealthReport` message.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// The verdict.
    pub status: HealthStatus,
    /// Total violations this lifetime.
    pub alerts_total: u64,
    /// Per-kind tallies (only kinds with at least one violation).
    pub counts: Vec<AlertCount>,
    /// The most recent alerts, oldest first (at most [`RECENT_ALERTS`]).
    pub recent: Vec<Alert>,
}

impl HealthReport {
    /// The count for one kind, 0 if absent.
    pub fn count(&self, kind: AlertKind) -> u64 {
        self.counts
            .iter()
            .find(|c| c.kind == kind)
            .map_or(0, |c| c.count)
    }

    /// Merges two reports (cluster verdict from per-daemon reports): the
    /// worst status wins, tallies sum, recent feeds concatenate and keep
    /// the newest [`RECENT_ALERTS`].
    pub fn plus(&self, other: &HealthReport) -> HealthReport {
        let status =
            if self.status == HealthStatus::Degraded || other.status == HealthStatus::Degraded {
                HealthStatus::Degraded
            } else {
                HealthStatus::Healthy
            };
        let counts = AlertKind::ALL
            .iter()
            .filter_map(|&kind| {
                let count = self.count(kind) + other.count(kind);
                (count != 0).then_some(AlertCount { kind, count })
            })
            .collect();
        let mut recent: Vec<Alert> = self
            .recent
            .iter()
            .chain(other.recent.iter())
            .cloned()
            .collect();
        if recent.len() > RECENT_ALERTS {
            recent.drain(..recent.len() - RECENT_ALERTS);
        }
        HealthReport {
            status,
            alerts_total: self.alerts_total + other.alerts_total,
            counts,
            recent,
        }
    }
}

#[derive(Default)]
struct HealthInner {
    counts: [u64; AlertKind::ALL.len()],
    recent: VecDeque<Alert>,
}

/// The shared, thread-safe alert sink behind `/health`: raising any alert
/// flips it to degraded for the rest of the process lifetime.
#[derive(Default)]
pub struct HealthState {
    degraded: AtomicBool,
    inner: Mutex<HealthInner>,
}

impl HealthState {
    /// A healthy, empty state.
    pub fn new() -> HealthState {
        HealthState::default()
    }

    /// Records a violation.
    pub fn raise(&self, alert: Alert) {
        self.degraded.store(true, Ordering::Release);
        let mut inner = self.inner.lock().expect("health state poisoned");
        let idx = AlertKind::ALL
            .iter()
            .position(|k| *k == alert.kind)
            .expect("kind in ALL");
        inner.counts[idx] += 1;
        if inner.recent.len() == RECENT_ALERTS {
            inner.recent.pop_front();
        }
        inner.recent.push_back(alert);
    }

    /// `true` once any alert has been raised.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// The current verdict.
    pub fn status(&self) -> HealthStatus {
        if self.is_degraded() {
            HealthStatus::Degraded
        } else {
            HealthStatus::Healthy
        }
    }

    /// Snapshots the verdict, tallies, and recent feed.
    pub fn report(&self) -> HealthReport {
        let inner = self.inner.lock().expect("health state poisoned");
        let counts: Vec<AlertCount> = AlertKind::ALL
            .iter()
            .enumerate()
            .filter_map(|(i, &kind)| {
                (inner.counts[i] != 0).then_some(AlertCount {
                    kind,
                    count: inner.counts[i],
                })
            })
            .collect();
        HealthReport {
            status: self.status(),
            alerts_total: inner.counts.iter().sum(),
            counts,
            recent: inner.recent.iter().cloned().collect(),
        }
    }
}

impl std::fmt::Debug for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthState")
            .field("degraded", &self.is_degraded())
            .finish_non_exhaustive()
    }
}

/// The `/healthz` liveness payload: the process answering *is* the
/// liveness signal; the body carries identity and build facts, never a
/// verdict (that is `/health`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Liveness {
    /// Node id of the answering daemon.
    pub node: u64,
    /// Seconds since the daemon started.
    pub uptime_seconds: u64,
    /// Control-plane protocol version the daemon speaks.
    pub proto_version: u32,
    /// Wire-codec version the daemon speaks.
    pub wire_version: u32,
    /// Build identity (crate version string).
    pub build: String,
}

/// Per-node push-sum mass evidence: the normalized weight sum of one
/// decoded estimate (should be ≈ 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeMass {
    /// Reporting node.
    pub node: u64,
    /// Σₖ counts[k] of the node's decoded estimate.
    pub mass: f64,
}

/// Per-class transport accounting evidence.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficAudit {
    /// Traffic class name (`gossip`, `decrypt`, `control`).
    pub class: String,
    /// Send attempts (`net.<class>.sent.messages`).
    pub sent: u64,
    /// Frames lost (`net.<class>.dropped`).
    pub dropped: u64,
    /// Frames delivered (the transport snapshot's per-class count).
    pub delivered: u64,
}

/// Per-node decryption-round evidence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecryptAudit {
    /// Reporting node.
    pub node: u64,
    /// Combines the node performed.
    pub combines: u64,
    /// Shares received from senders outside the committee.
    pub foreign_shares: u64,
    /// Combines performed with fewer than `threshold` distinct shares.
    pub undersized_combines: u64,
    /// Rounds where distinct share senders exceeded the committee size.
    pub oversized_rounds: u64,
}

/// Per-node packed-lane headroom evidence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneAudit {
    /// Reporting node.
    pub node: u64,
    /// The lane plan's carry headroom in bits (the watermark).
    pub headroom_bits: u64,
}

/// One step's worth of evidence, distilled by a substrate for the
/// monitors. Slices are ordered by node id so alert order — and therefore
/// trace byte-identity — is deterministic.
#[derive(Clone, Debug, Default)]
pub struct AuditScope<'a> {
    /// The computation step the evidence belongs to.
    pub step: u64,
    /// The step's metrics (delta or cumulative; monitors only compare
    /// within it).
    pub metrics: Option<&'a MetricsSnapshot>,
    /// Mass evidence, one entry per node with a decoded estimate.
    pub masses: &'a [NodeMass],
    /// Transport accounting, one entry per traffic class.
    pub traffic: &'a [TrafficAudit],
    /// Decryption-round evidence per node.
    pub decrypts: &'a [DecryptAudit],
    /// Packed-lane evidence per node (absent when packing is off).
    pub lanes: &'a [LaneAudit],
}

/// A pure invariant check: evidence in, violations out.
pub trait InvariantMonitor: Send + Sync {
    /// The alert kind this monitor raises.
    fn kind(&self) -> AlertKind;
    /// Checks the evidence, returning every violation found (empty when
    /// the invariant holds).
    fn check(&self, scope: &AuditScope<'_>) -> Vec<Alert>;
}

/// Push-sum mass conservation: every decoded estimate's weight sum must
/// stay within `envelope` of 1. The envelope must sit above what honest
/// runs produce (churn skews the sum by the dead fraction; DP noise
/// perturbs it further) and below what corruption produces (a wrong
/// partial decryption decodes to garbage orders of magnitude off).
#[derive(Clone, Copy, Debug)]
pub struct MassConservation {
    /// Allowed |mass − 1| deviation.
    pub envelope: f64,
}

impl InvariantMonitor for MassConservation {
    fn kind(&self) -> AlertKind {
        AlertKind::MassConservation
    }

    fn check(&self, scope: &AuditScope<'_>) -> Vec<Alert> {
        scope
            .masses
            .iter()
            .filter(|m| !(m.mass - 1.0).abs().is_finite() || (m.mass - 1.0).abs() > self.envelope)
            .map(|m| Alert {
                kind: AlertKind::MassConservation,
                node: Some(m.node),
                step: scope.step,
                measured: m.mass,
                limit: self.envelope,
                detail: format!(
                    "node {}: push-sum mass {:.4} strayed more than {} from 1",
                    m.node, m.mass, self.envelope
                ),
            })
            .collect()
    }
}

/// Transport frame conservation: `delivered == sent − dropped` per class.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrafficAccounting;

impl InvariantMonitor for TrafficAccounting {
    fn kind(&self) -> AlertKind {
        AlertKind::TrafficAccounting
    }

    fn check(&self, scope: &AuditScope<'_>) -> Vec<Alert> {
        scope
            .traffic
            .iter()
            .filter(|t| t.delivered != t.sent.saturating_sub(t.dropped))
            .map(|t| Alert {
                kind: AlertKind::TrafficAccounting,
                node: None,
                step: scope.step,
                measured: t.delivered as f64,
                limit: t.sent.saturating_sub(t.dropped) as f64,
                detail: format!(
                    "class {}: delivered {} ≠ sent {} − dropped {}",
                    t.class, t.delivered, t.sent, t.dropped
                ),
            })
            .collect()
    }
}

/// Share-count / committee-cardinality discipline per decryption round.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShareCount;

impl InvariantMonitor for ShareCount {
    fn kind(&self) -> AlertKind {
        AlertKind::ShareCount
    }

    fn check(&self, scope: &AuditScope<'_>) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for d in scope.decrypts {
            let mut bad = Vec::new();
            if d.foreign_shares > 0 {
                bad.push(format!(
                    "{} shares from outside the committee",
                    d.foreign_shares
                ));
            }
            if d.undersized_combines > 0 {
                bad.push(format!("{} sub-threshold combines", d.undersized_combines));
            }
            if d.oversized_rounds > 0 {
                bad.push(format!(
                    "{} rounds with more senders than the committee",
                    d.oversized_rounds
                ));
            }
            if !bad.is_empty() {
                alerts.push(Alert {
                    kind: AlertKind::ShareCount,
                    node: Some(d.node),
                    step: scope.step,
                    measured: (d.foreign_shares + d.undersized_combines + d.oversized_rounds)
                        as f64,
                    limit: 0.0,
                    detail: format!("node {}: {}", d.node, bad.join(", ")),
                });
            }
        }
        alerts
    }
}

/// Packed-lane carry headroom watermark.
#[derive(Clone, Copy, Debug)]
pub struct LaneHeadroom {
    /// Minimum acceptable headroom in bits.
    pub min_bits: u64,
}

impl InvariantMonitor for LaneHeadroom {
    fn kind(&self) -> AlertKind {
        AlertKind::LaneHeadroom
    }

    fn check(&self, scope: &AuditScope<'_>) -> Vec<Alert> {
        scope
            .lanes
            .iter()
            .filter(|l| l.headroom_bits < self.min_bits)
            .map(|l| Alert {
                kind: AlertKind::LaneHeadroom,
                node: Some(l.node),
                step: scope.step,
                measured: l.headroom_bits as f64,
                limit: self.min_bits as f64,
                detail: format!(
                    "node {}: packed-lane headroom {} bits under the {}-bit watermark",
                    l.node, l.headroom_bits, self.min_bits
                ),
            })
            .collect()
    }
}

/// Knobs for the standard monitor set.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// [`MassConservation::envelope`]. The default 0.5 sits above the
    /// honest-run deviations the e2e suites produce (churn ≈ 0.15 at
    /// n = 12, plus DP noise) and far below decode garbage.
    pub mass_envelope: f64,
    /// [`LaneHeadroom::min_bits`].
    pub lane_min_bits: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            mass_envelope: 0.5,
            lane_min_bits: 1,
        }
    }
}

impl AuditConfig {
    /// The built-in monitors, in [`AlertKind::ALL`] order.
    pub fn monitors(&self) -> Vec<Box<dyn InvariantMonitor>> {
        vec![
            Box::new(MassConservation {
                envelope: self.mass_envelope,
            }),
            Box::new(TrafficAccounting),
            Box::new(ShareCount),
            Box::new(LaneHeadroom {
                min_bits: self.lane_min_bits,
            }),
        ]
    }
}

/// Scales a measurement into the flight recorder's u64 field domain
/// (milli-units, magnitude only, saturating; NaN records 0).
fn milli(v: f64) -> u64 {
    (v.abs() * 1000.0).min(u64::MAX as f64) as u64
}

/// Mints one alert everywhere at once: the `obs.alert.<kind>` counter,
/// the flight-recorder event (when a tracer is attached), and the shared
/// health state (when one exists).
pub fn raise_alert(
    alert: Alert,
    registry: &Registry,
    tracer: Option<&Tracer>,
    state: Option<&HealthState>,
) {
    registry.counter(&alert.kind.counter_name()).inc();
    if let Some(tracer) = tracer {
        tracer.event(
            &alert.kind.event_name(),
            &[
                ("node", alert.node.unwrap_or(u64::MAX)),
                ("step", alert.step),
                ("measured_milli", milli(alert.measured)),
                ("limit_milli", milli(alert.limit)),
            ],
        );
    }
    if let Some(state) = state {
        state.raise(alert);
    }
}

/// Runs every monitor over the evidence and mints each violation via
/// [`raise_alert`]; returns the violations in deterministic order.
pub fn audit(
    monitors: &[Box<dyn InvariantMonitor>],
    scope: &AuditScope<'_>,
    registry: &Registry,
    tracer: Option<&Tracer>,
    state: Option<&HealthState>,
) -> Vec<Alert> {
    let mut all = Vec::new();
    for monitor in monitors {
        for alert in monitor.check(scope) {
            raise_alert(alert.clone(), registry, tracer, state);
            all.push(alert);
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Tracer, VirtualClock};
    use std::sync::Arc;

    #[test]
    fn clean_evidence_raises_nothing() {
        let masses = [
            NodeMass {
                node: 0,
                mass: 1.02,
            },
            NodeMass {
                node: 1,
                mass: 0.91,
            },
        ];
        let traffic = [TrafficAudit {
            class: "gossip".into(),
            sent: 10,
            dropped: 3,
            delivered: 7,
        }];
        let decrypts = [DecryptAudit {
            node: 0,
            combines: 2,
            ..DecryptAudit::default()
        }];
        let lanes = [LaneAudit {
            node: 0,
            headroom_bits: 6,
        }];
        let scope = AuditScope {
            step: 3,
            metrics: None,
            masses: &masses,
            traffic: &traffic,
            decrypts: &decrypts,
            lanes: &lanes,
        };
        let registry = Registry::new();
        let state = HealthState::new();
        let alerts = audit(
            &AuditConfig::default().monitors(),
            &scope,
            &registry,
            None,
            Some(&state),
        );
        assert!(alerts.is_empty(), "{alerts:?}");
        assert_eq!(state.status(), HealthStatus::Healthy);
        assert_eq!(
            registry.snapshot().counter("obs.alert.mass_conservation"),
            0
        );
    }

    #[test]
    fn each_violation_mints_counter_event_and_degraded_state() {
        let masses = [NodeMass {
            node: 4,
            mass: 817.3, // decode garbage
        }];
        let traffic = [TrafficAudit {
            class: "decrypt".into(),
            sent: 10,
            dropped: 0,
            delivered: 9,
        }];
        let decrypts = [DecryptAudit {
            node: 2,
            combines: 1,
            foreign_shares: 3,
            ..DecryptAudit::default()
        }];
        let lanes = [LaneAudit {
            node: 1,
            headroom_bits: 0,
        }];
        let scope = AuditScope {
            step: 7,
            metrics: None,
            masses: &masses,
            traffic: &traffic,
            decrypts: &decrypts,
            lanes: &lanes,
        };
        let registry = Registry::new();
        let state = HealthState::new();
        let tracer = Tracer::ring(Arc::new(VirtualClock::new()), 64);
        let alerts = audit(
            &AuditConfig::default().monitors(),
            &scope,
            &registry,
            Some(&tracer),
            Some(&state),
        );
        assert_eq!(alerts.len(), 4);
        let snap = registry.snapshot();
        for kind in AlertKind::ALL {
            assert_eq!(snap.counter(&kind.counter_name()), 1, "{kind:?}");
        }
        let events = tracer.snapshot_events();
        assert!(events.iter().any(|e| e.name == "alert.mass_conservation"));
        let report = state.report();
        assert_eq!(report.status, HealthStatus::Degraded);
        assert_eq!(report.alerts_total, 4);
        assert_eq!(report.count(AlertKind::ShareCount), 1);
        assert_eq!(report.recent.len(), 4);
    }

    #[test]
    fn non_finite_mass_is_a_violation() {
        let masses = [NodeMass {
            node: 0,
            mass: f64::NAN,
        }];
        let scope = AuditScope {
            masses: &masses,
            ..AuditScope::default()
        };
        let alerts = MassConservation { envelope: 0.5 }.check(&scope);
        assert_eq!(alerts.len(), 1);
    }

    #[test]
    fn reports_merge_to_the_worst_status_with_summed_counts() {
        let healthy = HealthReport::default();
        let state = HealthState::new();
        state.raise(Alert {
            kind: AlertKind::LaneHeadroom,
            node: Some(9),
            step: 0,
            measured: 0.0,
            limit: 1.0,
            detail: "x".into(),
        });
        let degraded = state.report();
        let merged = healthy.plus(&degraded);
        assert_eq!(merged.status, HealthStatus::Degraded);
        assert_eq!(merged.alerts_total, 1);
        assert_eq!(merged.count(AlertKind::LaneHeadroom), 1);
        let doubled = merged.plus(&degraded);
        assert_eq!(doubled.alerts_total, 2);

        let json = serde_json::to_string(&doubled).unwrap();
        let back: HealthReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, doubled);
    }

    #[test]
    fn health_state_recent_feed_is_bounded() {
        let state = HealthState::new();
        for i in 0..(RECENT_ALERTS as u64 + 10) {
            state.raise(Alert {
                kind: AlertKind::TrafficAccounting,
                node: None,
                step: i,
                measured: 0.0,
                limit: 0.0,
                detail: String::new(),
            });
        }
        let report = state.report();
        assert_eq!(report.recent.len(), RECENT_ALERTS);
        assert_eq!(report.alerts_total, RECENT_ALERTS as u64 + 10);
        assert_eq!(report.recent[0].step, 10, "oldest were evicted");
    }
}
