//! Step-phase profiling: where one Chiaroscuro computation step spends
//! its time.
//!
//! The paper's computation step decomposes into five phases with very
//! different cost profiles — contribution **encrypt**ion (fixed-base
//! exponentiations, once per node per step), **gossip** crypto (the
//! push-sum split/absorb homomorphic work), the committee's
//! **decrypt-share** service (one partial decryption per requested
//! ciphertext), **combine** (the 2c data+noise fold plus Lagrange
//! recombination of partial decryptions), and **unpack** (lane extraction
//! in packed mode). A [`PhaseProfile`] holds per-phase nanosecond totals;
//! the sans-IO protocol node accumulates one, every substrate ships it
//! home in its report, and the per-node profiles sum ([`PhaseProfile::plus`])
//! into the step outcome that `bench_summary --profile` emits.
//!
//! Profiles measure *wall-clock spent inside the phase's code*, which is a
//! side channel: nothing protocol-visible reads them, so enabling
//! profiling cannot perturb the sharded executor's byte-identical
//! determinism (locked by `sharded_e2e`).

use serde::{Deserialize, Serialize};

/// The five phases of one computation step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StepPhase {
    /// Contribution encryption at node construction.
    Encrypt,
    /// Gossip split/absorb arithmetic (homomorphic in real-crypto mode).
    Gossip,
    /// Serving partial decryptions as a committee member.
    DecryptShare,
    /// The 2c data+noise fold and the Lagrange combine of partials.
    Combine,
    /// Lane extraction of a packed aggregate.
    Unpack,
}

impl StepPhase {
    /// Stable lowercase name (metric keys, JSON fields).
    pub fn name(self) -> &'static str {
        match self {
            StepPhase::Encrypt => "encrypt",
            StepPhase::Gossip => "gossip",
            StepPhase::DecryptShare => "decrypt_share",
            StepPhase::Combine => "combine",
            StepPhase::Unpack => "unpack",
        }
    }

    /// All phases, in step order.
    pub const ALL: [StepPhase; 5] = [
        StepPhase::Encrypt,
        StepPhase::Gossip,
        StepPhase::DecryptShare,
        StepPhase::Combine,
        StepPhase::Unpack,
    ];
}

/// Per-phase time totals (nanoseconds) for one node or, summed, for one
/// whole step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Contribution encryption.
    pub encrypt_ns: u64,
    /// Gossip split/absorb arithmetic.
    pub gossip_ns: u64,
    /// Committee partial-decryption service.
    pub decrypt_share_ns: u64,
    /// Noise fold + Lagrange combine.
    pub combine_ns: u64,
    /// Packed-lane aggregate extraction.
    pub unpack_ns: u64,
}

impl PhaseProfile {
    /// Adds `ns` to one phase's total.
    pub fn add(&mut self, phase: StepPhase, ns: u64) {
        *self.slot_mut(phase) += ns;
    }

    /// One phase's total.
    pub fn get(&self, phase: StepPhase) -> u64 {
        match phase {
            StepPhase::Encrypt => self.encrypt_ns,
            StepPhase::Gossip => self.gossip_ns,
            StepPhase::DecryptShare => self.decrypt_share_ns,
            StepPhase::Combine => self.combine_ns,
            StepPhase::Unpack => self.unpack_ns,
        }
    }

    fn slot_mut(&mut self, phase: StepPhase) -> &mut u64 {
        match phase {
            StepPhase::Encrypt => &mut self.encrypt_ns,
            StepPhase::Gossip => &mut self.gossip_ns,
            StepPhase::DecryptShare => &mut self.decrypt_share_ns,
            StepPhase::Combine => &mut self.combine_ns,
            StepPhase::Unpack => &mut self.unpack_ns,
        }
    }

    /// Element-wise sum — fold per-node profiles into a step profile.
    pub fn plus(&self, other: &PhaseProfile) -> PhaseProfile {
        PhaseProfile {
            encrypt_ns: self.encrypt_ns + other.encrypt_ns,
            gossip_ns: self.gossip_ns + other.gossip_ns,
            decrypt_share_ns: self.decrypt_share_ns + other.decrypt_share_ns,
            combine_ns: self.combine_ns + other.combine_ns,
            unpack_ns: self.unpack_ns + other.unpack_ns,
        }
    }

    /// Time across all phases.
    pub fn total_ns(&self) -> u64 {
        StepPhase::ALL.iter().map(|&p| self.get(p)).sum()
    }
}

/// Times a closure and books it into `profile` under `phase`.
pub fn timed<T>(profile: &mut PhaseProfile, phase: StepPhase, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    profile.add(phase, start.elapsed().as_nanos() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_sum_per_phase() {
        let mut a = PhaseProfile::default();
        a.add(StepPhase::Encrypt, 10);
        a.add(StepPhase::Gossip, 20);
        let mut b = PhaseProfile::default();
        b.add(StepPhase::Gossip, 5);
        b.add(StepPhase::Unpack, 1);
        let sum = a.plus(&b);
        assert_eq!(sum.encrypt_ns, 10);
        assert_eq!(sum.gossip_ns, 25);
        assert_eq!(sum.unpack_ns, 1);
        assert_eq!(sum.total_ns(), 36);
    }

    #[test]
    fn timed_books_into_the_right_phase() {
        let mut p = PhaseProfile::default();
        let out = timed(&mut p, StepPhase::Combine, || 7);
        assert_eq!(out, 7);
        assert_eq!(p.decrypt_share_ns, 0);
        // Duration is environment-dependent; only the slot choice is
        // asserted (a zero-length closure may book 0 ns).
        assert_eq!(p.total_ns(), p.combine_ns);
    }

    #[test]
    fn profile_roundtrips_through_serde_json() {
        let mut p = PhaseProfile::default();
        for (i, phase) in StepPhase::ALL.into_iter().enumerate() {
            p.add(phase, (i as u64 + 1) * 100);
        }
        let json = serde_json::to_string(&p).unwrap();
        let back: PhaseProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
