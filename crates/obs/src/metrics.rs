//! The lock-cheap metrics registry: counters, gauges, and fixed
//! log₂-bucket histograms.
//!
//! The design rule is that the hot path never takes a lock: a metric is
//! registered once (one mutex acquisition, get-or-create by name) and the
//! caller keeps the returned [`Arc`] handle — after that, every update is
//! one relaxed atomic operation. Scraping ([`Registry::snapshot`]) takes
//! the registry lock once and reads every atomic, producing a
//! [`MetricsSnapshot`] that serializes, sums across a cluster
//! ([`MetricsSnapshot::plus`]), and deltas against a previous scrape
//! ([`MetricsSnapshot::since`]) with exactly the arithmetic
//! `cs_net::transport::TrafficSnapshot` uses for traffic accounting.
//!
//! Relaxed ordering is deliberate and sufficient: metrics are monotone
//! event counts, not synchronization edges — the transports' own
//! `[[AtomicU64; 3]; 3]` accounting arrays set the precedent.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero, one per bit width of a
/// non-zero `u64` value.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed level (queue depths, in-flight counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over `u64` values with fixed log₂-scale buckets: bucket 0
/// holds zeros, bucket `i ≥ 1` holds values of bit width `i`, i.e. the
/// range `[2^(i-1), 2^i - 1]`. Recording is branch-free on the bucket
/// choice (`leading_zeros`) plus three relaxed atomic adds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in: 0 for 0, otherwise the value's bit
/// width (1..=64).
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value bucket `i` admits (`0` for bucket 0, `2^i - 1`
/// otherwise, saturating at `u64::MAX` for bucket 64).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) of everything
    /// recorded so far. See [`HistogramValue::quantile`] for the exact
    /// semantics and the log₂-bucket error bound.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        quantile_scan(
            count,
            self.buckets
                .iter()
                .enumerate()
                .map(|(i, b)| (i, b.load(Ordering::Relaxed))),
            q,
        )
    }
}

/// Shared quantile walk over `(bucket index, count)` pairs in ascending
/// bucket order: the upper bound of the bucket holding the rank-`q`
/// observation.
fn quantile_scan(count: u64, buckets: impl Iterator<Item = (usize, u64)>, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    // Rank of the quantile observation, 1-based: q = 0 picks the smallest
    // observation, q = 1 the largest, ties round up (nearest-rank method).
    let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, c) in buckets {
        seen += c;
        if seen >= rank {
            return bucket_upper_bound(i);
        }
    }
    bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterValue {
    /// Metric name (dot-separated, see `docs/observability.md`).
    pub name: String,
    /// Value at scrape time.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeValue {
    /// Metric name.
    pub name: String,
    /// Level at scrape time.
    pub value: i64,
}

/// One non-empty histogram bucket in a [`HistogramValue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Bucket index (see [`bucket_index`] / [`bucket_upper_bound`]).
    pub bucket: u8,
    /// Observations in the bucket.
    pub count: u64,
}

/// One histogram in a [`MetricsSnapshot`] — sparse (only non-empty
/// buckets), sorted by bucket index.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramValue {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<BucketCount>,
}

/// A point-in-time scrape of a [`Registry`]: every metric, sorted by name,
/// in a shape the vendored serde stand-in can carry (sorted vectors, not
/// maps). Snapshots compose like `TrafficSnapshot`: [`plus`] sums across
/// sources, [`since`] deltas against an earlier scrape of the same source.
///
/// [`plus`]: MetricsSnapshot::plus
/// [`since`]: MetricsSnapshot::since
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, ascending by name.
    pub counters: Vec<CounterValue>,
    /// All gauges, ascending by name.
    pub gauges: Vec<GaugeValue>,
    /// All histograms, ascending by name.
    pub histograms: Vec<HistogramValue>,
}

impl HistogramValue {
    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) by the
    /// nearest-rank method over the log₂ buckets, returning the upper
    /// bound of the bucket the rank-`q` observation landed in.
    ///
    /// **Error bound.** Bucket `i ≥ 1` spans `[2^(i-1), 2^i − 1]`, so the
    /// estimate is never *below* the true quantile value and overshoots it
    /// by strictly less than a factor of 2 (`estimate < 2 · true`); values
    /// 0 and 1 are exact (buckets 0 and 1 are singletons). That relative
    /// bound is the histogram's design trade: recording is one
    /// `leading_zeros`, and a p99 read-out that is right to within 2× is
    /// plenty for latency/size SLOs spanning orders of magnitude.
    ///
    /// An empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_scan(
            self.count,
            self.buckets.iter().map(|b| (b.bucket as usize, b.count)),
            q,
        )
    }
}

impl MetricsSnapshot {
    /// The named counter's value, `0` if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// The named gauge's level, `0` if absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .map_or(0, |g| g.value)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramValue> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Element-wise sum (union of names) — cluster totals from per-node
    /// snapshots, mirroring `TrafficSnapshot::plus`.
    pub fn plus(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        merge(self, other, u64::wrapping_add, i64::wrapping_add)
    }

    /// The delta of this snapshot against an *earlier* scrape of the same
    /// source — per-step deltas, mirroring `TrafficSnapshot::since`.
    ///
    /// The semantics are defined for the two situations a live cluster
    /// actually produces:
    ///
    /// * **Disjoint key sets.** The delta's domain is exactly *this*
    ///   (later) snapshot's metric names. A name that appears only here is
    ///   a newly registered metric and deltas against zero; a name present
    ///   only in `earlier` (the source restarted with a registry that has
    ///   not re-created it) is dropped — no phantom zero entries.
    /// * **Counter reset after a restart.** Counters and histogram counts
    ///   are monotone within one process lifetime, so a later value
    ///   *below* the earlier one means the source restarted and re-counted
    ///   from zero; the delta is then the later value itself (everything
    ///   since the restart), never a saturated 0 that would silently lose
    ///   the post-restart increments. A histogram that reset is taken
    ///   wholesale for the same reason.
    ///
    /// Gauges are levels, not monotone counts, so their delta is a signed
    /// subtraction (against 0 when newly registered).
    ///
    /// For a monotone, restart-free source whose key set only grows —
    /// every per-step daemon scrape — `earlier.plus(&delta)` reassembles
    /// this snapshot exactly.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let then_counters: BTreeMap<&str, u64> = earlier
            .counters
            .iter()
            .map(|c| (c.name.as_str(), c.value))
            .collect();
        let then_gauges: BTreeMap<&str, i64> = earlier
            .gauges
            .iter()
            .map(|g| (g.name.as_str(), g.value))
            .collect();
        let then_histograms: BTreeMap<&str, &HistogramValue> = earlier
            .histograms
            .iter()
            .map(|h| (h.name.as_str(), h))
            .collect();
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| {
                    let then = then_counters.get(c.name.as_str()).copied().unwrap_or(0);
                    CounterValue {
                        name: c.name.clone(),
                        value: if c.value >= then {
                            c.value - then
                        } else {
                            c.value // reset: count everything since restart
                        },
                    }
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| {
                    let then = then_gauges.get(g.name.as_str()).copied().unwrap_or(0);
                    GaugeValue {
                        name: g.name.clone(),
                        value: g.value.wrapping_sub(then),
                    }
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|h| match then_histograms.get(h.name.as_str()) {
                    Some(then) if h.count >= then.count => diff_histogram(h, then),
                    _ => h.clone(), // newly registered, or reset: take wholesale
                })
                .collect(),
        }
    }
}

/// Per-bucket difference of a histogram against an earlier scrape of the
/// same (non-reset) histogram.
fn diff_histogram(later: &HistogramValue, earlier: &HistogramValue) -> HistogramValue {
    let mut now = [0u64; HISTOGRAM_BUCKETS];
    let mut then = [0u64; HISTOGRAM_BUCKETS];
    for bc in &later.buckets {
        now[bc.bucket as usize] = bc.count;
    }
    for bc in &earlier.buckets {
        then[bc.bucket as usize] = bc.count;
    }
    HistogramValue {
        name: later.name.clone(),
        count: later.count - earlier.count,
        sum: later.sum.saturating_sub(earlier.sum),
        buckets: (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let count = now[i].saturating_sub(then[i]);
                (count != 0).then_some(BucketCount {
                    bucket: i as u8,
                    count,
                })
            })
            .collect(),
    }
}

/// Merges two snapshots name-by-name with the given combining operators
/// (the right-hand snapshot's lone entries combine against zero).
fn merge(
    a: &MetricsSnapshot,
    b: &MetricsSnapshot,
    op_u: fn(u64, u64) -> u64,
    op_i: fn(i64, i64) -> i64,
) -> MetricsSnapshot {
    let mut counters: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for c in &a.counters {
        counters.entry(&c.name).or_default().0 = c.value;
    }
    for c in &b.counters {
        counters.entry(&c.name).or_default().1 = c.value;
    }
    let mut gauges: BTreeMap<&str, (i64, i64)> = BTreeMap::new();
    for g in &a.gauges {
        gauges.entry(&g.name).or_default().0 = g.value;
    }
    for g in &b.gauges {
        gauges.entry(&g.name).or_default().1 = g.value;
    }
    let mut histograms: BTreeMap<&str, (Option<&HistogramValue>, Option<&HistogramValue>)> =
        BTreeMap::new();
    for h in &a.histograms {
        histograms.entry(&h.name).or_default().0 = Some(h);
    }
    for h in &b.histograms {
        histograms.entry(&h.name).or_default().1 = Some(h);
    }
    MetricsSnapshot {
        counters: counters
            .into_iter()
            .map(|(name, (x, y))| CounterValue {
                name: name.to_string(),
                value: op_u(x, y),
            })
            .collect(),
        gauges: gauges
            .into_iter()
            .map(|(name, (x, y))| GaugeValue {
                name: name.to_string(),
                value: op_i(x, y),
            })
            .collect(),
        histograms: histograms
            .into_iter()
            .map(|(name, (x, y))| merge_histogram(name, x, y, op_u))
            .collect(),
    }
}

fn merge_histogram(
    name: &str,
    a: Option<&HistogramValue>,
    b: Option<&HistogramValue>,
    op: fn(u64, u64) -> u64,
) -> HistogramValue {
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    let mut other = [0u64; HISTOGRAM_BUCKETS];
    for bc in a.map_or(&[][..], |h| &h.buckets) {
        buckets[bc.bucket as usize] = bc.count;
    }
    for bc in b.map_or(&[][..], |h| &h.buckets) {
        other[bc.bucket as usize] = bc.count;
    }
    HistogramValue {
        name: name.to_string(),
        count: op(a.map_or(0, |h| h.count), b.map_or(0, |h| h.count)),
        sum: op(a.map_or(0, |h| h.sum), b.map_or(0, |h| h.sum)),
        buckets: (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let count = op(buckets[i], other[i]);
                (count != 0).then_some(BucketCount {
                    bucket: i as u8,
                    count,
                })
            })
            .collect(),
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// The metric registry: named handles, get-or-create, one lock that the
/// hot path never sees (handles are resolved once, updates are atomics).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The named counter, created on first use. Call once and keep the
    /// handle; resolving by name takes the registry lock.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The named gauge, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The named histogram, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Scrapes every metric into a serializable, order-stable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| CounterValue {
                    name: name.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| GaugeValue {
                    name: name.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| {
                    let buckets: Vec<BucketCount> = (0..HISTOGRAM_BUCKETS)
                        .filter_map(|i| {
                            let count = h.buckets[i].load(Ordering::Relaxed);
                            (count != 0).then_some(BucketCount {
                                bucket: i as u8,
                                count,
                            })
                        })
                        .collect();
                    HistogramValue {
                        name: name.clone(),
                        count: h.count(),
                        sum: h.sum(),
                        buckets,
                    }
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn concurrent_increments_are_not_lost() {
        let registry = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = registry.counter("test.hits");
                let h = registry.histogram("test.sizes");
                thread::spawn(move || {
                    for i in 0..per_thread {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("test.hits"), threads * per_thread);
        let h = snap.histogram("test.sizes").unwrap();
        assert_eq!(h.count, threads * per_thread);
        assert_eq!(h.sum, threads * per_thread * (per_thread - 1) / 2);
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact_powers_of_two() {
        // Value → bucket: 0→0, 1→1, [2,3]→2, [4,7]→3, … [2^(i-1), 2^i-1]→i.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..64 {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i} stays in");
            assert_eq!(bucket_index(hi + 1), i + 1, "successor leaves bucket {i}");
        }

        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        let counts: Vec<u64> = h.buckets[..5]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // 0 → bucket 0, 1 → bucket 1, {2, 3} → bucket 2, 4 → bucket 3.
        assert_eq!(counts, vec![1, 1, 2, 1, 0]);
    }

    #[test]
    fn quantiles_at_bucket_edges_report_the_bucket_upper_bound() {
        let h = Histogram::default();
        // One observation exactly on each edge of bucket 3 ([4, 7]).
        h.record(4);
        h.record(7);
        // q=0 → smallest observation's bucket, q=1 → largest; both land in
        // bucket 3 whose upper bound is 7.
        assert_eq!(h.quantile(0.0), 7);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 7);

        // Straddle a bucket boundary: 8 opens bucket 4 ([8, 15]).
        h.record(8);
        assert_eq!(h.quantile(0.0), 7, "rank 1 of 3 stays in bucket 3");
        assert_eq!(h.quantile(0.5), 7, "rank 2 of 3 stays in bucket 3");
        assert_eq!(h.quantile(1.0), 15, "rank 3 of 3 is the new bucket");
        // p99 of 3 observations is the max by nearest rank.
        assert_eq!(h.quantile(0.99), 15);
    }

    #[test]
    fn quantile_estimates_never_undershoot_and_stay_within_2x() {
        let h = Histogram::default();
        let values = [1u64, 2, 3, 5, 9, 100, 1000, 65_535, 65_536];
        for v in values {
            h.record(v);
        }
        let snap = {
            let registry = Registry::new();
            for v in values {
                registry.histogram("t").record(v);
            }
            registry.snapshot()
        };
        let hv = snap.histogram("t").unwrap();
        let mut sorted = values;
        sorted.sort_unstable();
        for (i, q) in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
            .iter()
            .enumerate()
        {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = sorted[rank - 1];
            for est in [h.quantile(*q), hv.quantile(*q)] {
                assert!(est >= truth, "case {i}: estimate {est} < true {truth}");
                assert!(est < truth * 2, "case {i}: estimate {est} ≥ 2·{truth}");
            }
        }
        // Live histogram and snapshot agree.
        assert_eq!(h.quantile(0.5), hv.quantile(0.5));
    }

    #[test]
    fn quantile_of_an_empty_histogram_is_zero() {
        assert_eq!(Histogram::default().quantile(0.99), 0);
        let hv = HistogramValue {
            name: "empty".into(),
            count: 0,
            sum: 0,
            buckets: vec![],
        };
        assert_eq!(hv.quantile(0.5), 0);
    }

    #[test]
    fn snapshot_since_inverts_plus() {
        let registry = Registry::new();
        registry.counter("a").add(5);
        registry.gauge("g").set(-3);
        registry.histogram("h").record(100);
        let before = registry.snapshot();

        registry.counter("a").add(7);
        registry.counter("b").add(2);
        registry.gauge("g").set(4);
        registry.histogram("h").record(9);
        let after = registry.snapshot();

        let delta = after.since(&before);
        assert_eq!(delta.counter("a"), 7);
        assert_eq!(delta.counter("b"), 2);
        assert_eq!(delta.gauge("g"), 7); // −3 → 4
        let h = delta.histogram("h").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 9);
        assert_eq!(
            h.buckets,
            vec![BucketCount {
                bucket: 4,
                count: 1
            }]
        );

        // Delta plus baseline reassembles the later scrape, exactly the
        // TrafficSnapshot identity the coordinator relies on.
        assert_eq!(before.plus(&delta), after);
    }

    #[test]
    fn since_drops_keys_that_disappeared_and_keeps_new_ones() {
        let mut earlier = MetricsSnapshot::default();
        earlier.counters.push(CounterValue {
            name: "old.only".into(),
            value: 9,
        });
        earlier.gauges.push(GaugeValue {
            name: "old.gauge".into(),
            value: 5,
        });

        let registry = Registry::new();
        registry.counter("new.only").add(3);
        registry.gauge("new.gauge").set(-2);
        registry.histogram("new.hist").record(7);
        let later = registry.snapshot();

        let delta = later.since(&earlier);
        assert!(
            delta.counters.iter().all(|c| c.name != "old.only"),
            "a metric absent from the later scrape must not fabricate a \
             phantom zero entry: {delta:?}"
        );
        assert!(delta.gauges.iter().all(|g| g.name != "old.gauge"));
        assert_eq!(delta.counter("new.only"), 3, "new keys delta against 0");
        assert_eq!(delta.gauge("new.gauge"), -2);
        assert_eq!(delta.histogram("new.hist").unwrap().count, 1);
    }

    #[test]
    fn since_survives_a_counter_reset_after_restart() {
        // First lifetime: the daemon counted to 100.
        let registry = Registry::new();
        registry.counter("net.pushes").add(100);
        registry.histogram("net.sizes").record(50);
        registry.histogram("net.sizes").record(60);
        let before_restart = registry.snapshot();

        // The daemon restarts (fresh registry) and counts 4 more.
        let reborn = Registry::new();
        reborn.counter("net.pushes").add(4);
        reborn.histogram("net.sizes").record(10);
        let after_restart = reborn.snapshot();

        let delta = after_restart.since(&before_restart);
        assert_eq!(
            delta.counter("net.pushes"),
            4,
            "a reset counter reports everything since the restart, \
             not a saturated 0"
        );
        let h = delta.histogram("net.sizes").unwrap();
        assert_eq!(h.count, 1, "a reset histogram is taken wholesale");
        assert_eq!(h.sum, 10);
        assert_eq!(
            h.buckets,
            vec![BucketCount {
                bucket: 4,
                count: 1
            }]
        );
    }

    #[test]
    fn since_still_inverts_plus_for_monotone_growing_sources() {
        // The contract the coordinator's per-step delta discipline relies
        // on: key sets only grow, counters only rise ⇒ exact inversion.
        let registry = Registry::new();
        registry.counter("a").add(1);
        let before = registry.snapshot();
        registry.counter("a").add(10);
        registry.counter("b").inc();
        registry.histogram("h").record(3);
        let after = registry.snapshot();
        assert_eq!(before.plus(&after.since(&before)), after);
    }

    #[test]
    fn snapshots_roundtrip_through_serde_json() {
        let registry = Registry::new();
        registry.counter("x.count").add(3);
        registry.gauge("x.depth").set(-2);
        registry.histogram("x.hist").record(42);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
