//! The structured span/event tracing facade.
//!
//! A [`Tracer`] records bounded, timestamped [`TraceEvent`]s through a
//! pluggable [`Clock`]. The clock choice is the whole point: the threaded
//! and TCP substrates trace in wall time ([`WallClock`]), while the
//! sharded executor traces in **virtual time** ([`VirtualClock`], advanced
//! explicitly at epoch boundaries) — so a same-seed sharded run emits a
//! byte-identical trace no matter how many worker threads drive it, and
//! the determinism e2e can assert on traces as strongly as it asserts on
//! execution logs.
//!
//! The buffer is bounded ([`Tracer::with_capacity`]); overflow drops new
//! events and counts them, because observability must never grow memory
//! without bound inside a 10k-virtual-node step.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin.
    fn now_ns(&self) -> u64;
}

/// Wall time, anchored at construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic virtual time: an atomic nanosecond counter advanced
/// explicitly by whoever owns the timeline (the sharded executor advances
/// it at epoch boundaries). Reads never consult the OS, so two same-seed
/// runs see identical timestamps regardless of scheduling.
#[derive(Debug, Default)]
pub struct VirtualClock(AtomicU64);

impl VirtualClock {
    /// A virtual clock at t = 0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Jumps the clock to `ns` (virtual time only moves forward; the
    /// caller owns that invariant).
    pub fn set_ns(&self, ns: u64) {
        self.0.store(ns, Ordering::Relaxed);
    }

    /// Advances the clock by `ns`.
    pub fn advance_ns(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One `key = value` attachment on a [`TraceEvent`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Field name.
    pub key: String,
    /// Field value.
    pub value: u64,
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Timestamp from the tracer's [`Clock`], nanoseconds.
    pub ts_ns: u64,
    /// Event name (span events carry the span name and a `dur_ns` field).
    pub name: String,
    /// Structured attachments.
    pub fields: Vec<Field>,
}

/// A bounded recorder of [`TraceEvent`]s.
pub struct Tracer {
    clock: Arc<dyn Clock>,
    events: Mutex<Vec<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Tracer {
    /// A tracer with the default 4096-event buffer.
    pub fn new(clock: Arc<dyn Clock>) -> Tracer {
        Tracer::with_capacity(clock, 4096)
    }

    /// A tracer holding at most `capacity` events; further events are
    /// dropped and counted ([`Tracer::dropped`]).
    pub fn with_capacity(clock: Arc<dyn Clock>, capacity: usize) -> Tracer {
        Tracer {
            clock,
            events: Mutex::new(Vec::new()),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// The tracer's clock (the executor hands this out so event producers
    /// and the timeline owner share one timebase).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Records an instantaneous event.
    pub fn event(&self, name: &str, fields: &[(&str, u64)]) {
        let ts_ns = self.clock.now_ns();
        let mut events = self.events.lock().expect("tracer poisoned");
        if events.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(TraceEvent {
            ts_ns,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(key, value)| Field {
                    key: key.to_string(),
                    value: *value,
                })
                .collect(),
        });
    }

    /// Opens a span; the returned guard records a single event carrying
    /// the span's duration (`dur_ns`, in the tracer's clock) when dropped.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            tracer: self,
            name,
            start_ns: self.clock.now_ns(),
        }
    }

    /// Takes every recorded event, oldest first, leaving the buffer empty.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("tracer poisoned"))
    }

    /// Events discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// An open span; see [`Tracer::span`].
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    start_ns: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let dur = self.tracer.clock.now_ns().saturating_sub(self.start_ns);
        self.tracer.event(self.name, &[("dur_ns", dur)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scripted_trace() -> Vec<TraceEvent> {
        let clock = Arc::new(VirtualClock::new());
        let tracer = Tracer::new(clock.clone() as Arc<dyn Clock>);
        tracer.event("step.start", &[("population", 64)]);
        clock.advance_ns(250_000);
        {
            let _span = tracer.span("epoch");
            clock.advance_ns(250_000);
        }
        tracer.event("step.end", &[]);
        tracer.drain()
    }

    #[test]
    fn virtual_time_traces_are_byte_identical_across_runs() {
        let a = scripted_trace();
        let b = scripted_trace();
        assert_eq!(a, b);
        let json_a = serde_json::to_string(&a).unwrap();
        let json_b = serde_json::to_string(&b).unwrap();
        assert_eq!(json_a, json_b, "serialized traces are byte-identical");
        assert_eq!(a[1].name, "epoch");
        assert_eq!(a[1].ts_ns, 500_000, "span event lands at its close");
        assert_eq!(
            a[1].fields,
            vec![Field {
                key: "dur_ns".into(),
                value: 250_000
            }]
        );
    }

    #[test]
    fn bounded_buffer_drops_and_counts_overflow() {
        let tracer = Tracer::with_capacity(Arc::new(VirtualClock::new()), 2);
        tracer.event("a", &[]);
        tracer.event("b", &[]);
        tracer.event("c", &[]);
        assert_eq!(tracer.drain().len(), 2);
        assert_eq!(tracer.dropped(), 1);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }
}
