//! The structured span/event tracing facade, and the causal layer on top.
//!
//! A [`Tracer`] records bounded, timestamped [`TraceEvent`]s through a
//! pluggable [`Clock`]. The clock choice is the whole point: the threaded
//! and TCP substrates trace in wall time ([`WallClock`]), while the
//! sharded executor traces in **virtual time** ([`VirtualClock`], advanced
//! explicitly at epoch boundaries) — so a same-seed sharded run emits a
//! byte-identical trace no matter how many worker threads drive it, and
//! the determinism e2e can assert on traces as strongly as it asserts on
//! execution logs.
//!
//! The buffer is bounded ([`Tracer::with_capacity`]); overflow handling is
//! a policy choice ([`OverflowPolicy`]): a per-step tracer drops *new*
//! events (the step's opening matters most for causality), while a
//! daemon-lifetime flight recorder keeps the *newest* events (the crash's
//! immediate past matters most for forensics). Either way drops are
//! counted, and [`Tracer::count_drops_in`] surfaces the count as the
//! `obs.trace.dropped` registry counter so trace loss is never silent.
//!
//! [`CausalTracer`] adds causality: it allocates deterministic span ids,
//! stamps every send with a [`TraceContext`] (trace id, span id, causal
//! parent) that rides the wire frame, and links every receive back to the
//! send that caused it. [`NodeTrace`] / [`ClusterTrace`] are the
//! serializable capture shapes `cstrace` consumes.

use crate::metrics::Counter;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin.
    fn now_ns(&self) -> u64;
}

/// Wall time, anchored at construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic virtual time: an atomic nanosecond counter advanced
/// explicitly by whoever owns the timeline (the sharded executor advances
/// it at epoch boundaries). Reads never consult the OS, so two same-seed
/// runs see identical timestamps regardless of scheduling.
#[derive(Debug, Default)]
pub struct VirtualClock(AtomicU64);

impl VirtualClock {
    /// A virtual clock at t = 0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Jumps the clock to `ns` (virtual time only moves forward; the
    /// caller owns that invariant).
    pub fn set_ns(&self, ns: u64) {
        self.0.store(ns, Ordering::Relaxed);
    }

    /// Advances the clock by `ns`.
    pub fn advance_ns(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One `key = value` attachment on a [`TraceEvent`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Field name.
    pub key: String,
    /// Field value.
    pub value: u64,
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Timestamp from the tracer's [`Clock`], nanoseconds.
    pub ts_ns: u64,
    /// Event name (span events carry the span name and a `dur_ns` field).
    pub name: String,
    /// Structured attachments.
    pub fields: Vec<Field>,
}

/// What a full [`Tracer`] buffer does with the next event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Keep the oldest events, drop the incoming one (per-step tracers:
    /// the step's opening carries the causal roots).
    #[default]
    DropNew,
    /// Evict the oldest event to admit the incoming one (flight
    /// recorders: the newest events explain the crash).
    DropOld,
}

/// A bounded recorder of [`TraceEvent`]s.
pub struct Tracer {
    clock: Arc<dyn Clock>,
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    policy: OverflowPolicy,
    dropped: AtomicU64,
    drop_counter: Mutex<Option<Arc<Counter>>>,
}

impl Tracer {
    /// A tracer with the default 4096-event buffer.
    pub fn new(clock: Arc<dyn Clock>) -> Tracer {
        Tracer::with_capacity(clock, 4096)
    }

    /// A tracer holding at most `capacity` events; further events are
    /// dropped and counted ([`Tracer::dropped`]).
    pub fn with_capacity(clock: Arc<dyn Clock>, capacity: usize) -> Tracer {
        Tracer::with_policy(clock, capacity, OverflowPolicy::DropNew)
    }

    /// A flight-recorder ring: at most `capacity` events, evicting the
    /// *oldest* on overflow so the buffer always holds the immediate past.
    pub fn ring(clock: Arc<dyn Clock>, capacity: usize) -> Tracer {
        Tracer::with_policy(clock, capacity, OverflowPolicy::DropOld)
    }

    /// A tracer with an explicit overflow policy.
    pub fn with_policy(clock: Arc<dyn Clock>, capacity: usize, policy: OverflowPolicy) -> Tracer {
        Tracer {
            clock,
            events: Mutex::new(VecDeque::new()),
            capacity,
            policy,
            dropped: AtomicU64::new(0),
            drop_counter: Mutex::new(None),
        }
    }

    /// Mirrors every future drop into `registry`'s `obs.trace.dropped`
    /// counter, so ring overflow under load shows up in metrics scrapes
    /// instead of staying silent inside the tracer.
    pub fn count_drops_in(&self, registry: &crate::metrics::Registry) {
        let counter = registry.counter("obs.trace.dropped");
        counter.add(self.dropped());
        *self.drop_counter.lock().expect("tracer poisoned") = Some(counter);
    }

    /// The tracer's clock (the executor hands this out so event producers
    /// and the timeline owner share one timebase).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Records an instantaneous event.
    pub fn event(&self, name: &str, fields: &[(&str, u64)]) {
        let ts_ns = self.clock.now_ns();
        let mut events = self.events.lock().expect("tracer poisoned");
        if events.len() >= self.capacity {
            self.note_drop();
            match self.policy {
                OverflowPolicy::DropNew => return,
                OverflowPolicy::DropOld => {
                    events.pop_front();
                }
            }
        }
        events.push_back(TraceEvent {
            ts_ns,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(key, value)| Field {
                    key: key.to_string(),
                    value: *value,
                })
                .collect(),
        });
    }

    fn note_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.drop_counter.lock().expect("tracer poisoned").as_ref() {
            c.inc();
        }
    }

    /// Opens a span; the returned guard records a single event carrying
    /// the span's duration (`dur_ns`, in the tracer's clock) when dropped.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            tracer: self,
            name,
            start_ns: self.clock.now_ns(),
        }
    }

    /// Takes every recorded event, oldest first, leaving the buffer empty.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("tracer poisoned")).into()
    }

    /// Clones every buffered event, oldest first, without disturbing the
    /// buffer — the scrape primitive for a live flight recorder.
    pub fn snapshot_events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("tracer poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Events discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// An open span; see [`Tracer::span`].
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    start_ns: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let dur = self.tracer.clock.now_ns().saturating_sub(self.start_ns);
        self.tracer.event(self.name, &[("dur_ns", dur)]);
    }
}

/// The causal context one message carries: which trace (= which step) it
/// belongs to, the span of the send that produced it, and that send's own
/// causal parent. 24 bytes on the wire ([`TraceContext::WIRE_BYTES`]),
/// all-zero when absent.
///
/// Span ids are allocated deterministically by [`CausalTracer`]
/// (`(actor + 1) << 32 | seq`), so a context is "set" exactly when its
/// span id is non-zero — the property the wire decoder validates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The trace this message belongs to (the substrates use the step
    /// seed, which already names a step uniquely across a run).
    pub trace_id: u64,
    /// The span of the send event that emitted this message.
    pub span_id: u64,
    /// The span that caused the send (0 for a root, e.g. a timer tick).
    pub parent_id: u64,
}

impl TraceContext {
    /// The absent context (all-zero; encodes as a cleared trace flag).
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
        parent_id: 0,
    };

    /// Encoded size: three little-endian `u64`s.
    pub const WIRE_BYTES: usize = 24;

    /// Whether this context carries causality (span ids are never 0).
    pub fn is_set(&self) -> bool {
        self.span_id != 0
    }

    /// Little-endian wire encoding.
    pub fn to_bytes(&self) -> [u8; TraceContext::WIRE_BYTES] {
        let mut out = [0u8; TraceContext::WIRE_BYTES];
        out[..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..16].copy_from_slice(&self.span_id.to_le_bytes());
        out[16..].copy_from_slice(&self.parent_id.to_le_bytes());
        out
    }

    /// Inverse of [`TraceContext::to_bytes`].
    pub fn from_bytes(b: &[u8; TraceContext::WIRE_BYTES]) -> TraceContext {
        TraceContext {
            trace_id: u64::from_le_bytes(b[..8].try_into().expect("8 bytes")),
            span_id: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
            parent_id: u64::from_le_bytes(b[16..].try_into().expect("8 bytes")),
        }
    }
}

/// Per-actor causal span bookkeeping over a shared [`Tracer`].
///
/// Span ids are `(actor + 1) << 32 | seq` with a per-actor monotone `seq`
/// — globally unique within a trace without coordination, and fully
/// deterministic (no randomness, no wall time), which is what lets the
/// sharded executor assert byte-identical traces across worker counts.
///
/// The "current parent" starts at the `step.start` root span, becomes the
/// inbound span on every [`CausalTracer::on_recv`], and resets to the
/// root on [`CausalTracer::local_root`] (timer-driven activity is caused
/// by the step itself, not by whatever message happened to arrive last).
pub struct CausalTracer {
    tracer: Arc<Tracer>,
    trace_id: u64,
    actor: u64,
    seq: u64,
    root: u64,
    parent: u64,
}

impl CausalTracer {
    /// Opens actor `actor`'s participation in trace `trace_id`, recording
    /// a `step.start` event whose parent is `parent.span_id` (the control
    /// plane's `Step` context, when there is one).
    pub fn new(tracer: Arc<Tracer>, trace_id: u64, actor: u64, parent: TraceContext) -> Self {
        let mut t = CausalTracer {
            tracer,
            trace_id,
            actor,
            seq: 0,
            root: 0,
            parent: 0,
        };
        let root = t.next_span();
        t.root = root;
        t.parent = root;
        t.tracer.event(
            "step.start",
            &[
                ("trace", trace_id),
                ("span", root),
                ("parent", parent.span_id),
                ("actor", actor),
            ],
        );
        t
    }

    fn next_span(&mut self) -> u64 {
        self.seq += 1;
        ((self.actor + 1) << 32) | self.seq
    }

    /// The underlying tracer.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The trace this tracer stamps on outbound contexts.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Records a send and returns the context to stamp on the frame.
    pub fn on_send(&mut self, to: u64, kind: u64) -> TraceContext {
        let span = self.next_span();
        self.tracer.event(
            "send",
            &[
                ("span", span),
                ("parent", self.parent),
                ("to", to),
                ("kind", kind),
            ],
        );
        TraceContext {
            trace_id: self.trace_id,
            span_id: span,
            parent_id: self.parent,
        }
    }

    /// Records a receive; until the next receive (or [`local_root`]),
    /// everything this actor emits is caused by the inbound span.
    ///
    /// [`local_root`]: CausalTracer::local_root
    pub fn on_recv(&mut self, from: u64, ctx: TraceContext, kind: u64) {
        let span = self.next_span();
        self.parent = if ctx.is_set() { ctx.span_id } else { self.root };
        self.tracer.event(
            "recv",
            &[
                ("span", span),
                ("parent", self.parent),
                ("from", from),
                ("kind", kind),
            ],
        );
    }

    /// Resets the causal parent to the step root (timer-driven activity).
    pub fn local_root(&mut self) {
        self.parent = self.root;
    }

    /// Records a named marker under the current causal parent.
    pub fn mark(&mut self, name: &str, fields: &[(&str, u64)]) {
        let span = self.next_span();
        let mut all: Vec<(&str, u64)> = vec![("span", span), ("parent", self.parent)];
        all.extend_from_slice(fields);
        self.tracer.event(name, &all);
    }
}

/// One node's captured trace: the serializable unit a daemon dumps, a
/// `TraceReport` ships, and the sharded determinism e2e compares.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTrace {
    /// The node (daemon) the events came from.
    pub node: u64,
    /// Events lost to the bounded buffer before this capture.
    pub dropped: u64,
    /// The buffered events, oldest first.
    pub events: Vec<TraceEvent>,
}

impl NodeTrace {
    /// Captures `tracer`'s buffer without draining it.
    pub fn capture(node: u64, tracer: &Tracer) -> NodeTrace {
        NodeTrace {
            node,
            dropped: tracer.dropped(),
            events: tracer.snapshot_events(),
        }
    }
}

/// Per-node traces merged into one cluster timeline, in node-id order —
/// the shape `cstrace` loads.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTrace {
    /// One entry per node that produced a trace, ascending by node id.
    pub traces: Vec<NodeTrace>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scripted_trace() -> Vec<TraceEvent> {
        let clock = Arc::new(VirtualClock::new());
        let tracer = Tracer::new(clock.clone() as Arc<dyn Clock>);
        tracer.event("step.start", &[("population", 64)]);
        clock.advance_ns(250_000);
        {
            let _span = tracer.span("epoch");
            clock.advance_ns(250_000);
        }
        tracer.event("step.end", &[]);
        tracer.drain()
    }

    #[test]
    fn virtual_time_traces_are_byte_identical_across_runs() {
        let a = scripted_trace();
        let b = scripted_trace();
        assert_eq!(a, b);
        let json_a = serde_json::to_string(&a).unwrap();
        let json_b = serde_json::to_string(&b).unwrap();
        assert_eq!(json_a, json_b, "serialized traces are byte-identical");
        assert_eq!(a[1].name, "epoch");
        assert_eq!(a[1].ts_ns, 500_000, "span event lands at its close");
        assert_eq!(
            a[1].fields,
            vec![Field {
                key: "dur_ns".into(),
                value: 250_000
            }]
        );
    }

    #[test]
    fn bounded_buffer_drops_and_counts_overflow() {
        let tracer = Tracer::with_capacity(Arc::new(VirtualClock::new()), 2);
        tracer.event("a", &[]);
        tracer.event("b", &[]);
        tracer.event("c", &[]);
        assert_eq!(tracer.drain().len(), 2);
        assert_eq!(tracer.dropped(), 1);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn flight_recorder_ring_keeps_the_newest_events() {
        let tracer = Tracer::ring(Arc::new(VirtualClock::new()), 2);
        tracer.event("a", &[]);
        tracer.event("b", &[]);
        tracer.event("c", &[]);
        let names: Vec<String> = tracer
            .snapshot_events()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, ["b", "c"], "oldest evicted, newest kept");
        assert_eq!(tracer.dropped(), 1);
    }

    #[test]
    fn ring_overflow_surfaces_in_the_metrics_registry() {
        let registry = crate::metrics::Registry::new();
        let tracer = Tracer::ring(Arc::new(VirtualClock::new()), 1);
        tracer.event("pre-attach", &[]);
        tracer.event("pre-attach-dropped", &[]); // dropped before attach
        tracer.count_drops_in(&registry);
        tracer.event("post-attach-dropped", &[]);
        assert_eq!(tracer.dropped(), 2);
        assert_eq!(
            registry.snapshot().counter("obs.trace.dropped"),
            2,
            "catch-up at attach plus live drops"
        );
    }

    #[test]
    fn trace_context_roundtrips_through_wire_bytes() {
        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF_0BAD_F00D,
            span_id: (8u64 << 32) | 3,
            parent_id: (2u64 << 32) | 41,
        };
        assert!(ctx.is_set());
        assert_eq!(TraceContext::from_bytes(&ctx.to_bytes()), ctx);
        assert!(!TraceContext::NONE.is_set());
        assert_eq!(TraceContext::NONE.to_bytes(), [0u8; 24]);
    }

    #[test]
    fn causal_tracer_links_receives_to_sends_deterministically() {
        let run = || {
            let tracer = Arc::new(Tracer::new(Arc::new(VirtualClock::new()) as Arc<dyn Clock>));
            let mut a = CausalTracer::new(tracer.clone(), 99, 7, TraceContext::NONE);
            let ctx = a.on_send(8, 0);
            assert_eq!(ctx.trace_id, 99);
            assert_eq!(ctx.span_id, (8u64 << 32) | 2, "root took seq 1");
            assert_eq!(ctx.parent_id, (8u64 << 32) | 1, "parented on step.start");

            let mut b = CausalTracer::new(tracer.clone(), 99, 8, TraceContext::NONE);
            b.on_recv(7, ctx, 0);
            let reply = b.on_send(7, 3);
            assert_eq!(
                reply.parent_id, ctx.span_id,
                "the reply is caused by the inbound span"
            );
            b.local_root();
            let tick = b.on_send(7, 0);
            assert_eq!(tick.parent_id, (9u64 << 32) | 1, "timer sends re-root");
            tracer.drain()
        };
        let x = run();
        let y = run();
        assert_eq!(x, y, "span allocation is fully deterministic");
        assert_eq!(x[0].name, "step.start");
    }

    #[test]
    fn node_trace_capture_is_non_destructive() {
        let tracer = Tracer::new(Arc::new(VirtualClock::new()));
        tracer.event("x", &[("k", 1)]);
        let snap = NodeTrace::capture(4, &tracer);
        assert_eq!(snap.node, 4);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(tracer.snapshot_events().len(), 1, "buffer undisturbed");
        let json = serde_json::to_string(&ClusterTrace {
            traces: vec![snap.clone()],
        })
        .unwrap();
        let back: ClusterTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.traces, vec![snap]);
    }
}
