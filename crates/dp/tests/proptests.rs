//! Property-based tests for the differential-privacy substrate.

use cs_dp::gamma::gamma;
use cs_dp::laplace::{Laplace, LaplaceMechanism};
use cs_dp::{BudgetPlan, BudgetStrategy, NoiseShareGenerator, PrivacyAccountant};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn laplace_cdf_is_monotone_and_bounded(scale in 0.01f64..100.0, x in -500.0f64..500.0) {
        let d = Laplace::new(scale);
        let c = d.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(d.cdf(x + 1.0) >= c);
        // pdf is the density of the cdf: finite difference sanity.
        let h = 1e-5;
        let numeric = (d.cdf(x + h) - d.cdf(x - h)) / (2.0 * h);
        prop_assert!((numeric - d.pdf(x)).abs() < 1e-3);
    }

    #[test]
    fn laplace_samples_within_cdf_bounds(scale in 0.1f64..10.0, seed in any::<u64>()) {
        let d = Laplace::new(scale);
        let mut rng = StdRng::seed_from_u64(seed);
        // Quantile check with a loose bound: P(|X| > 10b) = e^{-10} ≈ 4.5e-5.
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!(x.is_finite());
            prop_assert!(x.abs() < scale * 40.0);
        }
    }

    #[test]
    fn mechanism_noise_scale_formula(eps in 0.01f64..10.0, sens in 0.01f64..100.0) {
        let m = LaplaceMechanism::new(eps, sens);
        prop_assert!((m.noise_scale() - sens / eps).abs() < 1e-12);
        prop_assert!((m.distribution().variance() - 2.0 * (sens / eps).powi(2)).abs() < 1e-6);
    }

    #[test]
    fn gamma_always_non_negative(shape in 0.001f64..5.0, scale in 0.01f64..10.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let g = gamma(&mut rng, shape, scale);
            prop_assert!(g >= 0.0 && g.is_finite());
        }
    }

    #[test]
    fn noise_share_effective_scale_monotone(n in 1usize..1000, b in 0.01f64..100.0) {
        let g = NoiseShareGenerator::new(n, b);
        let mut last = -1.0;
        for m in [0, n / 4, n / 2, n] {
            let s = g.effective_scale(m);
            prop_assert!(s >= last);
            prop_assert!(s <= b + 1e-12);
            last = s;
        }
        prop_assert!((g.effective_scale(n) - b).abs() < 1e-12);
    }

    #[test]
    fn every_budget_plan_sums_to_at_most_total(
        total in 0.01f64..100.0,
        iters in 1usize..30,
        ratio in 1.0f64..3.0,
        movements in proptest::collection::vec(0.0f64..1.0, 30),
    ) {
        for strategy in [
            BudgetStrategy::Uniform,
            BudgetStrategy::Increasing { ratio },
            BudgetStrategy::adaptive_default(),
        ] {
            let mut plan = BudgetPlan::new(strategy, total, iters);
            let mut spent = 0.0;
            let mut i = 0;
            while let Some(eps) = plan.next_epsilon(movements.get(i).copied()) {
                prop_assert!(eps > 0.0, "{strategy:?} produced non-positive ε");
                spent += eps;
                i += 1;
                prop_assert!(i <= iters, "{strategy:?} exceeded max iterations");
            }
            prop_assert!(
                spent <= total * (1.0 + 1e-9),
                "{strategy:?} overspent: {spent} > {total}"
            );
        }
    }

    #[test]
    fn accountant_never_exceeds_budget(
        budget in 0.1f64..10.0,
        charges in proptest::collection::vec(0.001f64..1.0, 1..50),
    ) {
        let mut acc = PrivacyAccountant::new(budget);
        for (i, &eps) in charges.iter().enumerate() {
            let _ = acc.charge(i, "q", eps);
        }
        prop_assert!(acc.spent() <= budget * (1.0 + 1e-6));
        prop_assert!(acc.remaining() >= 0.0);
        let recorded: f64 = acc.disclosures().iter().map(|d| d.epsilon).sum();
        prop_assert!((recorded - acc.spent()).abs() < 1e-9);
    }

    #[test]
    fn uniform_plan_slices_are_equal(total in 0.1f64..10.0, iters in 1usize..20) {
        let plan = BudgetPlan::new(BudgetStrategy::Uniform, total, iters);
        let want = total / iters as f64;
        for &s in plan.slices() {
            prop_assert!((s - want).abs() < 1e-12);
        }
    }
}
