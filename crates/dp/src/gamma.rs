//! From-scratch samplers: standard normal, exponential, and gamma.
//!
//! Noise shares need `Gamma(1/n, b)` with `n` the population size — a shape
//! far below 1, where naive rejection is hopeless. We use Marsaglia & Tsang's
//! squeeze method for shapes `>= 1` and the standard `α+1` boost
//! (`Gamma(α) = Gamma(α+1) · U^{1/α}`) below 1.

use rand::Rng;

/// Samples a standard normal via the Marsaglia polar method.
///
/// (Box-Muller without trigonometry; rejection rate ≈ 21%.)
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples `Exponential(scale)` (mean = `scale`) by inversion.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    assert!(scale > 0.0, "scale must be positive");
    // 1 - U ∈ (0, 1]; ln is finite.
    -scale * (1.0 - rng.gen::<f64>()).ln()
}

/// Samples `Gamma(shape, scale)` (mean = `shape·scale`).
///
/// Panics if `shape` or `scale` is not strictly positive.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(shape > 0.0, "shape must be positive");
    assert!(scale > 0.0, "scale must be positive");
    if shape < 1.0 {
        // Boost: X ~ Gamma(shape+1), U^(1/shape) scales it down.
        let x = gamma_shape_ge_one(rng, shape + 1.0);
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        x * u.powf(1.0 / shape) * scale
    } else {
        gamma_shape_ge_one(rng, shape) * scale
    }
}

/// Marsaglia-Tsang for `shape >= 1`, unit scale.
fn gamma_shape_ge_one<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    debug_assert!(shape >= 1.0);
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen();
        // Squeeze, then full acceptance test.
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v3;
        }
        if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..40_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let scale = 2.5;
        let samples: Vec<f64> = (0..40_000).map(|_| exponential(&mut rng, scale)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - scale).abs() < 0.1, "mean {mean}");
        assert!((var - scale * scale).abs() < 0.5, "var {var}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let (shape, scale) = (3.0, 1.5);
        let samples: Vec<f64> = (0..40_000).map(|_| gamma(&mut rng, shape, scale)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - shape * scale).abs() < 0.12, "mean {mean}");
        assert!((var - shape * scale * scale).abs() < 0.6, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        // The noise-share regime: shape = 1/population.
        let mut rng = StdRng::seed_from_u64(4);
        let (shape, scale) = (0.01, 2.0);
        let samples: Vec<f64> = (0..60_000).map(|_| gamma(&mut rng, shape, scale)).collect();
        let (mean, var) = mean_var(&samples);
        assert!(
            (mean - shape * scale).abs() < 0.02,
            "mean {mean} want {}",
            shape * scale
        );
        assert!(
            (var - shape * scale * scale).abs() < 0.05,
            "var {var} want {}",
            shape * scale * scale
        );
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gamma_shape_one_is_exponential() {
        // Gamma(1, b) = Exp(b): compare distribution tails.
        let mut rng = StdRng::seed_from_u64(5);
        let scale = 1.0;
        let n = 40_000;
        let g_above: f64 = (0..n)
            .map(|_| gamma(&mut rng, 1.0, scale))
            .filter(|&x| x > 1.0)
            .count() as f64
            / n as f64;
        // P(Exp(1) > 1) = e^{-1} ≈ 0.3679
        assert!((g_above - 0.3679).abs() < 0.02, "tail {g_above}");
    }

    #[test]
    fn sum_of_subunit_gammas_is_gamma_one() {
        // Σ_{i=1}^{n} Gamma(1/n, b) = Gamma(1, b) = Exp(b): the identity the
        // whole noise-share scheme rests on. Check the mean and variance of
        // the reassembled sums.
        let mut rng = StdRng::seed_from_u64(6);
        let n = 50usize;
        let scale = 3.0;
        let sums: Vec<f64> = (0..4_000)
            .map(|_| (0..n).map(|_| gamma(&mut rng, 1.0 / n as f64, scale)).sum())
            .collect();
        let (mean, var) = mean_var(&sums);
        assert!((mean - scale).abs() < 0.2, "mean {mean}");
        assert!((var - scale * scale).abs() < 1.0, "var {var}");
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn zero_shape_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        gamma(&mut rng, 0.0, 1.0);
    }
}
