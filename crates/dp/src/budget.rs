//! Privacy-budget distribution across k-means iterations.
//!
//! The total budget ε must be split over the `T` iterations' disclosures
//! (sequential composition). How it is split is one of the paper's two
//! "quality-enhancing heuristics": a flat split wastes budget on early,
//! coarse iterations whose centroids move a lot anyway, while later
//! iterations — where centroids settle and noise dominates the residual
//! movement — benefit from more budget.

use serde::{Deserialize, Serialize};

/// Strategy for splitting a total ε across at most `T` iterations.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum BudgetStrategy {
    /// `ε_t = ε / T` for every iteration.
    Uniform,
    /// Geometric increase: iteration `t` (0-based) receives
    /// `ε_t ∝ ratio^t` with `ratio > 1`, normalized to sum to ε. Later
    /// iterations get geometrically more budget.
    Increasing {
        /// Per-iteration growth factor (`> 1`; 1 degenerates to uniform).
        ratio: f64,
    },
    /// Adaptive: start from the uniform split, then transfer unspent budget
    /// forward. Iteration `t` receives the uniform slice scaled by how much
    /// the centroids still moved in the previous iteration (movement below
    /// `settle_threshold` releases budget to later iterations; a floor keeps
    /// every iteration above `floor_fraction` of the uniform slice).
    Adaptive {
        /// Relative centroid movement under which an iteration is considered
        /// "settling" and donates budget forward.
        settle_threshold: f64,
        /// Minimum fraction of the uniform slice any iteration receives.
        floor_fraction: f64,
    },
}

impl BudgetStrategy {
    /// A reasonable increasing default (×1.3 per iteration).
    pub fn increasing_default() -> Self {
        BudgetStrategy::Increasing { ratio: 1.3 }
    }

    /// A reasonable adaptive default.
    pub fn adaptive_default() -> Self {
        BudgetStrategy::Adaptive {
            settle_threshold: 0.05,
            floor_fraction: 0.5,
        }
    }
}

/// A concrete per-iteration allocation produced by a [`BudgetStrategy`].
///
/// ```
/// use cs_dp::{BudgetPlan, BudgetStrategy};
///
/// let mut plan = BudgetPlan::new(BudgetStrategy::Uniform, 1.0, 4);
/// let mut total = 0.0;
/// while let Some(eps) = plan.next_epsilon(None) {
///     total += eps;
/// }
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BudgetPlan {
    strategy: BudgetStrategy,
    total_epsilon: f64,
    max_iterations: usize,
    /// Precomputed slices for non-adaptive strategies; adaptive recomputes.
    slices: Vec<f64>,
    /// Adaptive state: budget released by settling iterations.
    carried: f64,
    next_iteration: usize,
}

impl BudgetPlan {
    /// Builds a plan for `total_epsilon` over at most `max_iterations`.
    ///
    /// Panics if `total_epsilon <= 0` or `max_iterations == 0`.
    pub fn new(strategy: BudgetStrategy, total_epsilon: f64, max_iterations: usize) -> Self {
        assert!(
            total_epsilon > 0.0 && total_epsilon.is_finite(),
            "epsilon must be positive"
        );
        assert!(max_iterations > 0, "need at least one iteration");
        let slices = match strategy {
            BudgetStrategy::Uniform | BudgetStrategy::Adaptive { .. } => {
                vec![total_epsilon / max_iterations as f64; max_iterations]
            }
            BudgetStrategy::Increasing { ratio } => {
                assert!(ratio >= 1.0, "increasing ratio must be >= 1");
                let weights: Vec<f64> = (0..max_iterations).map(|t| ratio.powi(t as i32)).collect();
                let total_w: f64 = weights.iter().sum();
                weights
                    .iter()
                    .map(|w| total_epsilon * w / total_w)
                    .collect()
            }
        };
        BudgetPlan {
            strategy,
            total_epsilon,
            max_iterations,
            slices,
            carried: 0.0,
            next_iteration: 0,
        }
    }

    /// The strategy behind this plan.
    pub fn strategy(&self) -> BudgetStrategy {
        self.strategy
    }

    /// Total ε the plan distributes.
    pub fn total_epsilon(&self) -> f64 {
        self.total_epsilon
    }

    /// Maximum number of iterations the plan supports.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// The ε for the next iteration.
    ///
    /// `previous_movement` is the relative centroid displacement observed in
    /// the previous iteration (ignored by non-adaptive strategies; pass
    /// `None` for the first iteration). Returns `None` once the plan is
    /// exhausted.
    pub fn next_epsilon(&mut self, previous_movement: Option<f64>) -> Option<f64> {
        if self.next_iteration >= self.max_iterations {
            return None;
        }
        let t = self.next_iteration;
        self.next_iteration += 1;
        let base = self.slices[t];
        match self.strategy {
            BudgetStrategy::Uniform | BudgetStrategy::Increasing { .. } => Some(base),
            BudgetStrategy::Adaptive {
                settle_threshold,
                floor_fraction,
            } => {
                let remaining_iters = (self.max_iterations - t) as f64;
                // Spread carried budget over remaining iterations.
                let bonus = self.carried / remaining_iters;
                self.carried -= bonus;
                let mut eps = base + bonus;
                if let Some(movement) = previous_movement {
                    if movement > settle_threshold {
                        // Still moving fast: donate part of this slice
                        // forward; noise now would be washed out anyway.
                        let donated = (1.0 - floor_fraction) * base;
                        eps -= donated;
                        self.carried += donated;
                    }
                }
                Some(eps.max(base * floor_fraction))
            }
        }
    }

    /// Full allocation for non-adaptive strategies (adaptive depends on the
    /// run, so this returns the initial slices).
    pub fn slices(&self) -> &[f64] {
        &self.slices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(plan: &mut BudgetPlan, movements: &[Option<f64>]) -> Vec<f64> {
        movements
            .iter()
            .map_while(|m| plan.next_epsilon(*m))
            .collect()
    }

    #[test]
    fn uniform_splits_evenly() {
        let mut plan = BudgetPlan::new(BudgetStrategy::Uniform, 1.0, 4);
        let eps = drain(&mut plan, &[None; 5]);
        assert_eq!(eps.len(), 4, "exhausts after max_iterations");
        for e in &eps {
            assert!((e - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn increasing_is_monotone_and_sums_to_total() {
        let mut plan = BudgetPlan::new(BudgetStrategy::Increasing { ratio: 1.5 }, 2.0, 6);
        let eps = drain(&mut plan, &[None; 6]);
        assert_eq!(eps.len(), 6);
        for w in eps.windows(2) {
            assert!(w[1] > w[0], "must increase: {eps:?}");
        }
        let total: f64 = eps.iter().sum();
        assert!((total - 2.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn increasing_ratio_one_equals_uniform() {
        let mut plan = BudgetPlan::new(BudgetStrategy::Increasing { ratio: 1.0 }, 1.0, 5);
        let eps = drain(&mut plan, &[None; 5]);
        for e in &eps {
            assert!((e - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn adaptive_never_exceeds_total() {
        let mut plan = BudgetPlan::new(BudgetStrategy::adaptive_default(), 1.0, 8);
        // Alternating fast/slow movement pattern.
        let movements: Vec<Option<f64>> = (0..8)
            .map(|i| Some(if i % 2 == 0 { 0.5 } else { 0.01 }))
            .collect();
        let eps = drain(&mut plan, &movements);
        let total: f64 = eps.iter().sum();
        assert!(total <= 1.0 + 1e-9, "total {total} exceeds budget");
        assert!(eps.iter().all(|&e| e > 0.0));
    }

    #[test]
    fn adaptive_floor_respected() {
        let strategy = BudgetStrategy::Adaptive {
            settle_threshold: 0.05,
            floor_fraction: 0.5,
        };
        let mut plan = BudgetPlan::new(strategy, 1.0, 10);
        let uniform_slice = 0.1;
        // Always fast movement: every iteration donates, floor binds.
        let movements: Vec<Option<f64>> = (0..10).map(|_| Some(1.0)).collect();
        let eps = drain(&mut plan, &movements);
        for e in &eps {
            assert!(*e >= uniform_slice * 0.5 - 1e-12, "{e} below floor");
        }
    }

    #[test]
    fn adaptive_settling_boosts_later_iterations() {
        let strategy = BudgetStrategy::adaptive_default();
        let mut plan = BudgetPlan::new(strategy, 1.0, 4);
        // Fast, fast, then settled: final iterations should get > uniform.
        let e1 = plan.next_epsilon(None).unwrap();
        let _e2 = plan.next_epsilon(Some(0.9)).unwrap();
        let _e3 = plan.next_epsilon(Some(0.9)).unwrap();
        let e4 = plan.next_epsilon(Some(0.01)).unwrap();
        assert!(
            e4 > e1,
            "settled tail should receive donated budget: {e1} vs {e4}"
        );
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn non_positive_epsilon_panics() {
        BudgetPlan::new(BudgetStrategy::Uniform, 0.0, 3);
    }
}
