//! Sequential-composition privacy accounting.
//!
//! "When several aggregates related to the same individuals are perturbed and
//! disclosed, differential privacy is still satisfied (self-composition
//! property) and the global privacy level, seen as a privacy budget, must be
//! divided among the perturbations" (paper §II-A). The accountant enforces
//! exactly that: every disclosure charges its ε, and charges beyond the
//! budget are refused.

use serde::{Deserialize, Serialize};

/// Error returned when a charge would exceed the budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccountantError {
    /// The ε that was requested.
    pub requested: f64,
    /// The ε still available.
    pub remaining: f64,
}

impl std::fmt::Display for AccountantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "privacy budget exhausted: requested ε={}, remaining ε={}",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for AccountantError {}

/// One recorded disclosure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Disclosure {
    /// Iteration the disclosure belongs to.
    pub iteration: usize,
    /// Human-readable label (e.g. `"cluster sums"`, `"cluster counts"`).
    pub label: String,
    /// ε charged.
    pub epsilon: f64,
}

/// Tracks ε spending under sequential composition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrivacyAccountant {
    budget: f64,
    spent: f64,
    disclosures: Vec<Disclosure>,
}

impl PrivacyAccountant {
    /// Creates an accountant with the given total budget.
    ///
    /// Panics if `budget <= 0`.
    pub fn new(budget: f64) -> Self {
        assert!(
            budget > 0.0 && budget.is_finite(),
            "budget must be positive"
        );
        PrivacyAccountant {
            budget,
            spent: 0.0,
            disclosures: Vec::new(),
        }
    }

    /// The total budget ε.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.budget - self.spent).max(0.0)
    }

    /// Records a disclosure, or refuses it if the budget cannot cover it.
    ///
    /// A tiny relative tolerance absorbs floating-point drift from summing
    /// many per-iteration slices.
    pub fn charge(
        &mut self,
        iteration: usize,
        label: impl Into<String>,
        epsilon: f64,
    ) -> Result<(), AccountantError> {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive"
        );
        let tolerance = self.budget * 1e-9;
        if self.spent + epsilon > self.budget + tolerance {
            return Err(AccountantError {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        self.spent += epsilon;
        self.disclosures.push(Disclosure {
            iteration,
            label: label.into(),
            epsilon,
        });
        Ok(())
    }

    /// All recorded disclosures, in order.
    pub fn disclosures(&self) -> &[Disclosure] {
        &self.disclosures
    }

    /// Total ε charged in a given iteration.
    pub fn spent_in_iteration(&self, iteration: usize) -> f64 {
        self.disclosures
            .iter()
            .filter(|d| d.iteration == iteration)
            .map(|d| d.epsilon)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut acc = PrivacyAccountant::new(1.0);
        acc.charge(0, "sums", 0.3).unwrap();
        acc.charge(0, "counts", 0.2).unwrap();
        assert!((acc.spent() - 0.5).abs() < 1e-12);
        assert!((acc.remaining() - 0.5).abs() < 1e-12);
        assert_eq!(acc.disclosures().len(), 2);
    }

    #[test]
    fn refuses_over_budget() {
        let mut acc = PrivacyAccountant::new(1.0);
        acc.charge(0, "a", 0.9).unwrap();
        let err = acc.charge(1, "b", 0.2).unwrap_err();
        assert!((err.remaining - 0.1).abs() < 1e-9);
        // Failed charge must not mutate state.
        assert!((acc.spent() - 0.9).abs() < 1e-12);
        assert_eq!(acc.disclosures().len(), 1);
    }

    #[test]
    fn exact_exhaustion_allowed() {
        let mut acc = PrivacyAccountant::new(1.0);
        for i in 0..10 {
            acc.charge(i, "slice", 0.1).unwrap();
        }
        assert!(acc.remaining() < 1e-9);
        assert!(acc.charge(10, "extra", 0.01).is_err());
    }

    #[test]
    fn float_drift_tolerated() {
        // 1/3 three times does not sum to exactly 1.0; tolerance must absorb
        // the drift either way.
        let mut acc = PrivacyAccountant::new(1.0);
        for i in 0..3 {
            acc.charge(i, "third", 1.0 / 3.0).unwrap();
        }
    }

    #[test]
    fn per_iteration_breakdown() {
        let mut acc = PrivacyAccountant::new(2.0);
        acc.charge(0, "sums", 0.25).unwrap();
        acc.charge(0, "counts", 0.25).unwrap();
        acc.charge(1, "sums", 0.5).unwrap();
        assert!((acc.spent_in_iteration(0) - 0.5).abs() < 1e-12);
        assert!((acc.spent_in_iteration(1) - 0.5).abs() < 1e-12);
        assert_eq!(acc.spent_in_iteration(2), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut acc = PrivacyAccountant::new(1.0);
        acc.charge(0, "x", 0.4).unwrap();
        let json = serde_json::to_string(&acc).unwrap();
        let back: PrivacyAccountant = serde_json::from_str(&json).unwrap();
        assert_eq!(back.spent(), acc.spent());
        assert_eq!(back.disclosures(), acc.disclosures());
    }
}
