//! Composition theorems.
//!
//! The paper uses basic (sequential) self-composition: `k` disclosures at
//! `ε₀` each cost `k·ε₀`. The advanced composition theorem (Dwork, Rothblum
//! & Vadhan 2010) buys the same `k` disclosures for roughly `ε₀·√(2k·ln 1/δ)`
//! at the price of a small failure probability `δ` — a drop-in upgrade for
//! deployments that can tolerate (ε, δ)-DP, letting the clustering run more
//! iterations on the same budget.

/// Total ε of `k`-fold composition of ε₀-DP mechanisms under **basic**
/// composition (δ = 0). The paper's accounting.
pub fn basic_composition(eps_each: f64, k: usize) -> f64 {
    assert!(eps_each >= 0.0 && eps_each.is_finite());
    eps_each * k as f64
}

/// Total ε of `k`-fold composition of ε₀-DP mechanisms under **advanced**
/// composition at slack `δ > 0`:
///
/// `ε' = ε₀·√(2k·ln(1/δ)) + k·ε₀·(e^{ε₀} − 1)`
///
/// Panics unless `0 < δ < 1`.
pub fn advanced_composition(eps_each: f64, k: usize, delta: f64) -> f64 {
    assert!(eps_each >= 0.0 && eps_each.is_finite());
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    let k_f = k as f64;
    eps_each * (2.0 * k_f * (1.0 / delta).ln()).sqrt() + k_f * eps_each * (eps_each.exp() - 1.0)
}

/// The tightest of basic and advanced composition for the given slack —
/// advanced only wins once `k` is large and `ε₀` small; this picks whichever
/// bound is better (both are valid simultaneously).
pub fn best_composition(eps_each: f64, k: usize, delta: f64) -> f64 {
    basic_composition(eps_each, k).min(advanced_composition(eps_each, k, delta))
}

/// The largest per-disclosure ε₀ such that `k` disclosures stay within
/// `eps_total` under [`best_composition`] at slack `δ` (binary search; the
/// bound is monotone in ε₀).
pub fn per_disclosure_epsilon(eps_total: f64, k: usize, delta: f64) -> f64 {
    assert!(eps_total > 0.0 && eps_total.is_finite());
    assert!(k >= 1);
    let mut lo = 0.0f64;
    let mut hi = eps_total; // basic composition admits at most eps_total at k=1
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if best_composition(mid, k, delta) <= eps_total {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// How many extra iterations advanced composition buys: the ratio between
/// the per-disclosure budgets under best and basic composition for the same
/// `(eps_total, k, δ)` — equivalently, the factor by which the per-iteration
/// noise scale shrinks.
pub fn advanced_gain(eps_total: f64, k: usize, delta: f64) -> f64 {
    let basic_each = eps_total / k as f64;
    per_disclosure_epsilon(eps_total, k, delta) / basic_each
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_is_linear() {
        assert!((basic_composition(0.1, 10) - 1.0).abs() < 1e-12);
        assert_eq!(basic_composition(0.0, 100), 0.0);
    }

    #[test]
    fn advanced_beats_basic_for_many_small_disclosures() {
        // 100 disclosures at ε₀ = 0.01: basic → 1.0; advanced at δ=1e-6
        // should land well below.
        let basic = basic_composition(0.01, 100);
        let advanced = advanced_composition(0.01, 100, 1e-6);
        assert!(
            advanced < basic,
            "advanced {advanced} should beat basic {basic}"
        );
    }

    #[test]
    fn basic_beats_advanced_for_few_disclosures() {
        // Small k: the √(2k ln 1/δ) factor exceeds k.
        let basic = basic_composition(0.5, 2);
        let advanced = advanced_composition(0.5, 2, 1e-6);
        assert!(basic < advanced);
        assert_eq!(best_composition(0.5, 2, 1e-6), basic);
    }

    #[test]
    fn per_disclosure_epsilon_inverts_best_composition() {
        for &(total, k, delta) in &[(1.0, 10usize, 1e-6), (0.5, 50, 1e-9), (2.0, 200, 1e-5)] {
            let eps0 = per_disclosure_epsilon(total, k, delta);
            let realized = best_composition(eps0, k, delta);
            assert!(
                realized <= total + 1e-9,
                "({total},{k},{delta}): realized {realized}"
            );
            // Tightness: 1% more per-disclosure budget must overshoot.
            assert!(best_composition(eps0 * 1.01, k, delta) > total);
        }
    }

    #[test]
    fn gain_exceeds_one_for_long_runs() {
        // With 100+ iterations the advanced accountant buys a materially
        // larger per-iteration budget.
        let gain = advanced_gain(1.0, 200, 1e-6);
        assert!(gain > 1.5, "gain {gain}");
        // And never falls below the basic baseline.
        assert!(advanced_gain(1.0, 2, 1e-6) >= 1.0 - 1e-9);
    }

    #[test]
    fn monotone_in_k() {
        let mut last = 0.0;
        for k in [1usize, 5, 25, 125] {
            let e = advanced_composition(0.05, k, 1e-6);
            assert!(e > last);
            last = e;
        }
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn bad_delta_panics() {
        advanced_composition(0.1, 10, 0.0);
    }
}
