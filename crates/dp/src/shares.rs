//! Distributed noise shares.
//!
//! A `Laplace(b)` variable equals `G − G'` with `G, G' ~ Gamma(1, b)`
//! independent, and a `Gamma(1, b)` is the sum of `n` i.i.d.
//! `Gamma(1/n, b)` variables. So if each of `n` participants contributes
//! `g_i − g'_i` with `g_i, g'_i ~ Gamma(1/n, b)`, the *sum of all shares* is
//! exactly `Laplace(b)` — and no strict subset knows the total noise. This is
//! the construction the paper sketches in §II-A ("these terms are called
//! noise-shares").
//!
//! When the gossip aggregation misses some shares (churn, finite cycles),
//! the realized noise is a subset-sum: still symmetric, slightly
//! under-dispersed — the source of the paper's *probabilistic* ε-DP variant.
//! [`NoiseShareGenerator::effective_scale`] quantifies it.

use crate::gamma::gamma;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Generates one participant's additive noise shares.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NoiseShareGenerator {
    population: usize,
    scale: f64,
}

impl NoiseShareGenerator {
    /// Creates a generator for a population of `population` participants and
    /// a target total noise of `Laplace(scale)`.
    ///
    /// Panics if `population == 0` or `scale <= 0`.
    pub fn new(population: usize, scale: f64) -> Self {
        assert!(population > 0, "population must be positive");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        NoiseShareGenerator { population, scale }
    }

    /// The population size `n`.
    pub fn population(&self) -> usize {
        self.population
    }

    /// The target total scale `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Samples this participant's share: `Gamma(1/n, b) − Gamma(1/n, b)`.
    pub fn sample_share<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let shape = 1.0 / self.population as f64;
        gamma(rng, shape, self.scale) - gamma(rng, shape, self.scale)
    }

    /// Samples one share per coordinate of a `len`-dimensional aggregate.
    pub fn sample_share_vec<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Vec<f64> {
        (0..len).map(|_| self.sample_share(rng)).collect()
    }

    /// The Laplace scale actually realized when only `contributing` of the
    /// `n` shares reach the aggregate.
    ///
    /// A partial sum of `m ≤ n` shares is `Gamma(m/n, b) − Gamma(m/n, b)`,
    /// with variance `2b²·m/n` — i.e. variance-equivalent to
    /// `Laplace(b·√(m/n))`. With `m = n` this is exactly `Laplace(b)`.
    pub fn effective_scale(&self, contributing: usize) -> f64 {
        let frac = (contributing.min(self.population)) as f64 / self.population as f64;
        self.scale * frac.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplace::Laplace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_share_sum_is_laplace() {
        // Assemble 3000 totals of 40 shares each; moments must match
        // Laplace(b).
        let mut rng = StdRng::seed_from_u64(20);
        let n = 40;
        let b = 2.0;
        let gen = NoiseShareGenerator::new(n, b);
        let totals: Vec<f64> = (0..3000)
            .map(|_| (0..n).map(|_| gen.sample_share(&mut rng)).sum())
            .collect();
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        let var =
            totals.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (totals.len() - 1) as f64;
        let want = Laplace::new(b).variance();
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!((var - want).abs() < want * 0.15, "var {var} want {want}");
    }

    #[test]
    fn share_sum_tail_matches_laplace_cdf() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 25;
        let b = 1.0;
        let gen = NoiseShareGenerator::new(n, b);
        let trials = 4000;
        let beyond: f64 = (0..trials)
            .map(|_| (0..n).map(|_| gen.sample_share(&mut rng)).sum::<f64>())
            .filter(|&t: &f64| t.abs() > 1.0)
            .count() as f64
            / trials as f64;
        // P(|Laplace(1)| > 1) = e^{-1} ≈ 0.3679
        assert!((beyond - 0.3679).abs() < 0.03, "tail {beyond}");
    }

    #[test]
    fn single_share_is_small_on_average() {
        // An individual share has variance 2b²/n — each participant holds a
        // negligible, non-identifying fragment of the noise.
        let mut rng = StdRng::seed_from_u64(22);
        let n = 1000;
        let b = 1.0;
        let gen = NoiseShareGenerator::new(n, b);
        let shares: Vec<f64> = (0..20_000).map(|_| gen.sample_share(&mut rng)).collect();
        let var = shares.iter().map(|x| x * x).sum::<f64>() / shares.len() as f64;
        let want = 2.0 * b * b / n as f64;
        assert!((var - want).abs() < want, "var {var} want {want}");
    }

    #[test]
    fn effective_scale_degrades_with_sqrt() {
        let gen = NoiseShareGenerator::new(100, 2.0);
        assert_eq!(gen.effective_scale(100), 2.0);
        assert!((gen.effective_scale(25) - 1.0).abs() < 1e-12);
        assert_eq!(gen.effective_scale(0), 0.0);
        assert_eq!(gen.effective_scale(200), 2.0, "clamped at n");
    }

    #[test]
    fn vector_shares_have_independent_coordinates() {
        let mut rng = StdRng::seed_from_u64(23);
        let gen = NoiseShareGenerator::new(10, 1.0);
        let v = gen.sample_share_vec(8, &mut rng);
        assert_eq!(v.len(), 8);
        let distinct: std::collections::HashSet<u64> = v.iter().map(|x| x.to_bits()).collect();
        assert_eq!(distinct.len(), 8, "continuous draws must differ");
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn zero_population_panics() {
        NoiseShareGenerator::new(0, 1.0);
    }
}
