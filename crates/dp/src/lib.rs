//! # cs-dp — differential privacy substrate for Chiaroscuro
//!
//! Implements the perturbation side of the paper's Diptych:
//!
//! * the **Laplace mechanism** ([`laplace`]): `ε`-differentially-private
//!   release of aggregates by adding `Laplace(Δ/ε)` noise;
//! * **noise shares** ([`shares`]): a `Laplace(b)` variable decomposed into
//!   `n` per-participant terms, each the difference of two `Gamma(1/n, b)`
//!   draws — "A Laplace random variable can be computed by summing up n terms
//!   independently generated based on the gamma distribution" (paper §II-A).
//!   No single party ever knows the total noise;
//! * **gamma sampling** ([`gamma`]): Marsaglia-Tsang with the `α+1` boost for
//!   the sub-unit shapes that noise shares need, built on a from-scratch
//!   polar-method normal sampler;
//! * **privacy budgets** ([`budget`]): the per-iteration ε-allocation
//!   strategies behind the paper's "smart privacy budget distribution"
//!   quality heuristic (uniform, geometric-increasing, adaptive);
//! * a **privacy accountant** ([`accountant`]): sequential self-composition
//!   bookkeeping across iterations and disclosed aggregates;
//! * **composition theorems** ([`composition`]): basic (the paper's) and
//!   advanced (Dwork-Rothblum-Vadhan) composition, including the inverse
//!   "how much ε per iteration can k iterations afford" solver.
//!
//! ## Example
//!
//! ```
//! use cs_dp::laplace::LaplaceMechanism;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // Release a count (sensitivity 1) with ε = 0.5.
//! let mech = LaplaceMechanism::new(0.5, 1.0);
//! let noisy = mech.perturb(100.0, &mut rng);
//! assert!((noisy - 100.0).abs() < 100.0); // within ~50 scale units w.h.p.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountant;
pub mod budget;
pub mod composition;
pub mod gamma;
pub mod laplace;
pub mod shares;

pub use accountant::{AccountantError, PrivacyAccountant};
pub use budget::{BudgetPlan, BudgetStrategy};
pub use laplace::{Laplace, LaplaceMechanism};
pub use shares::NoiseShareGenerator;
