//! The Laplace distribution and the ε-DP Laplace mechanism.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A centered Laplace distribution with scale `b` (density
/// `f(x) = exp(-|x|/b) / 2b`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution. Panics if `scale <= 0`.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        Laplace { scale }
    }

    /// The scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The variance `2b²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Samples by inversion: `u ~ U(-1/2, 1/2)`,
    /// `x = -b·sgn(u)·ln(1 - 2|u|)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>() - 0.5;
        -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        (-x.abs() / self.scale).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }
}

/// The ε-differentially-private Laplace mechanism for an aggregate with known
/// L1 sensitivity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LaplaceMechanism {
    epsilon: f64,
    sensitivity: f64,
}

impl LaplaceMechanism {
    /// Creates a mechanism. Panics unless `epsilon > 0` and
    /// `sensitivity > 0`.
    pub fn new(epsilon: f64, sensitivity: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive"
        );
        assert!(
            sensitivity > 0.0 && sensitivity.is_finite(),
            "sensitivity must be positive"
        );
        LaplaceMechanism {
            epsilon,
            sensitivity,
        }
    }

    /// The privacy level ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The L1 sensitivity Δ.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The noise scale `b = Δ/ε`.
    pub fn noise_scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// The distribution of the added noise.
    pub fn distribution(&self) -> Laplace {
        Laplace::new(self.noise_scale())
    }

    /// Releases `value + Laplace(Δ/ε)`.
    pub fn perturb<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        value + self.distribution().sample(rng)
    }

    /// Perturbs each coordinate of a vector aggregate whose *total* L1
    /// sensitivity is `self.sensitivity` (the per-coordinate noise shares a
    /// single ε because the sensitivity already bounds the whole vector).
    pub fn perturb_vec<R: Rng + ?Sized>(&self, values: &[f64], rng: &mut R) -> Vec<f64> {
        let d = self.distribution();
        values.iter().map(|v| v + d.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_moments() {
        let mut rng = StdRng::seed_from_u64(10);
        let d = Laplace::new(2.0);
        let samples: Vec<f64> = (0..60_000).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(
            (var - d.variance()).abs() < 0.3,
            "var {var} want {}",
            d.variance()
        );
    }

    #[test]
    fn cdf_pdf_consistency() {
        let d = Laplace::new(1.5);
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((d.cdf(f64::INFINITY) - 1.0).abs() < 1e-12);
        assert!(d.cdf(-1.0) + d.cdf(1.0) - 1.0 < 1e-12, "symmetry");
        // pdf integrates (numerically) to ~1
        let integral: f64 = (-2000..2000).map(|i| d.pdf(i as f64 * 0.01) * 0.01).sum();
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn empirical_cdf_matches() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Laplace::new(1.0);
        let n = 50_000;
        let below: f64 = (0..n)
            .map(|_| d.sample(&mut rng))
            .filter(|&x| x < 1.0)
            .count() as f64
            / n as f64;
        assert!((below - d.cdf(1.0)).abs() < 0.01, "empirical {below}");
    }

    #[test]
    fn mechanism_scale() {
        let m = LaplaceMechanism::new(0.5, 2.0);
        assert_eq!(m.noise_scale(), 4.0);
        assert_eq!(m.distribution().variance(), 32.0);
    }

    #[test]
    fn perturb_vec_length_and_independence() {
        let mut rng = StdRng::seed_from_u64(12);
        let m = LaplaceMechanism::new(1.0, 1.0);
        let v = vec![1.0; 16];
        let p = m.perturb_vec(&v, &mut rng);
        assert_eq!(p.len(), 16);
        // With continuous noise two coordinates are a.s. different.
        assert_ne!(p[0], p[1]);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_panics() {
        LaplaceMechanism::new(0.0, 1.0);
    }
}
