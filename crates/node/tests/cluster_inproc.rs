//! In-process cluster tests: the daemon body (`cs_node::daemon::run`) is a
//! plain function, so a whole cluster can run as threads of the test
//! process — same control protocol, same TCP data plane, no process
//! spawning. The facade's `tests/tcp_e2e.rs` covers the real multi-process
//! deployment; these tests keep the bootstrap/step/report machinery honest
//! at unit-test speed.

use chiaroscuro::{ChiaroscuroConfig, Engine};
use cs_node::{ClusterBackend, ClusterConfig, Coordinator, DaemonOpts, TimingSpec};
use cs_timeseries::datasets::blobs::{generate, BlobsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::thread;
use std::time::Duration;

fn spawn_daemon_threads(n: usize, coordinator: String) -> Vec<thread::JoinHandle<()>> {
    (0..n)
        .map(|id| {
            let coordinator = coordinator.clone();
            thread::Builder::new()
                .name(format!("inproc-daemon-{id}"))
                .spawn(move || {
                    cs_node::daemon::run(&DaemonOpts::new(id, coordinator))
                        .unwrap_or_else(|e| panic!("daemon {id} failed: {e}"));
                })
                .expect("spawn daemon thread")
        })
        .collect()
}

fn fast_timing() -> TimingSpec {
    TimingSpec {
        push_interval_us: 200,
        quiesce_ms: 150,
        decrypt_deadline_ms: 10_000,
        step_timeout_ms: 30_000,
    }
}

#[test]
fn plain_cluster_runs_an_engine_end_to_end() {
    let n = 8;
    let data = generate(
        &BlobsConfig {
            count: n,
            clusters: 2,
            len: 4,
            noise: 0.2,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(11),
    );
    let mut config = ChiaroscuroConfig::demo_simulated();
    config.k = 2;
    config.max_iterations = 2;
    config.gossip_cycles = 20;
    config.epsilon = 1000.0;
    let engine = Engine::new(config).unwrap();

    let coordinator = Coordinator::bind().unwrap();
    let addr = coordinator.addr().unwrap().to_string();
    let daemons = spawn_daemon_threads(n, addr);
    let cluster = coordinator
        .accept_cluster(n, Duration::from_secs(20))
        .unwrap();
    let mut backend = ClusterBackend::new(
        cluster,
        ClusterConfig {
            timing: fast_timing(),
            ..ClusterConfig::default()
        },
    );

    let out = engine.run_with_backend(&data.series, &mut backend).unwrap();
    assert_eq!(out.iterations, 2);
    assert_eq!(backend.steps_run(), 2);
    assert_eq!(out.centroids.len(), 2);
    assert!(out.log.records.iter().all(|r| r.cost.gossip_messages > 0));
    let snap = backend.last_snapshot().unwrap();
    assert!(snap.gossip.bytes > 0, "gossip bytes crossed the sockets");
    assert!(
        backend
            .last_reports()
            .unwrap()
            .iter()
            .all(|r| r.bad_frames == 0),
        "clean decode across the cluster"
    );

    backend.shutdown();
    for d in daemons {
        d.join().expect("daemon thread exits cleanly");
    }
}

#[test]
fn metrics_scrape_reconciles_with_coordinator_deltas() {
    let n = 6;
    let data = generate(
        &BlobsConfig {
            count: n,
            clusters: 2,
            len: 4,
            noise: 0.2,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(31),
    );
    let mut config = ChiaroscuroConfig::demo_simulated();
    config.k = 2;
    config.max_iterations = 2;
    config.gossip_cycles = 15;
    config.epsilon = 1000.0;
    let engine = Engine::new(config).unwrap();

    let coordinator = Coordinator::bind().unwrap();
    let addr = coordinator.addr().unwrap().to_string();
    let daemons = spawn_daemon_threads(n, addr);
    let cluster = coordinator
        .accept_cluster(n, Duration::from_secs(20))
        .unwrap();
    let mut backend = ClusterBackend::new(
        cluster,
        ClusterConfig {
            timing: fast_timing(),
            ..ClusterConfig::default()
        },
    );

    engine.run_with_backend(&data.series, &mut backend).unwrap();
    assert_eq!(backend.steps_run(), 2);

    // Report-carried deltas reconcile with the traffic snapshot: the
    // default cluster link is ideal, so nothing is dropped and the
    // send-attempt counters equal the delivered counts.
    let last = backend.last_metrics().unwrap().clone();
    let snap = *backend.last_snapshot().unwrap();
    for (class, counts) in [
        ("gossip", &snap.gossip),
        ("decrypt", &snap.decrypt),
        ("control", &snap.control),
    ] {
        assert_eq!(
            last.counter(&format!("net.{class}.dropped")),
            0,
            "ideal links drop nothing ({class})"
        );
        assert_eq!(
            last.counter(&format!("net.{class}.sent.messages")),
            counts.messages,
            "sent == delivered on ideal links ({class})"
        );
        assert_eq!(
            last.counter(&format!("net.{class}.sent.bytes")),
            counts.bytes,
            "byte accounting matches ({class})"
        );
    }
    assert!(last.counter("net.gossip.sent.messages") > 0);

    // Phase profiling rode the same delta discipline.
    let total = backend.metrics_total().clone();
    assert!(total.counter("phase.gossip.ns") > 0, "gossip phase timed");

    // Live scrape between steps: each daemon reports its cumulative
    // snapshot, and the cluster sum is exactly the coordinator's
    // accumulated per-step deltas — the delta/cumulative books agree.
    let scraped = backend.scrape_metrics(Duration::from_secs(10));
    assert!(
        scraped.iter().all(|s| s.is_some()),
        "every daemon answered the scrape"
    );
    let scrape_sum = scraped
        .iter()
        .flatten()
        .fold(cs_obs::MetricsSnapshot::default(), |acc, m| acc.plus(m));
    assert_eq!(scrape_sum, total, "scrape reconciles with summed deltas");

    backend.shutdown();
    for d in daemons {
        d.join().expect("daemon thread exits cleanly");
    }
}

#[test]
fn real_crypto_cluster_distributes_shares_and_decrypts() {
    let n = 5;
    let data = generate(
        &BlobsConfig {
            count: n,
            clusters: 2,
            len: 3,
            noise: 0.2,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(21),
    );
    let mut config = ChiaroscuroConfig::test_real();
    config.k = 2;
    config.max_iterations = 1;
    config.gossip_cycles = 6;
    config.epsilon = 1e5;
    let engine = Engine::new(config).unwrap();

    let coordinator = Coordinator::bind().unwrap();
    let addr = coordinator.addr().unwrap().to_string();
    let daemons = spawn_daemon_threads(n, addr);
    let cluster = coordinator
        .accept_cluster(n, Duration::from_secs(20))
        .unwrap();
    let mut timing = fast_timing();
    // Real crypto in debug builds is slow; give the pacing some air.
    timing.push_interval_us = if cfg!(debug_assertions) {
        50_000
    } else {
        2_000
    };
    let mut backend = ClusterBackend::new(
        cluster,
        ClusterConfig {
            timing,
            ..ClusterConfig::default()
        },
    );

    let out = engine.run_with_backend(&data.series, &mut backend).unwrap();
    assert_eq!(backend.steps_run(), 1);
    assert_eq!(out.centroids.len(), 2);
    let reports = backend.last_reports().unwrap();
    let with_estimates = reports.iter().filter(|r| r.estimate.is_some()).count();
    assert!(
        with_estimates > n / 2,
        "most daemons decrypt an estimate, got {with_estimates}/{n}"
    );
    assert!(
        reports
            .iter()
            .map(|r| r.decrypt_ops.partial_decryptions)
            .sum::<u64>()
            > 0,
        "committee daemons served partial decryptions"
    );
    let snap = backend.last_snapshot().unwrap();
    assert!(snap.decrypt.bytes > 0, "decrypt frames crossed the sockets");

    backend.shutdown();
    for d in daemons {
        d.join().expect("daemon thread exits cleanly");
    }
}

/// Drives the `--obs-addr` surface end-to-end: node 0 runs as a real
/// `csnoded` process with the HTTP endpoint enabled, the rest as threads.
/// After an engine run, both paths are probed over a plain `TcpStream`
/// (no HTTP client dependency): `/metrics` must speak Prometheus text,
/// `/trace` must return the node's flight-recorder ring as JSON.
#[test]
fn obs_endpoint_serves_metrics_and_trace_from_a_live_daemon() {
    use std::io::{BufRead, BufReader, Read as _, Write as _};
    use std::process::{Command, Stdio};

    let Some(binary) = cs_node::find_csnoded() else {
        eprintln!("skipping: csnoded binary not built alongside this test");
        return;
    };

    let n = 4;
    let data = generate(
        &BlobsConfig {
            count: n,
            clusters: 2,
            len: 4,
            noise: 0.2,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(47),
    );
    let mut config = ChiaroscuroConfig::demo_simulated();
    config.k = 2;
    config.max_iterations = 1;
    config.gossip_cycles = 15;
    config.epsilon = 1000.0;
    let engine = Engine::new(config).unwrap();

    let coordinator = Coordinator::bind().unwrap();
    let addr = coordinator.addr().unwrap().to_string();
    let mut child = Command::new(&binary)
        .args(["--id", "0", "--coordinator", &addr])
        .args(["--obs-addr", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn csnoded");
    let daemons: Vec<_> = (1..n)
        .map(|id| {
            let coordinator = addr.clone();
            thread::spawn(move || {
                cs_node::daemon::run(&DaemonOpts::new(id, coordinator))
                    .unwrap_or_else(|e| panic!("daemon {id} failed: {e}"));
            })
        })
        .collect();
    let cluster = coordinator
        .accept_cluster(n, Duration::from_secs(20))
        .unwrap();
    let mut backend = ClusterBackend::new(
        cluster,
        ClusterConfig {
            timing: fast_timing(),
            ..ClusterConfig::default()
        },
    );
    engine.run_with_backend(&data.series, &mut backend).unwrap();

    // The daemon announced its ephemeral endpoint on stderr right after
    // bootstrap, so the line is already buffered in the pipe by now.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let obs_addr = loop {
        let mut line = String::new();
        assert_ne!(
            stderr.read_line(&mut line).unwrap(),
            0,
            "daemon stderr EOF before the obs endpoint announcement"
        );
        if let Some(rest) = line.trim_end().split("obs endpoint on ").nth(1) {
            break rest.to_string();
        }
    };

    let probe = |path: &str| -> String {
        let mut stream = std::net::TcpStream::connect(&obs_addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    };

    let metrics = probe("/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
    assert!(
        metrics.contains("# TYPE net_gossip_sent_messages counter"),
        "Prometheus text with sanitized names:\n{metrics}"
    );
    let trace = probe("/trace");
    assert!(trace.starts_with("HTTP/1.1 200"), "{trace}");
    let body = trace.split("\r\n\r\n").nth(1).unwrap();
    let node_trace: cs_obs::NodeTrace = serde_json::from_str(body).unwrap();
    assert_eq!(node_trace.node, 0);
    assert!(
        node_trace.events.iter().any(|e| e.name == "step.start"),
        "flight recorder holds the step's causal events"
    );

    backend.shutdown();
    for d in daemons {
        d.join().expect("daemon thread exits cleanly");
    }
    assert!(child.wait().unwrap().success(), "csnoded exits cleanly");
}
