//! # cs-node — Chiaroscuro out of one process
//!
//! Every other execution substrate in this workspace — the cycle and
//! event-driven simulators, the threaded runtime, the sharded executor,
//! even the TCP loopback — still lives inside a single OS process. This
//! crate is the deployment layer that doesn't: one **`csnoded` daemon per
//! participant**, gossiping wire frames over real sockets
//! ([`cs_net::tcp::TcpTransport`]), with a thin coordinator for bootstrap
//! and step pacing, and a supervisor that spawns/kills/reaps local
//! clusters for tests and examples.
//!
//! * [`proto`] — the control-plane protocol (length-prefixed serde-JSON):
//!   `Hello` → `Bootstrap` → per-step `Step`/`Done`/`StepEnd`/`Report` →
//!   `Shutdown`. The data plane never touches the coordinator.
//! * [`daemon`] — the `csnoded` body: bootstrap handshake (protocol
//!   version check, population manifest, key-share delivery), then one
//!   [`cs_net::node::ProtocolNode`] per step driven to termination over
//!   TCP.
//! * [`coordinator`] — accept/bootstrap a cluster and drive it as a
//!   [`chiaroscuro::backend::ComputationBackend`]
//!   ([`coordinator::ClusterBackend`]), so
//!   `Engine::run_with_backend` executes a full run across processes.
//! * [`supervisor`] — spawn/kill/wait on a local cluster of child
//!   processes; `kill` is a genuine SIGKILL, making "a device dies
//!   mid-gossip" a real fail-stop instead of a simulated flag.
//! * [`watch`] — the `cswatch` SLO watchdog's engine: poll every daemon's
//!   `/healthz` + `/health` + `/series` HTTP routes, judge the cluster
//!   (an invariant violation breaches; churn merely flags), and render a
//!   terminal dashboard with rate sparklines and phase bars.
//!
//! The trust model matches the paper's initialization assumption: the
//! coordinator deals key shares and learns only the DP-perturbed
//! aggregates the protocol discloses to everyone; all sensitive exchange
//! happens daemon-to-daemon under encryption.
//!
//! See `docs/deployment.md` for ports, bootstrap order, and supervisor
//! usage; `tests/tcp_e2e.rs` runs 16 real processes with real crypto and
//! a mid-gossip SIGKILL against the in-process sharded run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod daemon;
pub mod proto;
pub mod supervisor;
pub mod watch;

pub use coordinator::{Cluster, ClusterBackend, ClusterConfig, Coordinator};
pub use daemon::DaemonOpts;
pub use proto::{ControlMsg, LinkSpec, TimingSpec, PROTO_VERSION};
pub use supervisor::{find_bin, find_csnoded, Supervisor};
