//! Local cluster supervision: spawn, kill, and reap `csnoded` processes.
//!
//! This is the test/example harness for the multi-process deployment — the
//! moral equivalent of the threaded runtime's churn `Controls`, except the
//! "nodes" are real OS processes and a crash is a real `SIGKILL`. Anything
//! production-shaped (systemd units, containers, restarts) stays out of
//! scope; see `docs/deployment.md` for how the pieces compose.

use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A supervised local cluster of `csnoded` child processes.
///
/// Thread-safe: scripted kills fire from timer threads while the
/// coordinator drives the run, so the children sit behind a mutex.
pub struct Supervisor {
    children: Mutex<Vec<Option<Child>>>,
}

impl Supervisor {
    /// Spawns `n` daemons (`--id 0..n`) pointed at `coordinator`.
    ///
    /// Children inherit stderr (daemon failures stay visible in test
    /// output) and get a null stdin/stdout.
    pub fn spawn(binary: &Path, coordinator: &str, n: usize) -> io::Result<Supervisor> {
        Supervisor::spawn_opts(binary, coordinator, n, false)
    }

    /// Like [`Supervisor::spawn`], but every daemon also serves its
    /// observability HTTP endpoint on an ephemeral localhost port
    /// (`--obs-addr 127.0.0.1:0`). The bound addresses travel back through
    /// each daemon's `Hello`, so the coordinator's `obs_addrs()` has them.
    pub fn spawn_with_obs(binary: &Path, coordinator: &str, n: usize) -> io::Result<Supervisor> {
        Supervisor::spawn_opts(binary, coordinator, n, true)
    }

    fn spawn_opts(binary: &Path, coordinator: &str, n: usize, obs: bool) -> io::Result<Supervisor> {
        let mut children = Vec::with_capacity(n);
        for id in 0..n {
            let mut cmd = Command::new(binary);
            cmd.arg("--id")
                .arg(id.to_string())
                .arg("--coordinator")
                .arg(coordinator);
            if obs {
                cmd.arg("--obs-addr").arg("127.0.0.1:0");
            }
            let child = cmd
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()?;
            children.push(Some(child));
        }
        Ok(Supervisor {
            children: Mutex::new(children),
        })
    }

    /// Number of slots (spawned processes, dead or alive).
    pub fn len(&self) -> usize {
        self.children.lock().expect("supervisor poisoned").len()
    }

    /// `true` iff no processes were spawned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Kills daemon `id` (SIGKILL — the fail-stop model, no goodbyes) and
    /// reaps it. Returns `false` if it was already gone.
    pub fn kill(&self, id: usize) -> bool {
        let mut children = self.children.lock().expect("supervisor poisoned");
        match children.get_mut(id).and_then(Option::take) {
            Some(mut child) => {
                let _ = child.kill();
                let _ = child.wait();
                true
            }
            None => false,
        }
    }

    /// Waits (polling) for every remaining child to exit on its own, up to
    /// `timeout`. Returns the number of children that exited cleanly
    /// (status 0); children still running at the deadline are killed and
    /// counted as unclean.
    pub fn wait_all(&self, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        let mut clean = 0usize;
        let mut children = self.children.lock().expect("supervisor poisoned");
        for slot in children.iter_mut() {
            let Some(child) = slot.as_mut() else { continue };
            loop {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        if status.success() {
                            clean += 1;
                        }
                        *slot = None;
                        break;
                    }
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        *slot = None;
                        break;
                    }
                }
            }
        }
        clean
    }

    /// Kills everything still running.
    pub fn shutdown(&self) {
        let mut children = self.children.lock().expect("supervisor poisoned");
        for slot in children.iter_mut() {
            if let Some(mut child) = slot.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Locates a workspace binary next to the current executable (the cargo
/// target-directory layout: test binaries live in `target/<profile>/deps`,
/// examples in `target/<profile>/examples`, real binaries in
/// `target/<profile>`). Returns `None` when it has not been built.
pub fn find_bin(name: &str) -> Option<PathBuf> {
    let name = format!("{name}{}", std::env::consts::EXE_SUFFIX);
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?;
    for _ in 0..4 {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
    None
}

/// Locates the `csnoded` binary (see [`find_bin`]) — build it with
/// `cargo build -p cs_node --bin csnoded`.
pub fn find_csnoded() -> Option<PathBuf> {
    find_bin("csnoded")
}
