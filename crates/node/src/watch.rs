//! The `cswatch` watchdog's engine: poll a live cluster's observability
//! endpoints, judge the SLO, and render a terminal dashboard.
//!
//! A daemon started with `--obs-addr` serves five HTTP routes (see
//! [`cs_obs::http`]); this module consumes three of them per poll:
//! `/healthz` (liveness facts — uptime, protocol versions, build),
//! `/health` (the cumulative invariant-audit verdict, 503 once degraded),
//! and `/series` (per-step rate and quantile telemetry). Everything rides
//! plain `std::net::TcpStream` HTTP — the watchdog stays as dependency-free
//! as the endpoint it watches.
//!
//! The SLO judgment is deliberately narrow: **a breach is an invariant
//! violation** — any daemon whose `/health` verdict is degraded (or
//! carries a nonzero alert tally). An *unreachable* daemon is churn, not a
//! breach: nodes legitimately die mid-run in this protocol's fault model,
//! and the audit layer (not the watchdog) decides whether the survivors'
//! ledgers still balance. `cswatch --check` therefore exits nonzero only
//! on violations, while flagging churn in its output — which is exactly
//! what a CI smoke wants after a SIGKILL drill.

use cs_obs::{HealthReport, HealthStatus, Liveness, SeriesView};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One HTTP GET over a raw `TcpStream`: returns `(status_code, body)`.
/// The obs server answers one request per connection and closes, so the
/// response is simply read to EOF.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    // Status line: "HTTP/1.1 200 OK".
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Everything one poll learned about one daemon. `None` fields mean the
/// route was unreachable or unparsable; `error` carries the first failure.
#[derive(Debug, Default)]
pub struct NodeProbe {
    /// The obs address polled.
    pub addr: String,
    /// `/healthz` liveness facts, if reachable.
    pub liveness: Option<Liveness>,
    /// `/health` verdict, if reachable (parsed from both 200 and 503
    /// bodies — the status line and the JSON agree by construction).
    pub health: Option<HealthReport>,
    /// `/series` telemetry, if reachable.
    pub series: Option<SeriesView>,
    /// First transport/parse failure, for the churn feed.
    pub error: Option<String>,
}

impl NodeProbe {
    /// `true` when every route answered and parsed.
    pub fn reachable(&self) -> bool {
        self.error.is_none()
    }

    /// `true` when this daemon's verdict violates the SLO: a degraded
    /// status or any recorded alert. Unreachability is *not* a violation.
    pub fn breached(&self) -> bool {
        self.health
            .as_ref()
            .is_some_and(|h| h.status == HealthStatus::Degraded || h.alerts_total > 0)
    }
}

/// Polls one daemon's `/healthz`, `/health`, and `/series`.
pub fn probe(addr: &str, timeout: Duration) -> NodeProbe {
    let mut out = NodeProbe {
        addr: addr.to_string(),
        ..NodeProbe::default()
    };
    fn fetch(addr: &str, path: &str, timeout: Duration) -> Result<String, String> {
        match http_get(addr, path, timeout) {
            Ok((status, body)) if status == 200 || status == 503 => Ok(body),
            Ok((status, _)) => Err(format!("{path}: HTTP {status}")),
            Err(e) => Err(format!("{path}: {e}")),
        }
    }
    fn parse<T: serde::DeserializeOwned>(
        path: &str,
        body: Result<String, String>,
    ) -> Result<T, String> {
        let body = body?;
        serde_json::from_str(&body).map_err(|e| format!("{path} parse: {e}"))
    }
    match parse("/healthz", fetch(addr, "/healthz", timeout)) {
        Ok(l) => out.liveness = Some(l),
        Err(e) => out.error = out.error.take().or(Some(e)),
    }
    match parse("/health", fetch(addr, "/health", timeout)) {
        Ok(h) => out.health = Some(h),
        Err(e) => out.error = out.error.take().or(Some(e)),
    }
    match parse("/series", fetch(addr, "/series", timeout)) {
        Ok(s) => out.series = Some(s),
        Err(e) => out.error = out.error.take().or(Some(e)),
    }
    out
}

/// Polls every address in order.
pub fn probe_all(addrs: &[String], timeout: Duration) -> Vec<NodeProbe> {
    addrs.iter().map(|a| probe(a, timeout)).collect()
}

/// The cluster-level SLO verdict: breached iff *any* reachable daemon
/// reports an invariant violation.
pub fn slo_breached(probes: &[NodeProbe]) -> bool {
    probes.iter().any(NodeProbe::breached)
}

/// Unicode sparkline of a rate series (empty input renders empty).
fn spark(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                BARS[0]
            } else {
                BARS[((v * 7).div_ceil(max)) as usize]
            }
        })
        .collect()
}

/// A fixed-width fill bar for a share in `[0, 1]`.
fn bar(share: f64, width: usize) -> String {
    let filled = ((share * width as f64).round() as usize).min(width);
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '█' } else { '░' });
    }
    s
}

/// Renders one poll of the cluster as a plain-text dashboard: a status
/// line per node (liveness, verdict, gossip-rate sparkline), per-phase
/// time-share bars from the step-phase profile, and a feed of the most
/// recent alerts plus unreachable nodes.
pub fn render(probes: &[NodeProbe]) -> String {
    let mut out = String::new();
    let breached = slo_breached(probes);
    let reachable = probes.iter().filter(|p| p.reachable()).count();
    out.push_str(&format!(
        "cswatch — {} node(s), {} reachable — cluster {}\n",
        probes.len(),
        reachable,
        if breached { "DEGRADED" } else { "healthy" }
    ));
    for p in probes {
        let who = p
            .liveness
            .as_ref()
            .map(|l| format!("node {}", l.node))
            .unwrap_or_else(|| "node ?".into());
        if !p.reachable() {
            out.push_str(&format!(
                "  {who:<8} {:<21} UNREACHABLE ({})\n",
                p.addr,
                p.error.as_deref().unwrap_or("no answer")
            ));
            continue;
        }
        let uptime = p
            .liveness
            .as_ref()
            .map(|l| format!("up {:>4}s", l.uptime_seconds))
            .unwrap_or_default();
        let verdict = match &p.health {
            Some(h) if p.breached() => format!("ALERTS {:>3}", h.alerts_total),
            Some(_) => "ok".into(),
            None => "?".into(),
        };
        let gossip = p
            .series
            .as_ref()
            .and_then(|s| {
                s.counters
                    .iter()
                    .find(|c| c.name == "net.gossip.sent.messages")
            })
            .map(|c| {
                let tail_start = c.rates.len().saturating_sub(16);
                format!("gossip {} {}", spark(&c.rates[tail_start..]), c.total)
            })
            .unwrap_or_default();
        out.push_str(&format!(
            "  {who:<8} {:<21} {uptime:<8} {verdict:<10} {gossip}\n",
            p.addr
        ));
        // Phase time-share bars over the series window, from the
        // `phase.<name>.ns` counters every substrate folds per step.
        if let Some(series) = &p.series {
            let phases: Vec<(&str, u64)> = series
                .counters
                .iter()
                .filter(|c| c.name.starts_with("phase.") && c.name.ends_with(".ns"))
                .map(|c| {
                    let name = &c.name["phase.".len()..c.name.len() - ".ns".len()];
                    (name, c.rates.iter().sum::<u64>())
                })
                .collect();
            let total: u64 = phases.iter().map(|(_, ns)| ns).sum();
            if total > 0 {
                for (name, ns) in phases {
                    let share = ns as f64 / total as f64;
                    out.push_str(&format!(
                        "           {name:<12} {} {:>5.1}%\n",
                        bar(share, 20),
                        share * 100.0
                    ));
                }
            }
        }
    }
    // Alert feed: newest alerts across the cluster, one line each.
    let mut alert_lines = Vec::new();
    for p in probes {
        if let Some(h) = &p.health {
            for a in &h.recent {
                let node = a.node.map_or("-".to_string(), |n| n.to_string());
                alert_lines.push(format!(
                    "  [{}] step {} node {} — {} (measured {:.4}, limit {:.4})",
                    a.kind.as_str(),
                    a.step,
                    node,
                    a.detail,
                    a.measured,
                    a.limit
                ));
            }
        }
    }
    if !alert_lines.is_empty() {
        out.push_str("alerts:\n");
        for l in alert_lines.iter().rev().take(16) {
            out.push_str(l);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_obs::http::{ObsProviders, ObsServer};
    use cs_obs::{
        Alert, HealthState, MetricsSnapshot, NodeTrace, Registry, SeriesRing, Tracer, VirtualClock,
    };
    use std::sync::{Arc, Mutex};

    fn test_server(degraded: bool) -> ObsServer {
        let registry = Arc::new(Registry::new());
        registry.counter("net.gossip.sent.messages").add(10);
        registry.counter("phase.gossip.ns").add(900);
        registry.counter("phase.decrypt.ns").add(100);
        let ring = Arc::new(Mutex::new(SeriesRing::new(8)));
        ring.lock().unwrap().record(0, MetricsSnapshot::default());
        ring.lock().unwrap().record(1, registry.snapshot());
        let state = Arc::new(HealthState::new());
        if degraded {
            state.raise(Alert {
                kind: cs_obs::AlertKind::MassConservation,
                node: Some(2),
                step: 1,
                measured: 9.0,
                limit: 0.5,
                detail: "drill".into(),
            });
        }
        let reg = registry.clone();
        let tracer = Arc::new(Tracer::ring(Arc::new(VirtualClock::new()), 8));
        let (st, ri) = (state.clone(), ring.clone());
        ObsServer::serve(
            "127.0.0.1:0",
            ObsProviders {
                metrics: Box::new(move || reg.snapshot()),
                trace: Box::new(move || NodeTrace::capture(2, &tracer)),
                series: Some(Box::new(move || ri.lock().unwrap().view())),
                health: Some(Box::new(move || st.report())),
                healthz: Some(Box::new(|| Liveness {
                    node: 2,
                    uptime_seconds: 7,
                    proto_version: crate::proto::PROTO_VERSION as u32,
                    wire_version: cs_net::wire::WIRE_VERSION as u32,
                    build: "test".into(),
                })),
            },
        )
        .unwrap()
    }

    #[test]
    fn probe_parses_all_three_routes_and_judges_the_slo() {
        let server = test_server(false);
        let addr = server.addr().to_string();
        let p = probe(&addr, Duration::from_secs(2));
        assert!(p.reachable(), "{:?}", p.error);
        assert!(!p.breached());
        assert_eq!(p.liveness.as_ref().unwrap().node, 2);
        assert_eq!(p.health.as_ref().unwrap().alerts_total, 0);
        let series = p.series.as_ref().unwrap();
        let gossip = series
            .counters
            .iter()
            .find(|c| c.name == "net.gossip.sent.messages")
            .unwrap();
        assert_eq!((gossip.total, gossip.rates.as_slice()), (10, &[10u64][..]));
        assert!(!slo_breached(std::slice::from_ref(&p)));
        let dash = render(std::slice::from_ref(&p));
        assert!(dash.contains("cluster healthy"), "{dash}");
        assert!(dash.contains("gossip"), "{dash}");
    }

    #[test]
    fn a_degraded_daemon_breaches_and_an_unreachable_one_does_not() {
        let server = test_server(true);
        let addr = server.addr().to_string();
        let degraded = probe(&addr, Duration::from_secs(2));
        assert!(degraded.breached());
        drop(server); // port now closed → unreachable, not a breach
        let gone = probe(&addr, Duration::from_millis(300));
        assert!(!gone.reachable());
        assert!(!gone.breached());
        assert!(slo_breached(&[degraded, gone]));
        let lone = probe(&addr, Duration::from_millis(300));
        assert!(!slo_breached(std::slice::from_ref(&lone)));
        let dash = render(std::slice::from_ref(&lone));
        assert!(dash.contains("UNREACHABLE"), "{dash}");
    }

    #[test]
    fn dashboard_surfaces_alert_feed_and_phase_bars() {
        let server = test_server(true);
        let addr = server.addr().to_string();
        let p = probe(&addr, Duration::from_secs(2));
        let dash = render(std::slice::from_ref(&p));
        assert!(dash.contains("cluster DEGRADED"), "{dash}");
        assert!(dash.contains("[mass_conservation]"), "{dash}");
        assert!(dash.contains("drill"), "{dash}");
        assert!(dash.contains("gossip"), "{dash}");
        assert!(dash.contains('%'), "phase bars render: {dash}");
    }

    #[test]
    fn sparkline_and_bar_handle_edges() {
        assert_eq!(spark(&[]), "");
        assert_eq!(spark(&[0, 0]), "▁▁");
        let s = spark(&[1, 4, 8]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert_eq!(bar(0.0, 4), "░░░░");
        assert_eq!(bar(1.0, 4), "████");
        assert_eq!(bar(2.0, 4), "████", "overfull share clamps");
    }
}
