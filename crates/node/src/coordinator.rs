//! The cluster coordinator: bootstrap, per-step orchestration, and the
//! [`ClusterBackend`] that plugs a multi-process cluster into
//! `chiaroscuro::Engine::run_with_backend`.
//!
//! The coordinator models the paper's *initialization* role, not a trusted
//! aggregator: it deals key shares (the dealer of `cs_crypto::threshold`),
//! distributes the population manifest, and paces steps — but the gossip
//! aggregation, noise folding, and collaborative decryption run entirely
//! between the daemons, and all the coordinator ever learns back are the
//! *DP-perturbed* aggregate estimates the protocol discloses anyway.
//!
//! Orchestration per step mirrors the threaded runtime's driver: hand every
//! live daemon its `Step`, wait until each announces `Done` (or its process
//! dies — a connection EOF is the fail-stop signal), broadcast `StepEnd`,
//! collect `Report`s, and fold them with `cs_net::runtime::assemble_outcome`
//! so the engine sees exactly the same outcome shape as on every other
//! substrate.

use crate::proto::{read_msg, write_msg, ControlMsg, LinkSpec, TimingSpec, PROTO_VERSION};
use crate::supervisor::Supervisor;
use chiaroscuro::backend::ComputationBackend;
use chiaroscuro::config::ChiaroscuroConfig;
use chiaroscuro::noise::SlotLayout;
use chiaroscuro::rounds::{ComputationOutcome, CryptoContext};
use chiaroscuro::ChiaroscuroError;
use cs_net::node::NodeReport;
use cs_net::runtime::assemble_outcome;
use cs_net::transport::TrafficSnapshot;
use cs_net::wire::WIRE_VERSION;
use cs_obs::{
    CausalTracer, Clock, ClusterTrace, MetricsSnapshot, NodeTrace, TraceContext, Tracer, WallClock,
};
use rand::rngs::StdRng;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Cluster-level knobs (the per-node timing travels to the daemons in the
/// `Bootstrap`).
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Data-plane link shims (keep [`LinkSpec::ideal`] for a real cluster —
    /// localhost TCP is the genuine article).
    pub link: LinkSpec,
    /// Per-node event-loop timing.
    pub timing: TimingSpec,
    /// Seed for the data-plane loss/jitter draws.
    pub transport_seed: u64,
    /// How long the coordinator waits for straggler `Report`s after
    /// `StepEnd`.
    pub report_timeout: Duration,
    /// Scripted fault injection shipped to the daemons in the `Bootstrap`
    /// (`None` on honest runs): the named daemon corrupts its partial
    /// decryptions, and the invariant audit must catch it.
    pub fault: Option<cs_net::FaultSpec>,
    /// Tolerances for the coordinator-side cluster-level invariant audit.
    pub audit: cs_obs::AuditConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            link: LinkSpec::ideal(),
            timing: TimingSpec::default(),
            transport_seed: 0x7C50_C4E7,
            report_timeout: Duration::from_secs(20),
            fault: None,
            audit: cs_obs::AuditConfig::default(),
        }
    }
}

fn transport_err(msg: impl Into<String>) -> ChiaroscuroError {
    ChiaroscuroError::Transport(msg.into())
}

/// The `kind` recorded for control-plane `Step` sends in the coordinator's
/// trace; data-plane kinds are wire tags (0–7), so control traffic gets a
/// value far outside that range.
const CONTROL_STEP_KIND: u64 = 100;

/// A bound control-plane listener, waiting for daemons.
pub struct Coordinator {
    listener: TcpListener,
}

// Events are one-per-step-per-daemon — the Bootstrap-sized variant's
// footprint is irrelevant at that rate.
#[allow(clippy::large_enum_variant)]
enum Event {
    Msg(ControlMsg),
    Gone,
}

struct Member {
    /// Write half of the control connection; `None` once the daemon died.
    writer: Option<TcpStream>,
    data_addr: String,
    /// The daemon's observability HTTP address, if it serves one — handed
    /// to scrape tooling like `cswatch` via [`Cluster::obs_addrs`].
    obs_addr: Option<String>,
}

impl Coordinator {
    /// Binds the control listener on an ephemeral localhost port.
    pub fn bind() -> io::Result<Coordinator> {
        Ok(Coordinator {
            listener: TcpListener::bind("127.0.0.1:0")?,
        })
    }

    /// The control address to hand to `csnoded --coordinator`.
    pub fn addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts exactly `n` daemons (validating their `Hello`s) within
    /// `timeout`, and returns the assembled cluster. Every daemon must
    /// speak the same wire and control-protocol versions and claim a
    /// distinct id in `0..n`.
    pub fn accept_cluster(self, n: usize, timeout: Duration) -> io::Result<Cluster> {
        let deadline = Instant::now() + timeout;
        self.listener.set_nonblocking(true)?;
        let (tx, events) = mpsc::channel::<(usize, Event)>();
        let mut members: Vec<Option<Member>> = (0..n).map(|_| None).collect();
        let mut joined = 0usize;
        while joined < n {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nodelay(true)?;
                    // The Hello must arrive promptly; afterwards the reader
                    // thread owns the (blocking) stream.
                    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
                    let hello = read_msg(&mut stream)?;
                    let ControlMsg::Hello {
                        node,
                        wire_version,
                        proto_version,
                        data_addr,
                        obs_addr,
                    } = hello
                    else {
                        return Err(bad_data("expected Hello"));
                    };
                    if wire_version != WIRE_VERSION || proto_version != PROTO_VERSION {
                        return Err(bad_data(format!(
                            "version mismatch from node {node}: wire {wire_version} \
                             (want {WIRE_VERSION}), proto {proto_version} (want {PROTO_VERSION})"
                        )));
                    }
                    if node >= n || members[node].is_some() {
                        return Err(bad_data(format!(
                            "duplicate or out-of-range node id {node}"
                        )));
                    }
                    stream.set_read_timeout(None)?;
                    let writer = stream.try_clone()?;
                    let reader_tx = tx.clone();
                    let mut reader = stream;
                    thread::Builder::new()
                        .name(format!("coord-reader-{node}"))
                        .spawn(move || loop {
                            match read_msg(&mut reader) {
                                Ok(msg) => {
                                    if reader_tx.send((node, Event::Msg(msg))).is_err() {
                                        return;
                                    }
                                }
                                Err(_) => {
                                    let _ = reader_tx.send((node, Event::Gone));
                                    return;
                                }
                            }
                        })
                        .expect("spawn coordinator reader");
                    members[node] = Some(Member {
                        writer: Some(writer),
                        data_addr,
                        obs_addr,
                    });
                    joined += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("only {joined}/{n} daemons connected in time"),
                        ));
                    }
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(Cluster {
            members: members.into_iter().map(Option::unwrap).collect(),
            events,
            alive: vec![true; n],
        })
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// An accepted, not-yet-bootstrapped cluster of daemon control channels.
pub struct Cluster {
    members: Vec<Member>,
    events: Receiver<(usize, Event)>,
    alive: Vec<bool>,
}

impl Cluster {
    /// Population size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` iff the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Per-daemon connection liveness.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Per-daemon observability HTTP addresses, in node-id order (`None`
    /// where a daemon runs without `--obs-addr`). The address list a
    /// `cswatch` invocation wants.
    pub fn obs_addrs(&self) -> Vec<Option<String>> {
        self.members.iter().map(|m| m.obs_addr.clone()).collect()
    }

    fn mark_dead(&mut self, node: usize) {
        self.alive[node] = false;
        self.members[node].writer = None;
    }

    fn send(&mut self, node: usize, msg: &ControlMsg) {
        if let Some(w) = self.members[node].writer.as_mut() {
            if write_msg(w, msg).is_err() {
                self.mark_dead(node);
            }
        }
    }
}

/// A [`ComputationBackend`] that executes every computation step across the
/// daemons of a [`Cluster`] — real processes, real sockets, real crypto.
///
/// Bootstrap is lazy: the engine builds its `CryptoContext` (the dealer)
/// inside `run_with_backend`, so the backend ships key material on the
/// first `run_step` call, when it first sees it.
pub struct ClusterBackend {
    cluster: Cluster,
    cfg: ClusterConfig,
    bootstrapped: bool,
    steps_run: usize,
    kills: Vec<(usize, Duration, usize)>,
    supervisor: Option<Arc<Supervisor>>,
    last_reports: Option<Vec<NodeReport>>,
    last_snapshot: Option<TrafficSnapshot>,
    last_metrics: Option<MetricsSnapshot>,
    metrics_total: MetricsSnapshot,
    /// The coordinator's own flight recorder: every `Step` send is traced
    /// here, so each daemon's `step.start` span has a causal parent in the
    /// merged cluster timeline.
    tracer: Arc<Tracer>,
    /// Coordinator-side metrics: `obs.alert.<kind>` counters minted by the
    /// cluster-level invariant audit land here.
    registry: cs_obs::Registry,
    /// Cumulative verdict of the cluster-level audit (global mass and
    /// frame conservation over the summed per-daemon deltas).
    health: cs_obs::HealthState,
}

impl ClusterBackend {
    /// Wraps an accepted cluster.
    pub fn new(cluster: Cluster, cfg: ClusterConfig) -> Self {
        ClusterBackend {
            cluster,
            cfg,
            bootstrapped: false,
            steps_run: 0,
            kills: Vec::new(),
            supervisor: None,
            last_reports: None,
            last_snapshot: None,
            last_metrics: None,
            metrics_total: MetricsSnapshot::default(),
            tracer: Arc::new(Tracer::ring(
                Arc::new(WallClock::new()) as Arc<dyn Clock>,
                4096,
            )),
            registry: cs_obs::Registry::new(),
            health: cs_obs::HealthState::new(),
        }
    }

    /// Scripts process kills: `(step, offset, node)` — `offset` after the
    /// step's `Step` broadcast, `node` is SIGKILLed through `supervisor`.
    /// The multi-process analogue of [`cs_net::ChurnSchedule`]'s crashes.
    pub fn with_kills(
        mut self,
        supervisor: Arc<Supervisor>,
        kills: Vec<(usize, Duration, usize)>,
    ) -> Self {
        self.supervisor = Some(supervisor);
        self.kills = kills;
        self
    }

    /// Computation steps executed so far.
    pub fn steps_run(&self) -> usize {
        self.steps_run
    }

    /// Per-node reports of the most recent step.
    pub fn last_reports(&self) -> Option<&[NodeReport]> {
        self.last_reports.as_deref()
    }

    /// Cluster-summed per-class traffic of the most recent step.
    pub fn last_snapshot(&self) -> Option<&TrafficSnapshot> {
        self.last_snapshot.as_ref()
    }

    /// Cluster-summed metrics delta of the most recent step.
    pub fn last_metrics(&self) -> Option<&MetricsSnapshot> {
        self.last_metrics.as_ref()
    }

    /// Cluster-summed metrics accumulated over every step run so far —
    /// the coordinator-side mirror of what a live scrape should report.
    pub fn metrics_total(&self) -> &MetricsSnapshot {
        &self.metrics_total
    }

    /// Live scrape: sends [`ControlMsg::Metrics`] to every daemon and
    /// collects the cumulative per-daemon snapshots. Only valid *between*
    /// steps — a scrape racing a step would interleave with the step's
    /// control traffic. Slots that died or missed the deadline stay `None`.
    pub fn scrape_metrics(&mut self, timeout: Duration) -> Vec<Option<MetricsSnapshot>> {
        let n = self.cluster.len();
        for i in 0..n {
            self.cluster.send(i, &ControlMsg::Metrics);
        }
        let mut out: Vec<Option<MetricsSnapshot>> = vec![None; n];
        let deadline = Instant::now() + timeout;
        loop {
            let outstanding = (0..n).any(|i| self.cluster.alive[i] && out[i].is_none());
            if !outstanding {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.cluster.events.recv_timeout(deadline - now) {
                Ok((i, Event::Msg(ControlMsg::MetricsReport { metrics, .. }))) => {
                    out[i] = Some(metrics);
                }
                Ok((i, Event::Gone)) => self.cluster.mark_dead(i),
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        out
    }

    /// Live flight-recorder scrape: sends [`ControlMsg::Trace`] to every
    /// daemon and collects the per-daemon captures. Same discipline as
    /// [`ClusterBackend::scrape_metrics`] — only valid *between* steps;
    /// slots that died or missed the deadline stay `None`.
    pub fn scrape_traces(&mut self, timeout: Duration) -> Vec<Option<NodeTrace>> {
        let n = self.cluster.len();
        for i in 0..n {
            self.cluster.send(i, &ControlMsg::Trace);
        }
        let mut out: Vec<Option<NodeTrace>> = vec![None; n];
        let deadline = Instant::now() + timeout;
        loop {
            let outstanding = (0..n).any(|i| self.cluster.alive[i] && out[i].is_none());
            if !outstanding {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.cluster.events.recv_timeout(deadline - now) {
                Ok((i, Event::Msg(ControlMsg::TraceReport { trace, .. }))) => {
                    out[i] = Some(trace);
                }
                Ok((i, Event::Gone)) => self.cluster.mark_dead(i),
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        out
    }

    /// Scrapes every daemon's flight recorder and merges the captures —
    /// plus the coordinator's own ring, as node id `n` — into one cluster
    /// timeline in node-id order: the shape `cstrace` loads. Daemons that
    /// died (a SIGKILLed peer cannot answer a scrape; its last moments
    /// survive only in its stderr dump and in its neighbors' rings) are
    /// simply absent. Per-node timestamps come from unsynchronized wall
    /// clocks, so cross-node analysis must use intra-node deltas — which
    /// is exactly what the critical-path analyzer does.
    pub fn cluster_trace(&mut self, timeout: Duration) -> ClusterTrace {
        let per_node = self.scrape_traces(timeout);
        let mut traces: Vec<NodeTrace> = per_node.into_iter().flatten().collect();
        traces.push(NodeTrace::capture(self.cluster.len() as u64, &self.tracer));
        traces.sort_by_key(|t| t.node);
        ClusterTrace { traces }
    }

    /// Live health scrape: sends [`ControlMsg::Health`] to every daemon
    /// and collects `(verdict, uptime_seconds)` pairs. Same discipline as
    /// [`ClusterBackend::scrape_metrics`] — only valid *between* steps;
    /// slots that died or missed the deadline stay `None`.
    pub fn scrape_health(&mut self, timeout: Duration) -> Vec<Option<(cs_obs::HealthReport, u64)>> {
        let n = self.cluster.len();
        for i in 0..n {
            self.cluster.send(i, &ControlMsg::Health);
        }
        let mut out: Vec<Option<(cs_obs::HealthReport, u64)>> = vec![None; n];
        let deadline = Instant::now() + timeout;
        loop {
            let outstanding = (0..n).any(|i| self.cluster.alive[i] && out[i].is_none());
            if !outstanding {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.cluster.events.recv_timeout(deadline - now) {
                Ok((
                    i,
                    Event::Msg(ControlMsg::HealthReport {
                        report,
                        uptime_seconds,
                        ..
                    }),
                )) => {
                    out[i] = Some((report, uptime_seconds));
                }
                Ok((i, Event::Gone)) => self.cluster.mark_dead(i),
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        out
    }

    /// Scrapes every daemon's health verdict and folds them — together
    /// with the coordinator's own cluster-level audit state — into one
    /// cluster verdict: the worst status wins and per-kind tallies sum.
    /// Daemons that died or missed the deadline simply contribute nothing;
    /// their absence shows up in [`ClusterBackend::alive`], not here.
    pub fn cluster_health(&mut self, timeout: Duration) -> cs_obs::HealthReport {
        let per_node = self.scrape_health(timeout);
        let mut folded = self.health.report();
        for (report, _) in per_node.into_iter().flatten() {
            folded = folded.plus(&report);
        }
        folded
    }

    /// The coordinator's own cluster-level audit verdict (no scrape).
    pub fn health_report(&self) -> cs_obs::HealthReport {
        self.health.report()
    }

    /// Per-daemon observability HTTP addresses, in node-id order.
    pub fn obs_addrs(&self) -> Vec<Option<String>> {
        self.cluster.obs_addrs()
    }

    /// Per-daemon connection liveness.
    pub fn alive(&self) -> &[bool] {
        self.cluster.alive()
    }

    /// Sends `Shutdown` to every living daemon (they exit cleanly).
    pub fn shutdown(&mut self) {
        for i in 0..self.cluster.len() {
            self.cluster.send(i, &ControlMsg::Shutdown);
        }
    }

    fn bootstrap(
        &mut self,
        config: &ChiaroscuroConfig,
        layout: &SlotLayout,
        population: usize,
        crypto: &CryptoContext,
    ) -> Result<(), ChiaroscuroError> {
        let n = self.cluster.len();
        if population != n {
            return Err(transport_err(format!(
                "engine population {population} != cluster size {n}"
            )));
        }
        let manifest: Vec<String> = self
            .cluster
            .members
            .iter()
            .map(|m| m.data_addr.clone())
            .collect();
        // Committee assignment mirrors `cs_net::runtime::StepCrypto`: the
        // first `parties` nodes, in share order.
        let (committee, pk) = match crypto {
            CryptoContext::Real { tkp, pk, .. } => (
                (0..tkp.params().parties.min(n)).collect::<Vec<_>>(),
                Some(pk.as_ref().clone()),
            ),
            CryptoContext::Simulated { .. } => (Vec::new(), None),
        };
        for i in 0..n {
            let share = match crypto {
                CryptoContext::Real { tkp, .. } if committee.contains(&i) => {
                    Some(tkp.shares()[i].clone())
                }
                _ => None,
            };
            let msg = ControlMsg::Bootstrap {
                config: config.clone(),
                layout: *layout,
                population: manifest.clone(),
                committee: committee.clone(),
                pk: pk.clone(),
                share,
                link: self.cfg.link,
                timing: self.cfg.timing,
                transport_seed: self.cfg.transport_seed,
                fault: self.cfg.fault,
            };
            self.cluster.send(i, &msg);
        }
        self.bootstrapped = true;
        Ok(())
    }
}

impl ComputationBackend for ClusterBackend {
    fn label(&self) -> &'static str {
        "tcp-cluster"
    }

    fn run_step(
        &mut self,
        config: &ChiaroscuroConfig,
        layout: &SlotLayout,
        contributions: &[Option<Vec<f64>>],
        crypto: &CryptoContext,
        step_seed: u64,
        _rng: &mut StdRng,
    ) -> Result<ComputationOutcome, ChiaroscuroError> {
        let n = contributions.len();
        if !self.bootstrapped {
            self.bootstrap(config, layout, n, crypto)?;
        }
        let step = self.steps_run;

        // One causal root per step: the coordinator's `step.start` (actor
        // `n`, trace id = step seed), with every daemon's `Step` send as a
        // child span — each daemon parents its own `step.start` onto the
        // ctx stamped here, rooting the whole cluster timeline.
        let mut causal =
            CausalTracer::new(self.tracer.clone(), step_seed, n as u64, TraceContext::NONE);
        for (i, contribution) in contributions.iter().enumerate() {
            let ctx = causal.on_send(i as u64, CONTROL_STEP_KIND);
            self.cluster.send(
                i,
                &ControlMsg::Step {
                    step,
                    step_seed,
                    contribution: contribution.clone(),
                    ctx,
                },
            );
        }

        let step_deadline = Instant::now()
            + Duration::from_millis(self.cfg.timing.step_timeout_ms)
            + Duration::from_secs(5);
        let mut ready = vec![false; n];
        let mut done = vec![false; n];
        let mut reports: Vec<Option<NodeReport>> = (0..n).map(|_| None).collect();
        let mut snapshots: Vec<TrafficSnapshot> = vec![TrafficSnapshot::default(); n];
        let mut metric_deltas: Vec<MetricsSnapshot> = vec![MetricsSnapshot::default(); n];

        // Phase 0 — the start barrier: every living daemon constructs its
        // node (contribution encryption included) and acknowledges Ready
        // before anyone gossips, mirroring the threaded runtime's start
        // gate. Dark slots Ready-then-Done immediately, so their Done must
        // be buffered here too.
        loop {
            let outstanding = (0..n).any(|i| self.cluster.alive[i] && !ready[i]);
            if !outstanding {
                break;
            }
            let now = Instant::now();
            if now >= step_deadline {
                break; // release whoever is ready rather than deadlock
            }
            match self.cluster.events.recv_timeout(step_deadline - now) {
                Ok((i, Event::Msg(ControlMsg::Ready { step: s, .. }))) if s == step => {
                    ready[i] = true;
                }
                Ok((i, Event::Msg(ControlMsg::Done { step: s, .. }))) if s == step => {
                    done[i] = true;
                }
                Ok((i, Event::Gone)) => self.cluster.mark_dead(i),
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(transport_err("all control channels died"));
                }
            }
        }
        for i in 0..n {
            self.cluster.send(i, &ControlMsg::Go { step });
        }

        // Scripted process kills, offset from the Go broadcast — i.e. from
        // the start of the *gossip* phase, the same anchor every other
        // substrate's churn clock uses. The fence scopes them to this
        // step: churn events belong to their step on every substrate, so
        // a timer still pending when run_step returns (step finished
        // early, or errored) is cancelled rather than firing into a later
        // step or after the run.
        struct KillFence(Arc<std::sync::atomic::AtomicBool>);
        impl Drop for KillFence {
            fn drop(&mut self) {
                self.0.store(true, std::sync::atomic::Ordering::Release);
            }
        }
        let fence = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let _fence_guard = KillFence(fence.clone());
        for &(kill_step, after, node) in &self.kills {
            if kill_step != step {
                continue;
            }
            let Some(sup) = self.supervisor.clone() else {
                return Err(transport_err("kill schedule without a supervisor"));
            };
            let fence = fence.clone();
            thread::Builder::new()
                .name(format!("cluster-kill-{node}"))
                .spawn(move || {
                    thread::sleep(after);
                    if !fence.load(std::sync::atomic::Ordering::Acquire) {
                        sup.kill(node);
                    }
                })
                .map_err(|e| transport_err(format!("spawn kill timer: {e}")))?;
        }

        // Phase 1: every living daemon announces Done (its own part of the
        // step finished; committee service continues until StepEnd). A
        // dead connection excuses its daemon — that is the fail-stop.
        loop {
            let outstanding = (0..n).any(|i| self.cluster.alive[i] && !done[i]);
            if !outstanding {
                break;
            }
            let now = Instant::now();
            if now >= step_deadline {
                break;
            }
            match self.cluster.events.recv_timeout(step_deadline - now) {
                // Step-tagged so a straggler announcement or report from a
                // previous step can never satisfy (or poison) this one.
                Ok((i, Event::Msg(ControlMsg::Done { step: s, .. }))) if s == step => {
                    done[i] = true;
                }
                Ok((
                    i,
                    Event::Msg(ControlMsg::Report {
                        step: s,
                        report,
                        snapshot,
                        metrics,
                    }),
                )) if s == step => {
                    snapshots[i] = snapshot;
                    metric_deltas[i] = metrics;
                    reports[i] = Some(report);
                }
                Ok((i, Event::Gone)) => self.cluster.mark_dead(i),
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(transport_err("all control channels died"));
                }
            }
        }

        // Phase 2: stop the population and collect reports.
        for i in 0..n {
            self.cluster.send(i, &ControlMsg::StepEnd);
        }
        let report_deadline = Instant::now() + self.cfg.report_timeout;
        loop {
            let outstanding = (0..n).any(|i| self.cluster.alive[i] && reports[i].is_none());
            if !outstanding {
                break;
            }
            let now = Instant::now();
            if now >= report_deadline {
                break;
            }
            match self.cluster.events.recv_timeout(report_deadline - now) {
                Ok((
                    i,
                    Event::Msg(ControlMsg::Report {
                        step: s,
                        report,
                        snapshot,
                        metrics,
                    }),
                )) if s == step => {
                    snapshots[i] = snapshot;
                    metric_deltas[i] = metrics;
                    reports[i] = Some(report);
                }
                Ok((i, Event::Gone)) => self.cluster.mark_dead(i),
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(transport_err("all control channels died"));
                }
            }
        }

        // Fold. A daemon that never reported (killed, or hopelessly late)
        // contributes a dead report; cluster traffic is the sum of the
        // per-daemon deltas — accounting is send-side, so nothing is
        // double-counted.
        let all_reported = reports.iter().all(Option::is_some);
        let reports: Vec<NodeReport> = reports
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| NodeReport::dead(i)))
            .collect();
        let alive_after: Vec<bool> = (0..n)
            .map(|i| self.cluster.alive[i] && contributions[i].is_some())
            .collect();
        let total = snapshots
            .iter()
            .fold(TrafficSnapshot::default(), |acc, s| acc.plus(s));
        let metrics_step = metric_deltas
            .iter()
            .fold(MetricsSnapshot::default(), |acc, m| acc.plus(m));
        // Cluster-level invariant audit over the summed deltas: the global
        // mass and frame-conservation ledger the per-daemon audits cannot
        // see (each daemon only knows its own sends). Skipped whenever a
        // daemon died or withheld its report — churn legitimately breaks
        // frame conservation and is not an invariant violation.
        if all_reported && alive_after.iter().all(|&a| a) {
            let evidence =
                cs_net::StepEvidence::distill(step as u64, &reports, &total, &metrics_step);
            let _ = cs_net::audit_step(
                &self.cfg.audit,
                &evidence,
                &self.registry,
                Some(&self.tracer),
                Some(&self.health),
            );
        }
        let outcome = assemble_outcome(&reports, alive_after, &total);
        self.steps_run += 1;
        self.last_reports = Some(reports);
        self.last_snapshot = Some(total);
        self.metrics_total = self.metrics_total.plus(&metrics_step);
        self.last_metrics = Some(metrics_step);
        Ok(outcome)
    }
}

impl Drop for ClusterBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}
