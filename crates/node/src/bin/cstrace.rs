//! `cstrace` — critical-path analysis over merged flight-recorder traces.
//!
//! ```sh
//! cstrace cluster-trace.json            # ASCII timeline, 8 slowest nodes
//! cstrace --top 3 cluster-trace.json    # fewer bars per round
//! cstrace --json cluster-trace.json     # machine-readable round report
//! curl -s daemon:9109/trace | cstrace - # straight off a live daemon
//! ```
//!
//! The input is the JSON a coordinator's `cluster_trace` merge (or a
//! daemon's `/trace` endpoint / stderr crash dump) produces: a
//! `ClusterTrace`, a bare list of `NodeTrace`s, or a single `NodeTrace` —
//! all three shapes are accepted. For every round (matched across nodes by
//! trace id, i.e. step seed) the analyzer names the straggler node, its
//! dominant phase (gossip, decrypt, or died), and every other node's
//! slack. See `docs/observability.md`.

use cs_obs::critical::{analyze, render_ascii};
use cs_obs::{ClusterTrace, NodeTrace};
use std::io::{Read, Write};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: cstrace [--json] [--top <N>] <TRACE.json | ->\n\
         \n\
         --json   emit the per-round analysis as JSON instead of ASCII\n\
         --top    bars per round in the ASCII timeline (default 8)\n\
         -        read the trace from stdin"
    );
    std::process::exit(2);
}

/// Accepts any of the shapes the tooling emits: a merged `ClusterTrace`,
/// a bare array of per-node traces, or one node's capture.
fn parse_trace(text: &str) -> Result<ClusterTrace, String> {
    if let Ok(cluster) = serde_json::from_str::<ClusterTrace>(text) {
        return Ok(cluster);
    }
    if let Ok(traces) = serde_json::from_str::<Vec<NodeTrace>>(text) {
        return Ok(ClusterTrace { traces });
    }
    match serde_json::from_str::<NodeTrace>(text) {
        Ok(single) => Ok(ClusterTrace {
            traces: vec![single],
        }),
        Err(e) => Err(format!(
            "not a ClusterTrace, [NodeTrace], or NodeTrace: {e}"
        )),
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut top = 8usize;
    let mut input: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("cstrace: unknown argument {other:?}");
                usage();
            }
            path => {
                if input.replace(path.to_string()).is_some() {
                    usage(); // exactly one input
                }
            }
        }
    }
    let Some(input) = input else { usage() };

    let text = if input == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("cstrace: reading stdin: {e}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cstrace: reading {input:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let cluster = match parse_trace(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cstrace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rounds = analyze(&cluster);
    if rounds.is_empty() {
        eprintln!(
            "cstrace: no rounds found ({} node traces, no step.start events)",
            cluster.traces.len()
        );
        return ExitCode::FAILURE;
    }
    let report = if json {
        match serde_json::to_string_pretty(&rounds) {
            Ok(mut s) => {
                s.push('\n');
                s
            }
            Err(e) => {
                eprintln!("cstrace: serializing report: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        render_ascii(&rounds, top)
    };
    emit(&report)
}

/// Writes the report, treating a broken pipe (`cstrace … | head`) as a
/// clean exit instead of a panic.
fn emit(text: &str) -> ExitCode {
    let mut out = std::io::stdout().lock();
    match out.write_all(text.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cstrace: writing output: {e}");
            ExitCode::FAILURE
        }
    }
}
