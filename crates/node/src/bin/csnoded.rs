//! `csnoded` — one Chiaroscuro participant as an OS process.
//!
//! ```sh
//! csnoded --id 3 --coordinator 127.0.0.1:9000 [--bind 127.0.0.1:0]
//! ```
//!
//! The daemon binds its data-plane listener, registers with the
//! coordinator, receives the population manifest plus (in real-crypto
//! mode) its key share, and then runs one protocol node per computation
//! step until the coordinator says `Shutdown`. See `docs/deployment.md`.

use cs_node::daemon::{self, DaemonOpts};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: csnoded --id <N> --coordinator <HOST:PORT> [--bind <ADDR>] [--advertise <HOST[:PORT]>]\n\
         \u{20}               [--obs-addr <ADDR>]\n\
         \n\
         --id           this participant's node id (index in the manifest)\n\
         --coordinator  the coordinator's control address\n\
         --bind         data-plane bind address (default 127.0.0.1:0)\n\
         --advertise    address peers connect to, when it differs from the\n\
                        bind address (required for wildcard binds like\n\
                        0.0.0.0; a bare HOST inherits the bound port)\n\
         --obs-addr     serve /metrics (Prometheus text), /trace (flight\n\
                        recorder JSON), /series (time-series telemetry),\n\
                        /health (invariant verdict, 503 when degraded), and\n\
                        /healthz (liveness) over HTTP on this address; the\n\
                        bound address is printed to stderr (useful with :0)\n\
                        and travels to the coordinator in the Hello"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut id: Option<usize> = None;
    let mut coordinator: Option<String> = None;
    let mut bind = "127.0.0.1:0".to_string();
    let mut advertise: Option<String> = None;
    let mut obs_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--id" => id = args.next().and_then(|v| v.parse().ok()),
            "--coordinator" => coordinator = args.next(),
            "--bind" => {
                if let Some(v) = args.next() {
                    bind = v;
                }
            }
            "--advertise" => advertise = args.next(),
            "--obs-addr" => obs_addr = args.next(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("csnoded: unknown argument {other:?}");
                usage();
            }
        }
    }
    let (Some(id), Some(coordinator)) = (id, coordinator) else {
        usage();
    };
    let opts = DaemonOpts {
        id,
        coordinator,
        bind,
        advertise,
        obs_addr,
    };
    match daemon::run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("csnoded[{id}]: {e}");
            ExitCode::FAILURE
        }
    }
}
