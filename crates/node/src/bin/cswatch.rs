//! `cswatch` — the cluster SLO watchdog.
//!
//! ```sh
//! cswatch [--once] [--check] [--interval-ms N] <OBS_ADDR>...
//! ```
//!
//! Polls the observability endpoints (`/healthz`, `/health`, `/series`)
//! of every listed daemon and renders a terminal dashboard: per-node
//! liveness and verdict, gossip-rate sparklines, step-phase time-share
//! bars, and a feed of the most recent invariant alerts.
//!
//! With `--check` the exit code becomes the verdict: nonzero iff any
//! reachable daemon reports an invariant violation. An unreachable daemon
//! is flagged as churn but never fails the check — in this protocol's
//! fault model nodes legitimately die mid-run, and whether the survivors'
//! ledgers still balance is the audit layer's call, not the watchdog's.
//! `cswatch --once --check <addrs>` is the CI smoke shape.

use cs_node::watch;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: cswatch [--once] [--check] [--interval-ms <N>] <OBS_ADDR>...\n\
         \n\
         --once         poll once and exit (default: loop forever)\n\
         --check        exit nonzero iff any daemon reports an invariant\n\
         \u{20}              violation (unreachable daemons are flagged but\n\
         \u{20}              never fail the check)\n\
         --interval-ms  polling cadence when looping (default 1000)\n\
         OBS_ADDR       a daemon's --obs-addr endpoint, host:port"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut once = false;
    let mut check = false;
    let mut interval_ms: u64 = 1000;
    let mut addrs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--once" => once = true,
            "--check" => check = true,
            "--interval-ms" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                interval_ms = v;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("cswatch: unknown argument {other:?}");
                usage();
            }
            addr => addrs.push(addr.to_string()),
        }
    }
    if addrs.is_empty() {
        usage();
    }
    let timeout = Duration::from_secs(2);
    loop {
        let probes = watch::probe_all(&addrs, timeout);
        let dashboard = watch::render(&probes);
        if !once {
            // Interactive loop: redraw in place.
            print!("\x1b[2J\x1b[H");
        }
        print!("{dashboard}");
        let breached = watch::slo_breached(&probes);
        if once {
            return if check && breached {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            };
        }
        if check && breached {
            eprintln!("cswatch: SLO breached — invariant violation reported");
            return ExitCode::FAILURE;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}
