//! The `csnoded` daemon: one Chiaroscuro participant per OS process.
//!
//! Lifecycle: bind the data-plane listener (ephemeral port), connect to the
//! coordinator, introduce yourself (`Hello` — node id, wire + control
//! protocol versions, data address), receive the `Bootstrap` (engine
//! configuration, population manifest, key share if on the committee), and
//! then serve `Step` commands until `Shutdown`: each step drives one
//! [`ProtocolNode`] — the *same* sans-IO state machine every other
//! substrate runs — over a [`TcpTransport`] whose peers are other
//! processes, announces `Done` when its own part completes, keeps serving
//! committee duties until `StepEnd`, and ships its [`NodeReport`] plus the
//! step's traffic delta back up the control channel.
//!
//! The daemon is deliberately boring: all protocol behavior lives in
//! `cs_net::node`, all transport behavior in `cs_net::tcp`; this module
//! only sequences bootstrap and steps. If the control connection dies the
//! daemon exits — in this deployment the coordinator *is* the experiment,
//! so an orphaned participant has nothing left to do.
//!
//! For forensics every daemon keeps a *flight recorder*: a bounded
//! DropOld ring of causal trace events fed by each step's
//! [`cs_obs::CausalTracer`]. The ring is scraped live (`Trace` on the
//! control plane, `/trace` on the optional `--obs-addr` HTTP endpoint)
//! and dumped to stderr as one JSON line on panic, on orphaning, on a
//! mid-step control error, and after any step that observed a peer
//! failure — so a node that dies (or watches a neighbor die) leaves its
//! last moments behind even when no scraper ever arrives.
//!
//! On top of that sits the *health monitor*: after every step the daemon
//! runs the [`cs_net::audit`] invariant checks over its own report and
//! traffic delta, feeding a cumulative [`cs_obs::HealthState`] (scraped
//! via `Health` on the control plane, `/health` over HTTP — 503 once
//! degraded) and a [`cs_obs::SeriesRing`] of per-step metric scrapes
//! (`/series`), with `/healthz` answering liveness facts uncondition-
//! ally. The `cswatch` binary polls exactly these routes.

use crate::proto::{read_msg, write_msg, ControlMsg, TimingSpec, PROTO_VERSION};
use chiaroscuro::config::CryptoMode;
use chiaroscuro::noise::SlotLayout;
use chiaroscuro::rounds::plan_packed_codec;
use chiaroscuro::ChiaroscuroConfig;
use cs_crypto::threshold::{delta_for, CombinePlanCache};
use cs_crypto::{FastEncryptor, FixedPointCodec, KeyShare, PublicKey, RandomizerPool};
use cs_net::node::{NodeCrypto, NodeParams, Outbound, PackedCrypto, ProtocolNode};
use cs_net::runtime::{decrypt_retry_interval, dispatch_frame};
use cs_net::tcp::{PeerDirectory, TcpEndpoint, TcpTransport};
use cs_net::transport::{NodeId, TrafficSnapshot, Transport};
use cs_net::wire::{encode_frame_traced, WIRE_VERSION};
use cs_obs::http::{ObsProviders, ObsServer};
use cs_obs::{
    AuditConfig, CausalTracer, Clock, HealthState, Liveness, NodeTrace, Registry, SeriesRing,
    TraceContext, Tracer, WallClock,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Command-line surface of the daemon.
#[derive(Clone, Debug)]
pub struct DaemonOpts {
    /// This participant's node id (its index in the population manifest).
    pub id: usize,
    /// The coordinator's control address, `host:port`.
    pub coordinator: String,
    /// Data-plane bind address; the default takes an ephemeral local port.
    pub bind: String,
    /// Address peers should connect to, when it differs from the bind
    /// address — required for wildcard binds (`0.0.0.0:PORT` would
    /// otherwise enter the manifest verbatim and route every peer to its
    /// own localhost). A bare `HOST` inherits the bound port.
    pub advertise: Option<String>,
    /// Address for the HTTP exposition endpoint (`/metrics` Prometheus
    /// text, `/trace` flight-recorder JSON, `/series` time-series
    /// telemetry, `/health` invariant verdict, `/healthz` liveness);
    /// `None` disables it.
    pub obs_addr: Option<String>,
}

impl DaemonOpts {
    /// Default options for `id` against `coordinator`.
    pub fn new(id: usize, coordinator: impl Into<String>) -> Self {
        DaemonOpts {
            id,
            coordinator: coordinator.into(),
            bind: "127.0.0.1:0".into(),
            advertise: None,
            obs_addr: None,
        }
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Flight-recorder capacity, in events. A 16-node step produces a few
/// hundred events per node, so 8k of DropOld history holds the last
/// several steps — enough context around any crash.
const FLIGHT_RECORDER_EVENTS: usize = 8192;

/// Time-series ring capacity, in per-step scrapes. One sample lands per
/// step, so this is the horizon (in steps) of the `/series` rate and
/// windowed-quantile views.
const SERIES_SAMPLES: usize = 64;

/// Daemon-lifetime health-monitor state, shared between the step loop
/// (which feeds it after every step) and the obs HTTP endpoint plus the
/// control-plane `Health` scrape (which serve it).
struct Monitor {
    /// Cumulative invariant-audit verdict: healthy until the first alert.
    health: HealthState,
    /// Ring of per-step cumulative metric scrapes behind `/series`.
    series: Mutex<SeriesRing>,
    /// Process start, for the uptime signal on `/healthz` and the
    /// `obs.uptime.seconds` gauge.
    start: Instant,
}

impl Monitor {
    fn new() -> Monitor {
        Monitor {
            health: HealthState::new(),
            series: Mutex::new(SeriesRing::new(SERIES_SAMPLES)),
            start: Instant::now(),
        }
    }

    fn uptime_seconds(&self) -> u64 {
        self.start.elapsed().as_secs()
    }
}

/// Dumps the flight recorder to stderr as one JSON line — crash forensics
/// of last resort when no coordinator is left to scrape it. The marker
/// prefix keeps the line greppable in a supervisor's interleaved log.
fn dump_flight(node: u64, flight: &Tracer, why: &str) {
    let trace = NodeTrace::capture(node, flight);
    match serde_json::to_string(&trace) {
        Ok(json) => eprintln!("csnoded[{node}] flight-recorder ({why}): {json}"),
        Err(e) => eprintln!("csnoded[{node}] flight-recorder ({why}): serialize failed: {e}"),
    }
}

/// The daemon's per-run context, assembled from the `Bootstrap` message.
struct RunContext {
    config: ChiaroscuroConfig,
    layout: SlotLayout,
    committee: Vec<usize>,
    pk: Option<Arc<PublicKey>>,
    share: Option<KeyShare>,
    timing: TimingSpec,
    transport: Arc<TcpTransport>,
    /// Packed-mode crypto (lane plan + fixed-base encryptor), built once
    /// per run by [`RunContext::prepare_packed`].
    packed: Option<PackedCrypto>,
    /// Per-committee-subset combine plans, cached across every step this
    /// daemon serves (the subset only changes when the responder set does).
    plans: Arc<CombinePlanCache>,
    /// The persistent randomizer pool: recovered from the node after each
    /// step ([`ProtocolNode::take_randomizer_pool`]) and restocked *after*
    /// the step's `Report` ships — i.e. while the daemon idles waiting for
    /// the next `Step` — so the gossip hot path pops precomputed
    /// randomizers. Unlike the in-process substrates' seed-keyed
    /// [`cs_crypto::PoolBank`], this pool draws from a private RNG that
    /// advances across steps: daemons learn the step seed only when the
    /// `Step` command arrives, and no bitwise-replay harness spans
    /// processes, so consumption-dependent contents are fine here.
    pool: Mutex<Option<RandomizerPool>>,
    /// Private randomness feeding [`RunContext::refill_pool`].
    pool_rng: Mutex<StdRng>,
    /// `true` when the Bootstrap's fault spec names *this* daemon: every
    /// partial decryption it emits gets its value bytes corrupted, a
    /// scripted drill the invariant audit must catch.
    corrupt_partials: bool,
}

impl RunContext {
    /// Builds the per-run packed crypto, once: the lane plan is derived
    /// locally from public inputs only (so every daemon agrees on it
    /// without coordination), and the fixed-base encryptor's window tables
    /// are precomputed here rather than per step — the in-process
    /// substrates likewise build their `FastEncryptor` once per run.
    fn prepare_packed(&self, id: usize) -> io::Result<Option<PackedCrypto>> {
        let Some(pk) = &self.pk else {
            return Ok(None);
        };
        if !self.config.packing {
            return Ok(None);
        }
        let codec = FixedPointCodec::new(self.config.codec_scale_bits);
        let plan = plan_packed_codec(
            &self.config,
            pk,
            &codec,
            &self.layout,
            self.transport.node_count(),
        )
        .map_err(|e| bad_data(format!("packed lane plan: {e}")))?;
        // Encryption randomness is private per daemon — only the lane
        // plan must match across the cluster, and it does (public inputs
        // only).
        let mut enc_rng = StdRng::seed_from_u64(self.config.seed ^ 0x5EED_DAE0 ^ (id as u64) << 32);
        Ok(Some(PackedCrypto {
            codec: plan,
            enc: Arc::new(FastEncryptor::new(pk.clone(), &mut enc_rng)),
            pool: None,
        }))
    }

    /// Randomizers the persistent pool targets: the expected demand of one
    /// full gossip run (each push re-randomizes the node's whole ciphertext
    /// vector — data and noise halves), capped so restocking stays cheap.
    /// Zero when the run doesn't re-randomize packed ciphertexts.
    fn pool_target(&self) -> usize {
        match &self.packed {
            Some(p) if self.config.rerandomize => {
                let data_cts = p.codec.ciphertexts_for(self.layout.noise_offset());
                (self.config.gossip_cycles * 2 * data_cts).min(512)
            }
            _ => 0,
        }
    }

    /// Hands the persistent pool to a step's node, building it on first use.
    fn take_pool(&self) -> Option<RandomizerPool> {
        let target = self.pool_target();
        if target == 0 {
            return None;
        }
        if let Some(pool) = self.pool.lock().expect("pool lock").take() {
            return Some(pool);
        }
        // First step of the run: nothing restocked yet, pay the build here.
        let enc = self.packed.as_ref().expect("target > 0 implies packed");
        let mut pool = RandomizerPool::new(enc.enc.clone());
        let mut rng = self.pool_rng.lock().expect("pool rng lock");
        pool.refill(target, &mut *rng);
        Some(pool)
    }

    /// Returns the (possibly drained) pool recovered from a finished step.
    fn stash_pool(&self, pool: RandomizerPool) {
        *self.pool.lock().expect("pool lock") = Some(pool);
    }

    /// Tops the stashed pool back up to target. Called after the step's
    /// `Report` has shipped — daemon idle time, off every critical path.
    fn refill_pool(&self) {
        let target = self.pool_target();
        if target == 0 {
            return;
        }
        let mut slot = self.pool.lock().expect("pool lock");
        if let Some(pool) = slot.as_mut() {
            let need = target.saturating_sub(pool.len());
            if need > 0 {
                let mut rng = self.pool_rng.lock().expect("pool rng lock");
                pool.refill(need, &mut *rng);
            }
        }
    }

    /// The crypto substrate this daemon's node runs with — mirrors
    /// `cs_net::runtime::StepCrypto::node_crypto`, rebuilt from shipped
    /// key material instead of the in-process dealer.
    fn node_crypto(&self) -> io::Result<NodeCrypto> {
        let Some(pk) = &self.pk else {
            return Ok(NodeCrypto::Plain);
        };
        if !matches!(self.config.crypto, CryptoMode::Real { .. }) {
            return Err(bad_data("public key shipped for a simulated-crypto run"));
        }
        let mut packed = self.packed.clone();
        if let Some(p) = &mut packed {
            p.pool = self.take_pool();
        }
        Ok(NodeCrypto::Real {
            pk: pk.clone(),
            codec: FixedPointCodec::new(self.config.codec_scale_bits),
            share: self.share.clone(),
            params: self.config.threshold,
            delta: delta_for(self.config.threshold.parties),
            plans: self.plans.clone(),
            rerandomize: self.config.rerandomize,
            packed,
        })
    }
}

/// Runs the daemon to completion (clean `Shutdown` or control-channel
/// death). This is the body of the `csnoded` binary; tests can call it
/// in-process as well.
pub fn run(opts: &DaemonOpts) -> io::Result<()> {
    // Bind first: the ephemeral data-plane port is part of our Hello.
    let endpoint = TcpEndpoint::bind(&opts.bind)?;
    let bound = endpoint.local_addr()?;
    // What enters the population manifest. A wildcard bind is unroutable
    // for peers, so it demands an explicit advertise address.
    let data_addr = match &opts.advertise {
        Some(adv) if adv.contains(':') => adv.clone(),
        Some(host) => format!("{host}:{}", bound.port()),
        None if bound.ip().is_unspecified() => {
            return Err(bad_data(format!(
                "bound to wildcard {bound} — peers cannot route to it; \
                 pass --advertise <HOST[:PORT]>"
            )));
        }
        None => bound.to_string(),
    };

    // Daemon-lifetime registry: transport counters accumulate across every
    // step this process runs, so a live `Metrics` scrape sees cumulative
    // totals while per-step `Report`s carry `since()` deltas.
    let registry = Arc::new(Registry::new());
    // Daemon-lifetime flight recorder: a bounded DropOld ring of causal
    // trace events (a crash wants the *last* moments, not the first).
    // Every step's tracer appends here; the ring is dumped on panic or
    // control-channel death and scraped via `Trace` / `/trace`.
    let flight = Arc::new(Tracer::ring(
        Arc::new(WallClock::new()) as Arc<dyn Clock>,
        FLIGHT_RECORDER_EVENTS,
    ));
    flight.count_drops_in(&registry);
    // Crash forensics: a panicking daemon dumps its ring to stderr after
    // the default hook has printed the panic itself.
    {
        let flight = flight.clone();
        let node = opts.id as u64;
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            default_hook(info);
            dump_flight(node, &flight, "panic");
        }));
    }
    let monitor = Arc::new(Monitor::new());

    // The optional HTTP exposition endpoint, bound *before* the Hello so
    // the coordinator learns the scrape address (an ephemeral `:0` port is
    // unknowable otherwise). Held for the daemon's lifetime; dropping it
    // joins the accept loop.
    let _obs = match &opts.obs_addr {
        Some(addr) => {
            let node = opts.id as u64;
            let server = {
                let reg = registry.clone();
                let mon = monitor.clone();
                let fl = flight.clone();
                let (mon_s, mon_h, mon_z) = (monitor.clone(), monitor.clone(), monitor.clone());
                ObsServer::serve(
                    addr,
                    ObsProviders {
                        metrics: Box::new(move || {
                            // The uptime gauge is refreshed at scrape time,
                            // so a watchdog always reads current liveness.
                            reg.gauge("obs.uptime.seconds")
                                .set(mon.uptime_seconds() as i64);
                            reg.snapshot()
                        }),
                        trace: Box::new(move || NodeTrace::capture(node, &fl)),
                        series: Some(Box::new(move || {
                            mon_s.series.lock().expect("series lock").view()
                        })),
                        health: Some(Box::new(move || mon_h.health.report())),
                        healthz: Some(Box::new(move || Liveness {
                            node,
                            uptime_seconds: mon_z.uptime_seconds(),
                            proto_version: PROTO_VERSION as u32,
                            wire_version: WIRE_VERSION as u32,
                            build: env!("CARGO_PKG_VERSION").into(),
                        })),
                    },
                )?
            };
            eprintln!("csnoded[{}] obs endpoint on {}", opts.id, server.addr());
            Some(server)
        }
        None => None,
    };
    let obs_addr = _obs.as_ref().map(|s| s.addr().to_string());

    let mut control = TcpStream::connect(&opts.coordinator)?;
    control.set_nodelay(true)?;
    write_msg(
        &mut control,
        &ControlMsg::Hello {
            node: opts.id,
            wire_version: WIRE_VERSION,
            proto_version: PROTO_VERSION,
            data_addr,
            obs_addr,
        },
    )?;

    // Bootstrap: the population manifest wires the endpoint into the
    // data-plane transport; key material and config arrive alongside.
    let boot = read_msg(&mut control)?;
    let ControlMsg::Bootstrap {
        config,
        layout,
        population,
        committee,
        pk,
        share,
        link,
        timing,
        transport_seed,
        fault,
    } = boot
    else {
        return Err(bad_data("expected Bootstrap after Hello"));
    };
    if opts.id >= population.len() {
        return Err(bad_data(format!(
            "node id {} outside population of {}",
            opts.id,
            population.len()
        )));
    }
    let directory: Vec<SocketAddr> = population
        .iter()
        .map(|a| {
            a.parse()
                .map_err(|e| bad_data(format!("bad address {a:?}: {e}")))
        })
        .collect::<io::Result<_>>()?;
    let transport = Arc::new(endpoint.into_transport_with_metrics(
        &[opts.id],
        PeerDirectory::new(directory),
        link.to_link_config(),
        transport_seed ^ (opts.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        &registry,
    ));
    let pool_rng_seed = config.seed ^ 0x5EED_B007_u64 ^ ((opts.id as u64) << 32);
    let mut ctx = RunContext {
        config,
        layout,
        committee,
        pk: pk.map(Arc::new),
        share,
        timing,
        transport,
        packed: None,
        plans: Arc::new(CombinePlanCache::new()),
        pool: Mutex::new(None),
        pool_rng: Mutex::new(StdRng::seed_from_u64(pool_rng_seed)),
        corrupt_partials: fault.is_some_and(|f| f.corrupts_partials(opts.id)),
    };
    ctx.packed = ctx.prepare_packed(opts.id)?;

    // Control reader thread: turns the blocking stream into a channel the
    // step loop can poll without stalling the protocol. EOF becomes a
    // Shutdown sentinel — an orphaned daemon exits — with `control_died`
    // distinguishing it from a clean coordinator-sent Shutdown.
    let control_died = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<ControlMsg>();
    let mut reader = control.try_clone()?;
    let died_flag = control_died.clone();
    thread::Builder::new()
        .name("csnoded-control".into())
        .spawn(move || loop {
            match read_msg(&mut reader) {
                Ok(msg) => {
                    if tx.send(msg).is_err() {
                        return;
                    }
                }
                Err(_) => {
                    died_flag.store(true, Ordering::Release);
                    let _ = tx.send(ControlMsg::Shutdown);
                    return;
                }
            }
        })
        .expect("spawn control reader");

    let result = serve_steps(
        opts,
        &ctx,
        &registry,
        &flight,
        &monitor,
        &control_died,
        &rx,
        &mut control,
    );
    if result.is_err() {
        // A mid-step control death propagates as an error; leave the last
        // moments behind before the process exits.
        dump_flight(opts.id as u64, &flight, "exiting on error");
    }
    result
}

/// The daemon's command loop: serve `Step` / `Metrics` / `Trace` /
/// `Health` until `Shutdown` (or the control channel dies).
#[allow(clippy::too_many_arguments)] // one call site; daemon-lifetime state
fn serve_steps(
    opts: &DaemonOpts,
    ctx: &RunContext,
    registry: &Registry,
    flight: &Arc<Tracer>,
    monitor: &Monitor,
    control_died: &AtomicBool,
    rx: &mpsc::Receiver<ControlMsg>,
    control: &mut TcpStream,
) -> io::Result<()> {
    let mut last_snapshot = TrafficSnapshot::default();
    let mut last_metrics = cs_obs::MetricsSnapshot::default();
    loop {
        match rx.recv() {
            Ok(ControlMsg::Step {
                step,
                step_seed,
                contribution,
                ctx: step_ctx,
            }) => {
                let report = run_step(
                    ctx,
                    opts.id,
                    step,
                    step_seed,
                    step_ctx,
                    contribution,
                    flight,
                    rx,
                    control,
                )?;
                // A peer that SIGKILLed mid-gossip shows up as a vote
                // failure; dump the forensic window around its death while
                // the ring still holds it.
                if report.peer_failures > 0 {
                    dump_flight(opts.id as u64, flight, "peer death detected");
                }
                // Fold the step's phase profile into the registry *before*
                // snapshotting, so `phase.<name>.ns` counters ride the same
                // delta discipline as the transport counters.
                for phase in cs_obs::StepPhase::ALL {
                    let ns = report.profile.get(phase);
                    if ns > 0 {
                        registry
                            .counter(&format!("phase.{}.ns", phase.name()))
                            .add(ns);
                    }
                }
                let now = ctx.transport.snapshot();
                let delta = now.since(&last_snapshot);
                last_snapshot = now;
                // Invariant audit over this step's own report and traffic
                // delta, *before* the final snapshot so any freshly minted
                // `obs.alert.<kind>` counter rides this step's Report
                // delta. Violations land in the flight recorder and flip
                // the cumulative health verdict behind `/health`.
                let pre_audit = registry.snapshot().since(&last_metrics);
                let mut evidence = cs_net::StepEvidence::distill(
                    step as u64,
                    std::slice::from_ref(&report),
                    &delta,
                    &pre_audit,
                );
                // A step that watched a peer die leaves frames mid-
                // reclassification (sent-then-lost against the dead peer),
                // racing the two snapshots above. Churn is fail-stop, not
                // an invariant violation — skip the frame-conservation
                // check for this step; mass and share discipline still run.
                if report.peer_failures > 0 {
                    evidence.traffic.clear();
                }
                let _ = cs_net::audit_step(
                    &AuditConfig::default(),
                    &evidence,
                    registry,
                    Some(flight),
                    Some(&monitor.health),
                );
                registry
                    .gauge("obs.uptime.seconds")
                    .set(monitor.uptime_seconds() as i64);
                let metrics_now = registry.snapshot();
                let metrics_delta = metrics_now.since(&last_metrics);
                // One `/series` sample per step, tagged with the step
                // index; rates and windowed quantiles derive from these.
                monitor
                    .series
                    .lock()
                    .expect("series lock")
                    .record(step as u64, metrics_now.clone());
                last_metrics = metrics_now;
                write_msg(
                    control,
                    &ControlMsg::Report {
                        step,
                        report,
                        snapshot: delta,
                        metrics: metrics_delta,
                    },
                )?;
                // Report shipped, coordinator satisfied: restock the
                // randomizer pool now, while waiting for the next Step —
                // the fixed-base exponentiations land in idle time instead
                // of the next step's gossip hot path.
                ctx.refill_pool();
            }
            // Live scrape: cumulative since daemon start, not delta'd.
            Ok(ControlMsg::Metrics) => {
                registry
                    .gauge("obs.uptime.seconds")
                    .set(monitor.uptime_seconds() as i64);
                write_msg(
                    control,
                    &ControlMsg::MetricsReport {
                        node: opts.id,
                        metrics: registry.snapshot(),
                    },
                )?;
            }
            // Health scrape: the cumulative invariant-audit verdict since
            // daemon start (degraded stays degraded — alerts never clear).
            Ok(ControlMsg::Health) => {
                write_msg(
                    control,
                    &ControlMsg::HealthReport {
                        node: opts.id,
                        report: monitor.health.report(),
                        uptime_seconds: monitor.uptime_seconds(),
                    },
                )?;
            }
            // Flight-recorder scrape: capture without draining, so a later
            // crash dump still has the history.
            Ok(ControlMsg::Trace) => {
                write_msg(
                    control,
                    &ControlMsg::TraceReport {
                        node: opts.id,
                        trace: NodeTrace::capture(opts.id as u64, flight),
                    },
                )?;
            }
            Ok(ControlMsg::Shutdown) | Err(_) => {
                if control_died.load(Ordering::Acquire) {
                    // Orphaned (coordinator gone without a Shutdown): exit
                    // cleanly but leave the forensic record behind.
                    dump_flight(opts.id as u64, flight, "control connection lost");
                }
                return Ok(());
            }
            // A StepEnd can trail a step this daemon already left (the
            // dark-mode timeout path); late duplicates are harmless, so
            // ignore anything that is neither work nor a shutdown.
            Ok(_) => {}
        }
    }
}

/// What the step loop should do next, after polling the control channel.
enum Control {
    Continue,
    StepEnd,
    Dead,
}

fn poll_control(rx: &mpsc::Receiver<ControlMsg>) -> Control {
    match rx.try_recv() {
        Ok(ControlMsg::StepEnd) => Control::StepEnd,
        Ok(ControlMsg::Shutdown) => Control::Dead,
        Ok(_) => Control::Continue, // late duplicates are harmless
        Err(TryRecvError::Empty) => Control::Continue,
        Err(TryRecvError::Disconnected) => Control::Dead,
    }
}

/// Drives one computation step. Mirrors the threaded runtime's node loop
/// (receive → tick → decrypt retries → flush → completion), with two
/// differences: completion is *announced* to the coordinator instead of a
/// shared flag, and the loop ends on `StepEnd` instead of a shutdown
/// atomic. A `None` contribution runs the step dark — drain and discard,
/// exactly the crashed-node semantics of the other substrates.
///
/// KEEP IN SYNC with `cs_net::runtime::node_loop`: frame dispatch and the
/// decrypt-retry cadence are shared helpers (`dispatch_frame`,
/// `decrypt_retry_interval`), but the loop shape — the `min(500µs)`
/// receive wait and the done/all-votes/quiesce completion rule — is
/// load-bearing for the cross-substrate differential e2e tests, and a
/// change applied to only one loop desynchronizes the substrates silently.
#[allow(clippy::too_many_arguments)] // one call site; mirrors the Step fields
fn run_step(
    ctx: &RunContext,
    id: NodeId,
    step: usize,
    step_seed: u64,
    step_ctx: TraceContext,
    contribution: Option<Vec<f64>>,
    flight: &Arc<Tracer>,
    rx: &mpsc::Receiver<ControlMsg>,
    control: &mut TcpStream,
) -> io::Result<cs_net::node::NodeReport> {
    let transport = ctx.transport.as_ref();
    let push_interval = Duration::from_micros(ctx.timing.push_interval_us.max(1));
    let quiesce = Duration::from_millis(ctx.timing.quiesce_ms);
    let decrypt_deadline = Duration::from_millis(ctx.timing.decrypt_deadline_ms);
    let step_timeout = Duration::from_millis(ctx.timing.step_timeout_ms);

    if contribution.is_none() {
        // Down at step start: hold the slot dark. Everything addressed to
        // this node is received and destroyed, like a crashed node. A dark
        // slot still acknowledges Ready so it can never stall the
        // population's start barrier.
        write_msg(control, &ControlMsg::Ready { step, node: id })?;
        write_msg(control, &ControlMsg::Done { step, node: id })?;
        let started = Instant::now();
        loop {
            match poll_control(rx) {
                Control::StepEnd => return Ok(cs_net::node::NodeReport::dead(id)),
                Control::Dead => {
                    return Err(bad_data("control channel died mid-step"));
                }
                Control::Continue => {}
            }
            while transport.try_recv(id).is_some() {}
            let _ = transport.recv_timeout(id, Duration::from_millis(2));
            if started.elapsed() >= step_timeout {
                return Ok(cs_net::node::NodeReport::dead(id));
            }
        }
    }

    let params = NodeParams {
        id,
        population: transport.node_count(),
        iteration: step_seed, // unique per step; tags every frame
        pushes: ctx.config.gossip_cycles,
        committee: ctx.committee.clone(),
        seed: step_seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        votes: true,
        corrupt_partials: ctx.corrupt_partials,
    };
    let node_crypto = ctx.node_crypto()?;
    let mut node = ProtocolNode::new(params, ctx.layout, node_crypto, contribution.as_deref());

    // Start barrier, mirroring the threaded runtime's start gate: node
    // construction (contribution encryption — the expensive part in
    // real-crypto mode) happens on every daemon before anyone gossips, so
    // the coordinator's scripted kill offsets mean "into the gossip
    // phase", not "into the encryption stampede".
    write_msg(control, &ControlMsg::Ready { step, node: id })?;
    let barrier = Instant::now();
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(ControlMsg::Go { step: s }) if s == step => break,
            // A coordinator that timed out collecting Readys may skip
            // straight to ending the step.
            Ok(ControlMsg::StepEnd) => {
                if let Some(pool) = node.take_randomizer_pool() {
                    ctx.stash_pool(pool);
                }
                return Ok(node.into_report());
            }
            Ok(ControlMsg::Shutdown) => return Err(bad_data("shutdown mid-step")),
            Ok(_) => {}
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if barrier.elapsed() >= step_timeout {
                    return Err(bad_data("no Go from the coordinator"));
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(bad_data("control channel died at the start barrier"));
            }
        }
    }

    // The tracer attaches after the Go barrier (like the threaded
    // runtime's post-gate attach) so the `step.start` span marks the start
    // of *gossip*, not of the encryption stampede before the barrier. Its
    // causal parent is the coordinator's `Step` send.
    node = node.with_tracer(CausalTracer::new(
        flight.clone(),
        step_seed,
        id as u64,
        step_ctx,
    ));

    let started = Instant::now();
    let mut out: Vec<Outbound> = Vec::new();
    let mut next_tick = Instant::now();
    let retry_interval = decrypt_retry_interval(push_interval);
    let mut next_retry = Instant::now() + retry_interval;
    let mut done_since: Option<Instant> = None;
    let mut await_since: Option<Instant> = None;
    let mut announced = false;

    loop {
        match poll_control(rx) {
            Control::StepEnd => break,
            Control::Dead => return Err(bad_data("control channel died mid-step")),
            Control::Continue => {}
        }

        let wait = push_interval.min(Duration::from_micros(500));
        if let Some(env) = transport.recv_timeout(id, wait) {
            dispatch_frame(&mut node, env, &mut out);
            while let Some(env) = transport.try_recv(id) {
                dispatch_frame(&mut node, env, &mut out);
            }
        }

        let now = Instant::now();
        if now >= next_tick {
            node.tick(&mut out);
            next_tick = now + push_interval;
        }
        if node.awaiting_shares() {
            let since = *await_since.get_or_insert(now);
            if now.duration_since(since) >= decrypt_deadline {
                node.abandon_decrypt(&mut out);
            } else if now >= next_retry {
                node.retry_decrypt(&mut out);
                next_retry = now + retry_interval;
            }
        }
        for (to, msg, msg_ctx) in out.drain(..) {
            let class = msg.class();
            let frame = encode_frame_traced(&msg, msg_ctx);
            // Sends to dead peers degrade into loss inside the transport.
            let _ = transport.send(id, to, frame, class);
        }

        if !announced {
            if node.step_done() && done_since.is_none() {
                done_since = Some(Instant::now());
            }
            let quiesced = done_since.is_some_and(|t| t.elapsed() >= quiesce);
            let timed_out = started.elapsed() >= step_timeout;
            if (node.step_done() && (node.all_votes_in() || quiesced)) || timed_out {
                write_msg(control, &ControlMsg::Done { step, node: id })?;
                announced = true;
            }
        }
    }
    // The (possibly drained) randomizer pool survives the step; it is
    // restocked after the Report ships (see `serve_steps`).
    if let Some(pool) = node.take_randomizer_pool() {
        ctx.stash_pool(pool);
    }
    Ok(node.into_report())
}
