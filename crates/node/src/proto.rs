//! The control-plane protocol between a coordinator and its `csnoded`
//! daemons.
//!
//! The *data plane* — gossip pushes, decryption traffic, votes — runs
//! peer-to-peer over [`cs_net::tcp::TcpTransport`] and never touches the
//! coordinator. The control plane is the thin bootstrap-and-orchestration
//! layer around it:
//!
//! ```text
//! daemon → coordinator   Hello     (id, wire/proto version, data address)
//! coordinator → daemon   Bootstrap (config, population manifest, key share)
//! coordinator → daemon   Step      (per-iteration seed + contribution)
//! daemon → coordinator   Ready     (node constructed — ready to gossip)
//! coordinator → daemon   Go        (everyone is ready — start gossiping)
//! daemon → coordinator   Done      (own part of the step finished)
//! coordinator → daemon   StepEnd   (everyone is done — stop serving)
//! daemon → coordinator   Report    (estimate, op counts, traffic delta)
//! coordinator → daemon   Shutdown
//! ```
//!
//! Between steps a coordinator may also send `Metrics` (a live scrape
//! request); the daemon answers with `MetricsReport`, a cumulative
//! [`cs_obs::MetricsSnapshot`] of its transport and step-phase counters.
//! Likewise `Trace` / `TraceReport` scrape the daemon's flight recorder —
//! a bounded ring of causal trace events ([`cs_obs::NodeTrace`]) the
//! coordinator merges into one cluster timeline — and `Health` /
//! `HealthReport` scrape the daemon's invariant-audit verdict
//! ([`cs_obs::HealthReport`]), which the coordinator folds into one
//! cluster health verdict.
//!
//! Control messages are serde-JSON documents behind a `u32` length prefix —
//! they are low-rate (a handful per step), so readability beats compactness;
//! the latency-critical path is the wire codec, not this. Both sides check
//! [`PROTO_VERSION`] and [`cs_net::wire::WIRE_VERSION`] during the
//! handshake, so a mixed-version cluster fails at bootstrap instead of
//! corrupting a run.

use chiaroscuro::noise::SlotLayout;
use chiaroscuro::rounds::PerturbedAggregates;
use chiaroscuro::ChiaroscuroConfig;
use cs_crypto::{KeyShare, PublicKey};
use cs_net::node::NodeReport;
use cs_net::transport::{LinkConfig, TrafficSnapshot};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Control-plane protocol version; both sides must match exactly.
/// v2 added the `Metrics` / `MetricsReport` scrape pair and the
/// metrics snapshot carried by `Report`; v3 added the `Trace` /
/// `TraceReport` flight-recorder scrape pair and the trace context
/// carried by `Step`; v4 added the `Health` / `HealthReport` scrape
/// pair, the observability address carried by `Hello`, and the fault
/// spec carried by `Bootstrap`.
pub const PROTO_VERSION: u8 = 4;

/// Upper bound on one control message (guards the length-prefix read).
pub const MAX_CONTROL_BYTES: usize = 64 << 20;

/// A [`LinkConfig`] in wire-friendly units (the vendored serde stand-in has
/// no `Duration` impl, and explicit microseconds are unambiguous anyway).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Fixed one-way delivery delay, microseconds.
    pub latency_us: u64,
    /// Additional uniformly-random delay in `[0, jitter]`, microseconds.
    pub jitter_us: u64,
    /// Per-frame loss probability.
    pub loss: f64,
    /// Link bandwidth in bytes/second; `None` = infinitely fast.
    pub bandwidth_bytes_per_sec: Option<u64>,
}

impl LinkSpec {
    /// A perfect link (the right default for a real TCP cluster — the
    /// kernel provides the genuine article).
    pub fn ideal() -> Self {
        LinkSpec {
            latency_us: 0,
            jitter_us: 0,
            loss: 0.0,
            bandwidth_bytes_per_sec: None,
        }
    }

    /// Converts to the transport's native form.
    pub fn to_link_config(self) -> LinkConfig {
        LinkConfig {
            latency: Duration::from_micros(self.latency_us),
            jitter: Duration::from_micros(self.jitter_us),
            loss: self.loss,
            bandwidth_bytes_per_sec: self.bandwidth_bytes_per_sec,
        }
    }
}

/// Per-node event-loop timing, in wire-friendly units (see
/// [`cs_net::runtime::NetConfig`] for the semantics of each knob).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingSpec {
    /// Pacing between a node's gossip pushes, microseconds.
    pub push_interval_us: u64,
    /// Post-completion vote wait, milliseconds.
    pub quiesce_ms: u64,
    /// Decryption-round give-up deadline, milliseconds.
    pub decrypt_deadline_ms: u64,
    /// Hard per-step deadline, milliseconds.
    pub step_timeout_ms: u64,
}

impl Default for TimingSpec {
    fn default() -> Self {
        TimingSpec {
            push_interval_us: 300,
            quiesce_ms: 400,
            decrypt_deadline_ms: 10_000,
            step_timeout_ms: 60_000,
        }
    }
}

/// Everything that ever crosses a control connection, in either direction.
// Control messages are low-rate (a handful per step); the Bootstrap
// variant's size gap to StepEnd/Shutdown is irrelevant next to the key
// material it carries.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ControlMsg {
    /// Daemon → coordinator: first message after connecting.
    Hello {
        /// The daemon's node id (assigned by the supervisor's command line).
        node: usize,
        /// The daemon's data-plane wire codec version.
        wire_version: u8,
        /// The daemon's control-plane protocol version.
        proto_version: u8,
        /// The address the daemon's data-plane listener is bound to.
        data_addr: String,
        /// The address the daemon's observability HTTP server is bound
        /// to, if one was requested (`--obs-addr`). Lets the coordinator
        /// hand a live cluster's scrape endpoints to tools like `cswatch`
        /// without out-of-band discovery.
        obs_addr: Option<String>,
    },
    /// Coordinator → daemon: the full run context. Sent once, before the
    /// first step.
    Bootstrap {
        /// The engine configuration (the daemon derives the fixed-point
        /// codec, packing plan, and pacing defaults from it).
        config: ChiaroscuroConfig,
        /// Aggregate-vector slot layout of the run.
        layout: SlotLayout,
        /// The population manifest: `population[i]` is node `i`'s
        /// data-plane listener address.
        population: Vec<String>,
        /// The decryption committee, in share order.
        committee: Vec<usize>,
        /// The shared public key (`None` in simulated-crypto mode).
        pk: Option<PublicKey>,
        /// This daemon's key share, if it sits on the committee.
        share: Option<KeyShare>,
        /// Link shims for the data-plane transport.
        link: LinkSpec,
        /// Event-loop timing.
        timing: TimingSpec,
        /// Seed for the data-plane transport's loss/jitter draws.
        transport_seed: u64,
        /// Scripted fault injection for monitoring drills (`None` on
        /// honest runs). The daemon named by the spec corrupts its own
        /// partial decryptions; the invariant audit must catch it.
        fault: Option<cs_net::FaultSpec>,
    },
    /// Coordinator → daemon: run one computation step.
    Step {
        /// 0-based step index.
        step: usize,
        /// The engine's per-iteration seed (tags every frame, seeds the
        /// node's RNG — identical across the cluster).
        step_seed: u64,
        /// This node's cleartext contribution vector, or `None` if it is
        /// down at step start (it then stays dark for the whole step).
        contribution: Option<Vec<f64>>,
        /// The coordinator's causal trace context for this step: every
        /// daemon's `step.start` span parents onto the coordinator's
        /// `Step` send, linking the whole cluster timeline to one root.
        /// `NONE` when the coordinator runs untraced.
        ctx: cs_obs::TraceContext,
    },
    /// Daemon → coordinator: step context received and the protocol node
    /// constructed (contribution encrypted) — ready to gossip. The
    /// coordinator's `Go` barrier makes churn offsets mean "into the
    /// *gossip* phase" on every machine, exactly like the threaded
    /// runtime's start gate.
    Ready {
        /// The step being acknowledged.
        step: usize,
        /// The reporting node.
        node: usize,
    },
    /// Coordinator → daemon: every living daemon is ready — start
    /// gossiping.
    Go {
        /// The step being released.
        step: usize,
    },
    /// Daemon → coordinator: own part of the step finished (estimate
    /// obtained or given up); still serving committee duties.
    Done {
        /// The step being announced — the coordinator drops stale
        /// announcements from a previous step's stragglers.
        step: usize,
        /// The reporting node.
        node: usize,
    },
    /// Coordinator → daemon: the whole population is done — stop the step
    /// loop and report.
    StepEnd,
    /// Daemon → coordinator: the step's outcome.
    Report {
        /// The step being reported — a straggler report from an earlier
        /// step must never be attributed to the current one.
        step: usize,
        /// The node's protocol report.
        report: NodeReport,
        /// This step's data-plane traffic (already delta'd against the
        /// previous step — summing across daemons gives cluster totals).
        snapshot: TrafficSnapshot,
        /// This step's metrics delta (same delta discipline as `snapshot`;
        /// summing across daemons with [`cs_obs::MetricsSnapshot::plus`]
        /// gives cluster totals).
        metrics: cs_obs::MetricsSnapshot,
    },
    /// Coordinator → daemon: scrape the daemon's cumulative metrics.
    /// Answered with [`ControlMsg::MetricsReport`]; valid between steps
    /// (inside a step the daemon is in its step loop and will answer after
    /// reporting).
    Metrics,
    /// Daemon → coordinator: the cumulative [`cs_obs::MetricsSnapshot`]
    /// since daemon start — **not** delta'd, unlike the per-step `Report`.
    MetricsReport {
        /// The reporting node.
        node: usize,
        /// Everything the daemon's registry has accumulated: `net.*` and
        /// `tcp.*` transport counters plus the per-step phase profiles
        /// folded into `phase.<name>.ns` counters.
        metrics: cs_obs::MetricsSnapshot,
    },
    /// Coordinator → daemon: scrape the daemon's flight recorder.
    /// Answered with [`ControlMsg::TraceReport`]; like `Metrics`, valid
    /// between steps.
    Trace,
    /// Daemon → coordinator: everything currently in the daemon's bounded
    /// flight-recorder ring — cumulative across steps until the ring
    /// evicts, **not** cleared by the scrape.
    TraceReport {
        /// The reporting node.
        node: usize,
        /// The flight-recorder capture.
        trace: cs_obs::NodeTrace,
    },
    /// Coordinator → daemon: scrape the daemon's health verdict.
    /// Answered with [`ControlMsg::HealthReport`]; like `Metrics`, valid
    /// between steps.
    Health,
    /// Daemon → coordinator: the daemon's cumulative invariant-audit
    /// verdict — degraded as soon as any alert has fired since start.
    HealthReport {
        /// The reporting node.
        node: usize,
        /// The health verdict with per-kind alert counts and the most
        /// recent alerts.
        report: cs_obs::HealthReport,
        /// Seconds since the daemon process started (liveness signal —
        /// a freshly restarted daemon resets to zero).
        uptime_seconds: u64,
    },
    /// Coordinator → daemon: exit cleanly.
    Shutdown,
}

/// The estimate type re-exported where control-plane users expect it.
pub type Estimate = PerturbedAggregates;

/// Writes one length-prefixed control message.
pub fn write_msg<W: Write>(w: &mut W, msg: &ControlMsg) -> io::Result<()> {
    let json = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let bytes = json.as_bytes();
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed control message (blocking).
pub fn read_msg<R: Read>(r: &mut R) -> io::Result<ControlMsg> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_CONTROL_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("control message of {len} bytes exceeds the cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let json = std::str::from_utf8(&buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    serde_json::from_str(json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_roundtrip_through_the_framing() {
        let msgs = vec![
            ControlMsg::Hello {
                node: 3,
                wire_version: cs_net::wire::WIRE_VERSION,
                proto_version: PROTO_VERSION,
                data_addr: "127.0.0.1:4567".into(),
                obs_addr: Some("127.0.0.1:9100".into()),
            },
            ControlMsg::Step {
                step: 1,
                step_seed: 42,
                contribution: Some(vec![1.0, -2.5, 0.0]),
                ctx: cs_obs::TraceContext {
                    trace_id: 42,
                    span_id: 0x11,
                    parent_id: 0,
                },
            },
            ControlMsg::Step {
                step: 2,
                step_seed: 43,
                contribution: None,
                ctx: cs_obs::TraceContext::NONE,
            },
            ControlMsg::Ready { step: 1, node: 7 },
            ControlMsg::Go { step: 1 },
            ControlMsg::Done { step: 1, node: 7 },
            ControlMsg::StepEnd,
            ControlMsg::Report {
                step: 1,
                report: NodeReport::dead(7),
                snapshot: TrafficSnapshot::default(),
                metrics: Default::default(),
            },
            ControlMsg::Metrics,
            ControlMsg::MetricsReport {
                node: 7,
                metrics: Default::default(),
            },
            ControlMsg::Health,
            ControlMsg::HealthReport {
                node: 7,
                report: {
                    let state = cs_obs::HealthState::new();
                    state.raise(cs_obs::Alert {
                        kind: cs_obs::AlertKind::MassConservation,
                        node: Some(7),
                        step: 1,
                        measured: 3.5,
                        limit: 0.5,
                        detail: "drill".into(),
                    });
                    state.report()
                },
                uptime_seconds: 12,
            },
            ControlMsg::Trace,
            ControlMsg::TraceReport {
                node: 7,
                trace: cs_obs::NodeTrace {
                    node: 7,
                    dropped: 1,
                    events: vec![],
                },
            },
            ControlMsg::Shutdown,
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_msg(&mut buf, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &msgs {
            let back = read_msg(&mut cursor).unwrap();
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                serde_json::to_string(m).unwrap()
            );
        }
    }

    #[test]
    fn bootstrap_roundtrips_with_key_material() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let config = ChiaroscuroConfig::test_real();
        let tkp = cs_crypto::ThresholdKeyPair::generate(
            &cs_crypto::KeyGenOptions::insecure_test_size(),
            config.threshold,
            &mut rng,
        )
        .unwrap();
        let msg = ControlMsg::Bootstrap {
            config,
            layout: SlotLayout {
                k: 2,
                series_len: 3,
            },
            population: vec!["127.0.0.1:1000".into(), "127.0.0.1:1001".into()],
            committee: vec![0, 1, 2],
            pk: Some(tkp.public().clone()),
            share: Some(tkp.shares()[0].clone()),
            link: LinkSpec::ideal(),
            timing: TimingSpec::default(),
            transport_seed: 99,
            fault: Some(cs_net::FaultSpec::CorruptPartials { node: 1 }),
        };
        let mut buf = Vec::new();
        write_msg(&mut buf, &msg).unwrap();
        let back = read_msg(&mut std::io::Cursor::new(buf)).unwrap();
        let ControlMsg::Bootstrap {
            pk,
            share,
            committee,
            ..
        } = back
        else {
            panic!("wrong variant");
        };
        assert_eq!(pk.as_ref(), Some(tkp.public()));
        assert_eq!(share.as_ref(), Some(&tkp.shares()[0]));
        assert_eq!(committee, vec![0, 1, 2]);
    }

    #[test]
    fn oversized_control_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(b"garbage");
        assert!(read_msg(&mut std::io::Cursor::new(buf)).is_err());
    }
}
