//! The execution log.
//!
//! The demo stores "the execution log … in a local MongoDB database and
//! displayed by the GUI through a web browser". Every series the GUI plots —
//! centroid evolution, noise impact, quality and cost measures per iteration
//! — derives from this log. We emit the same information as a serializable
//! structure with JSON and CSV renderers; the GUI is presentation only
//! (DESIGN.md §4).

use crate::cost::IterationCost;
use serde::{Deserialize, Serialize};

/// Everything recorded about one protocol iteration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// ε slice spent on this iteration's disclosures.
    pub epsilon: f64,
    /// Laplace scale `b = Δ/ε_t` used for the noise shares.
    pub noise_scale: f64,
    /// Live participants at the start of the iteration.
    pub alive: usize,
    /// Canonical (population-averaged) centroid movement this iteration.
    pub movement: f64,
    /// Fraction of live participants whose convergence step fired.
    pub converged_fraction: f64,
    /// Canonical perturbed centroids after the iteration (`k × series_len`).
    pub centroids: Vec<Vec<f64>>,
    /// Omniscient-observer clean means (no noise, exact aggregation) for the
    /// same assignments — the demo's "impact of the noise" graphs compare
    /// these against `centroids`. Never disclosed to participants.
    pub observer_clean_centroids: Vec<Vec<f64>>,
    /// Mean absolute perturbation across centroid coordinates.
    pub noise_impact: f64,
    /// Cost counters for the iteration.
    pub cost: IterationCost,
}

/// Full log of one run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionLog {
    /// Dataset label (e.g. `"cer-like"`).
    pub dataset: String,
    /// Population size.
    pub population: usize,
    /// Series length.
    pub series_len: usize,
    /// Per-iteration records, in order.
    pub records: Vec<IterationRecord>,
}

impl ExecutionLog {
    /// Creates an empty log.
    pub fn new(dataset: impl Into<String>, population: usize, series_len: usize) -> Self {
        ExecutionLog {
            dataset: dataset.into(),
            population,
            series_len,
            records: Vec::new(),
        }
    }

    /// Appends an iteration record.
    pub fn push(&mut self, record: IterationRecord) {
        self.records.push(record);
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Pretty JSON export (the MongoDB-document analogue).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("log serializes")
    }

    /// Compact per-iteration CSV: one row per iteration with the scalar
    /// columns (centroid matrices are omitted — use JSON for those).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "iteration,epsilon,noise_scale,alive,movement,converged_fraction,noise_impact,\
             gossip_messages,gossip_bytes,crypto_s_per_participant,bytes_per_participant\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                r.iteration,
                r.epsilon,
                r.noise_scale,
                r.alive,
                r.movement,
                r.converged_fraction,
                r.noise_impact,
                r.cost.gossip_messages,
                r.cost.gossip_bytes,
                r.cost.crypto_seconds_per_participant,
                r.cost.bytes_per_participant,
            ));
        }
        out
    }

    /// Total estimated crypto seconds per participant over the whole run.
    pub fn total_crypto_seconds_per_participant(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.cost.crypto_seconds_per_participant)
            .sum()
    }

    /// Total bytes per participant over the whole run.
    pub fn total_bytes_per_participant(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.cost.bytes_per_participant)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: usize) -> IterationRecord {
        IterationRecord {
            iteration: i,
            epsilon: 0.1,
            noise_scale: 10.0,
            alive: 100,
            movement: 1.0 / (i + 1) as f64,
            converged_fraction: 0.0,
            centroids: vec![vec![1.0, 2.0]],
            observer_clean_centroids: vec![vec![1.1, 2.1]],
            noise_impact: 0.1,
            cost: IterationCost {
                crypto_seconds_per_participant: 0.5,
                bytes_per_participant: 100.0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn json_roundtrip() {
        let mut log = ExecutionLog::new("test", 100, 2);
        log.push(record(0));
        log.push(record(1));
        let back: ExecutionLog = serde_json::from_str(&log.to_json()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut log = ExecutionLog::new("test", 100, 2);
        log.push(record(0));
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("iteration,epsilon"));
        assert!(lines[1].starts_with("0,0.1,10,100,"));
    }

    #[test]
    fn totals_accumulate() {
        let mut log = ExecutionLog::new("test", 100, 2);
        log.push(record(0));
        log.push(record(1));
        assert!((log.total_crypto_seconds_per_participant() - 1.0).abs() < 1e-12);
        assert!((log.total_bytes_per_participant() - 200.0).abs() < 1e-12);
    }
}
