//! The distributed computation step (paper §II-B, step 2).
//!
//! Given every live participant's contribution vector (data block + noise
//! block, see [`crate::noise::SlotLayout`]), this module:
//!
//! 2a/2b. gossips the encrypted means and noises (one homomorphic push-sum
//!        over the concatenated vector — both blocks travel together and
//!        therefore experience the *same* mixing weights);
//! 2c.    adds the noise block onto the data block homomorphically at each
//!        participant;
//! 2d.    collaboratively decrypts each participant's perturbed estimate via
//!        threshold partial decryptions.
//!
//! In simulated-crypto mode the identical dataflow runs on plaintext
//! (`cs_gossip::pushsum`) and the homomorphic work is synthesized into the
//! cost counters — the demo's own trick.

use crate::config::{ChiaroscuroConfig, CryptoMode};
use crate::cost::{synthesize_decrypt_ops, synthesize_ops, DecryptionOps};
use crate::error::ChiaroscuroError;
use crate::noise::SlotLayout;
use cs_crypto::threshold::{CombinePlanCache, ThresholdKeyPair};
use cs_crypto::{Ciphertext, FastEncryptor, FixedPointCodec, PackedCodec, PoolBank, PublicKey};
use cs_gossip::homomorphic_pushsum::{HePushSumNode, HomomorphicOpCounts};
use cs_gossip::pushsum::PushSumNode;
use cs_gossip::{Network, TrafficStats};
use cs_obs::phase::{PhaseProfile, StepPhase};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::sync::Arc;
use std::time::Instant;

/// Crypto state shared by all iterations of a run.
pub enum CryptoContext {
    /// Real Damgård-Jurik pipeline.
    Real {
        /// Dealer output: public key + committee key shares.
        tkp: Box<ThresholdKeyPair>,
        /// Shared public key handle.
        pk: Arc<PublicKey>,
        /// Fixed-point codec.
        codec: FixedPointCodec,
        /// Fixed-base fast encryptor — `Some` when ciphertext packing is
        /// enabled ([`ChiaroscuroConfig::packing`]); the per-step lane plan
        /// is derived via [`plan_packed_codec`].
        fast: Option<Arc<FastEncryptor>>,
        /// Per-committee-subset combine plans (Lagrange exponents and the
        /// `(4Δ²)^{-1}` constant), shared across every step of the run.
        plans: Arc<CombinePlanCache>,
        /// Pre-warmed randomizer pools keyed by `(step seed, node)` — a
        /// pure cache (pool contents are a function of the seeds alone), so
        /// drivers can fill it during idle time between steps and the
        /// message-passing substrates pop randomizers instead of paying
        /// fixed-base exponentiations mid-gossip.
        pool_bank: Arc<PoolBank>,
    },
    /// Plaintext pipeline with synthesized cost accounting.
    Simulated {
        /// Ciphertext size used for byte accounting.
        ciphertext_bytes: usize,
    },
}

impl CryptoContext {
    /// Builds the context from the configuration (runs the dealer in real
    /// mode).
    pub fn from_config(
        config: &ChiaroscuroConfig,
        rng: &mut StdRng,
    ) -> Result<Self, ChiaroscuroError> {
        match &config.crypto {
            CryptoMode::Real { keygen } => {
                let tkp = ThresholdKeyPair::generate(keygen, config.threshold, rng)?;
                let pk = Arc::new(tkp.public().clone());
                // The encryptor's generator draws from a *forked* stream:
                // toggling `packing` must not shift the master RNG, so a
                // packed run stays comparable (same initial centroids, same
                // noise) to the unpacked run it is diffed against.
                let fast = config.packing.then(|| {
                    use rand::SeedableRng as _;
                    let mut enc_rng = StdRng::seed_from_u64(config.seed ^ 0xFA57_E6C5_97B1_D003);
                    Arc::new(FastEncryptor::new(pk.clone(), &mut enc_rng))
                });
                Ok(CryptoContext::Real {
                    tkp: Box::new(tkp),
                    pk,
                    codec: FixedPointCodec::new(config.codec_scale_bits),
                    fast,
                    plans: Arc::new(CombinePlanCache::new()),
                    pool_bank: Arc::new(PoolBank::new()),
                })
            }
            CryptoMode::Simulated { cost_profile } => Ok(CryptoContext::Simulated {
                ciphertext_bytes: cost_profile.ciphertext_bytes.max(1),
            }),
        }
    }
}

/// Plans the packed lane layout for one computation step.
///
/// The envelope is **public** protocol metadata only — the population
/// size, the per-participant exchange budget, and a magnitude bound
/// derived from the configured `value_bound` plus the ε-derived noise
/// scale (64× the worst-iteration Laplace scale; a share exceeding that
/// has probability `≈ e^{-64}` and would surface as a typed
/// [`cs_crypto::CryptoError::LaneOverflow`], never a silent wrap). Nothing
/// data-dependent enters the plan, so the ciphertext count on the wire
/// leaks nothing about any participant's values, and every execution
/// substrate — the in-process simulator and the `cs_net` runtime —
/// derives the identical layout from configuration alone.
///
/// The denominator-exponent budget deserves a note: a node's exponent
/// grows by one per *own* split, but `absorb` inherits the peer's
/// exponent, so a split-absorb chain within one exchange round cascades —
/// empirically the population maximum grows by `O(log n)` per round
/// rather than by one. The plan asks for `⌈log₂(n+1)⌉ + 1` per exchange
/// (roughly double
/// the observed cascade) and, when the plaintext space cannot afford that
/// much headroom, clamps down — never below the per-node split count plus
/// margin, below which the run would certainly fail. A schedule that
/// outruns the reserved headroom hits the typed
/// [`cs_crypto::CryptoError::LaneHeadroomExceeded`] at unpack instead of
/// silent lane wrap-around.
pub fn plan_packed_codec(
    config: &ChiaroscuroConfig,
    pk: &PublicKey,
    codec: &FixedPointCodec,
    layout: &SlotLayout,
    population: usize,
) -> Result<PackedCodec, ChiaroscuroError> {
    // Worst per-iteration Laplace scale under the uniform budget split;
    // the 64× tail margin also absorbs moderately front-loaded strategies.
    let noise_scale =
        config.sensitivity(layout.series_len) * config.max_iterations as f64 / config.epsilon;
    let max_abs = config.value_bound.max(1.0) + 64.0 * noise_scale;
    let pop_bits = (usize::BITS - population.leading_zeros()).max(1);
    let ideal = config.gossip_cycles as u32 * (pop_bits + 1) + 8;
    let floor = config.gossip_cycles as u32 + 8;
    let mut k = ideal;
    loop {
        match PackedCodec::plan(*codec, max_abs, population, k, pk.n_s()) {
            Ok(plan) => return Ok(plan),
            Err(e) if k <= floor => return Err(e.into()),
            Err(_) => k -= 1,
        }
    }
}

/// Packs and encrypts one contribution vector: the data block and the noise
/// block are packed *separately* (identical chunking), so the data
/// ciphertext `j` and the noise ciphertext `data_cts + j` share lane
/// positions and protocol step 2c stays a single homomorphic addition per
/// ciphertext pair. Returns the ciphertexts and the encryption count.
pub fn encrypt_packed_contribution<R: rand::Rng + ?Sized>(
    packed: &PackedCodec,
    enc: &FastEncryptor,
    layout: &SlotLayout,
    values: &[f64],
    rng: &mut R,
) -> Result<(Vec<Ciphertext>, u64), ChiaroscuroError> {
    debug_assert_eq!(values.len(), layout.total(), "contribution length");
    let split = layout.noise_offset();
    let mut plaintexts = packed.pack(&values[..split])?;
    plaintexts.extend(packed.pack(&values[split..])?);
    let cipher: Vec<Ciphertext> = plaintexts.iter().map(|m| enc.encrypt(m, rng)).collect();
    let count = cipher.len() as u64;
    Ok((cipher, count))
}

/// One participant's decrypted, perturbed aggregate estimates.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerturbedAggregates {
    /// Per-cluster perturbed sums (`k × series_len`), noise already folded
    /// in.
    pub sums: Vec<Vec<f64>>,
    /// Per-cluster perturbed counts.
    pub counts: Vec<f64>,
}

/// Arranges final per-data-slot perturbed values into per-cluster sums and
/// counts. `slot_value(i)` must return the perturbed value of data slot `i`
/// (noise already folded in, push-sum weight already divided out).
///
/// Shared by every execution substrate — the plaintext simulator, the real
/// homomorphic pipeline, and the `cs_net` message-passing runtime — so the
/// slot→cluster bookkeeping exists exactly once.
pub fn assemble_aggregates(
    layout: &SlotLayout,
    mut slot_value: impl FnMut(usize) -> f64,
) -> PerturbedAggregates {
    let mut sums = vec![vec![0.0; layout.series_len]; layout.k];
    let mut counts = vec![0.0; layout.k];
    for slot in 0..layout.noise_offset() {
        let value = slot_value(slot);
        let j = slot / layout.per_cluster();
        let d = slot % layout.per_cluster();
        if d == layout.series_len {
            counts[j] = value;
        } else {
            sums[j][d] = value;
        }
    }
    PerturbedAggregates { sums, counts }
}

/// Encrypts one contribution vector slot by slot, shipping zero slots as
/// free trivial encryptions (paper step 1: non-selected clusters start as
/// "encryptions of zero-valued time-series"; re-randomization on the first
/// forward blinds them). Returns the ciphertexts and the number of *real*
/// encryptions performed.
pub fn encrypt_contribution<R: rand::Rng + ?Sized>(
    pk: &PublicKey,
    codec: &FixedPointCodec,
    values: &[f64],
    rng: &mut R,
) -> (Vec<Ciphertext>, u64) {
    let mut encryptions = 0u64;
    let cipher = values
        .iter()
        .map(|&v| {
            if v == 0.0 {
                pk.trivial_zero()
            } else {
                encryptions += 1;
                let m = codec.encode(v, pk.n_s()).expect("clamped value fits");
                pk.encrypt(&m, rng)
            }
        })
        .collect();
    (cipher, encryptions)
}

/// Result of one computation step.
#[derive(Clone, Debug)]
pub struct ComputationOutcome {
    /// Per-participant estimates (`None` for participants that were down or
    /// whose push-sum weight vanished).
    pub estimates: Vec<Option<PerturbedAggregates>>,
    /// Homomorphic work performed (or synthesized).
    pub ops: HomomorphicOpCounts,
    /// Decryption work performed (or synthesized).
    pub decrypt_ops: DecryptionOps,
    /// Gossip traffic of this step.
    pub traffic: TrafficStats,
    /// Live participants when the step ended.
    pub alive_after: Vec<bool>,
    /// Population-summed per-phase time (encrypt / gossip / decrypt-share /
    /// combine / unpack). A measurement side channel: estimates, traffic
    /// and op counts never depend on it, so same-seed runs stay
    /// deterministic with profiling on.
    pub phases: PhaseProfile,
}

/// Runs the computation step.
///
/// `contributions[i]` is `Some(vector)` for participants alive at the start
/// of the iteration and `None` for crashed ones (they hold zero weight and
/// contribute nothing, but still occupy a network slot so they can recover
/// mid-step).
pub fn run_computation_step(
    config: &ChiaroscuroConfig,
    layout: &SlotLayout,
    contributions: &[Option<Vec<f64>>],
    crypto: &CryptoContext,
    step_seed: u64,
    rng: &mut StdRng,
) -> Result<ComputationOutcome, ChiaroscuroError> {
    match crypto {
        CryptoContext::Real {
            tkp,
            pk,
            codec,
            fast: Some(enc),
            plans,
            ..
        } => run_real_packed(
            config,
            layout,
            contributions,
            tkp,
            pk.clone(),
            codec,
            enc.clone(),
            plans,
            step_seed,
            rng,
        ),
        CryptoContext::Real {
            tkp,
            pk,
            codec,
            fast: None,
            plans,
            ..
        } => run_real(
            config,
            layout,
            contributions,
            tkp,
            pk.clone(),
            codec,
            plans,
            step_seed,
            rng,
        ),
        CryptoContext::Simulated { ciphertext_bytes } => Ok(run_simulated(
            config,
            layout,
            contributions,
            *ciphertext_bytes,
            step_seed,
        )),
    }
}

/// The packed variant of [`run_real`]: one ciphertext carries a whole lane
/// vector, encryption takes the fixed-base path, and step 2c folds the
/// noise block onto the data block with one addition per ciphertext *pair*
/// instead of per bucket.
#[allow(clippy::too_many_arguments)]
fn run_real_packed(
    config: &ChiaroscuroConfig,
    layout: &SlotLayout,
    contributions: &[Option<Vec<f64>>],
    tkp: &ThresholdKeyPair,
    pk: Arc<PublicKey>,
    codec: &FixedPointCodec,
    enc: Arc<FastEncryptor>,
    plans: &CombinePlanCache,
    step_seed: u64,
    rng: &mut StdRng,
) -> Result<ComputationOutcome, ChiaroscuroError> {
    let packed = plan_packed_codec(config, &pk, codec, layout, contributions.len())?;
    let data_slots = layout.noise_offset();
    let data_cts = packed.ciphertexts_for(data_slots);
    let mut encryptions = 0u64;
    let mut phases = PhaseProfile::default();
    let encrypt_started = Instant::now();
    let mut nodes = Vec::with_capacity(contributions.len());
    for c in contributions {
        let node = match c {
            Some(values) => {
                let (cipher, enc_count) =
                    encrypt_packed_contribution(&packed, &enc, layout, values, rng)?;
                encryptions += enc_count;
                HePushSumNode::from_ciphertexts(pk.clone(), cipher, 1.0, config.rerandomize)
            }
            None => {
                // Down at step start: zero weight, *unbiased* zero lanes —
                // the lane bias must travel exactly with the weight mass.
                let cipher = vec![pk.trivial_zero(); 2 * data_cts];
                HePushSumNode::from_ciphertexts(pk.clone(), cipher, 0.0, config.rerandomize)
            }
        };
        nodes.push(node.with_encryptor(enc.clone()));
    }
    phases.add(
        StepPhase::Encrypt,
        encrypt_started.elapsed().as_nanos() as u64,
    );

    let mut net = Network::new(nodes, config.overlay.clone(), config.failure, step_seed);
    for (i, c) in contributions.iter().enumerate() {
        if c.is_none() {
            net.set_alive(i, false);
        }
    }
    let gossip_started = Instant::now();
    net.run_cycles(config.gossip_cycles);
    phases.add(
        StepPhase::Gossip,
        gossip_started.elapsed().as_nanos() as u64,
    );

    let alive_after: Vec<bool> = (0..net.len()).map(|i| net.is_alive(i)).collect();
    let traffic = net.traffic().clone();
    let (nodes, _) = net.into_parts();

    let mut ops = HomomorphicOpCounts {
        encryptions,
        ..Default::default()
    };
    for n in &nodes {
        ops.merge(&n.op_counts());
    }

    // Steps 2c + 2d, per ciphertext pair instead of per bucket.
    let mut decrypt_ops = DecryptionOps::default();
    let mut estimates = Vec::with_capacity(nodes.len());
    let t = config.threshold.threshold;
    let share_pool: Vec<usize> = (0..tkp.shares().len()).collect();
    for (i, node) in nodes.iter().enumerate() {
        if !alive_after[i] || node.weight() <= f64::MIN_POSITIVE {
            estimates.push(None);
            continue;
        }
        let cipher = node.ciphertexts();
        let mut committee = share_pool.clone();
        committee.shuffle(rng);
        let committee = &committee[..t];

        let mut groups = Vec::with_capacity(data_cts);
        for j in 0..data_cts {
            let fold_started = Instant::now();
            let combined = pk.add(&cipher[j], &cipher[data_cts + j]);
            let share_started = Instant::now();
            phases.add(
                StepPhase::Combine,
                share_started.duration_since(fold_started).as_nanos() as u64,
            );
            ops.additions += 1;
            let partials: Vec<_> = committee
                .iter()
                .map(|&m| tkp.shares()[m].partial_decrypt(&combined))
                .collect();
            phases.add(
                StepPhase::DecryptShare,
                share_started.elapsed().as_nanos() as u64,
            );
            decrypt_ops.partial_decryptions += t as u64;
            groups.push(partials);
        }
        // One cached plan for the committee, one batched inversion for the
        // node's whole ciphertext vector.
        let combine_started = Instant::now();
        let raws = plans.combine_batch(pk.as_ref(), config.threshold, tkp.delta(), &groups)?;
        phases.add(
            StepPhase::Combine,
            combine_started.elapsed().as_nanos() as u64,
        );
        decrypt_ops.combinations += data_cts as u64;
        let unpack_started = Instant::now();
        let values =
            packed.unpack_aggregate(&raws, data_slots, node.denominator_exp(), node.weight(), 2)?;
        phases.add(
            StepPhase::Unpack,
            unpack_started.elapsed().as_nanos() as u64,
        );
        decrypt_ops.messages += 2 * t as u64;
        decrypt_ops.bytes += 2 * (t * data_cts * pk.ciphertext_bytes()) as u64;
        estimates.push(Some(assemble_aggregates(layout, |slot| values[slot])));
    }

    Ok(ComputationOutcome {
        estimates,
        ops,
        decrypt_ops,
        traffic,
        alive_after,
        phases,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_real(
    config: &ChiaroscuroConfig,
    layout: &SlotLayout,
    contributions: &[Option<Vec<f64>>],
    tkp: &ThresholdKeyPair,
    pk: Arc<PublicKey>,
    codec: &FixedPointCodec,
    plans: &CombinePlanCache,
    step_seed: u64,
    rng: &mut StdRng,
) -> Result<ComputationOutcome, ChiaroscuroError> {
    let mut encryptions = 0u64;
    let mut phases = PhaseProfile::default();
    let encrypt_started = Instant::now();
    let nodes: Vec<HePushSumNode> = contributions
        .iter()
        .map(|c| match c {
            Some(values) => {
                let (cipher, enc) = encrypt_contribution(pk.as_ref(), codec, values, rng);
                encryptions += enc;
                HePushSumNode::from_ciphertexts(pk.clone(), cipher, 1.0, config.rerandomize)
            }
            None => {
                let cipher = vec![pk.trivial_zero(); layout.total()];
                HePushSumNode::from_ciphertexts(pk.clone(), cipher, 0.0, config.rerandomize)
            }
        })
        .collect();
    phases.add(
        StepPhase::Encrypt,
        encrypt_started.elapsed().as_nanos() as u64,
    );

    let mut net = Network::new(nodes, config.overlay.clone(), config.failure, step_seed);
    // Crashed participants stay down at step start.
    for (i, c) in contributions.iter().enumerate() {
        if c.is_none() {
            net.set_alive(i, false);
        }
    }
    let gossip_started = Instant::now();
    net.run_cycles(config.gossip_cycles);
    phases.add(
        StepPhase::Gossip,
        gossip_started.elapsed().as_nanos() as u64,
    );

    let alive_after: Vec<bool> = (0..net.len()).map(|i| net.is_alive(i)).collect();
    let traffic = net.traffic().clone();
    let (nodes, _) = net.into_parts();

    let mut ops = HomomorphicOpCounts {
        encryptions,
        ..Default::default()
    };
    for n in &nodes {
        ops.merge(&n.op_counts());
    }

    // Steps 2c + 2d per participant: fold noise into data homomorphically,
    // then threshold-decrypt the combined slots.
    let data_slots = layout.noise_offset();
    let mut decrypt_ops = DecryptionOps::default();
    let mut estimates = Vec::with_capacity(nodes.len());
    let t = config.threshold.threshold;
    let share_pool: Vec<usize> = (0..tkp.shares().len()).collect();
    for (i, node) in nodes.iter().enumerate() {
        if !alive_after[i] || node.weight() <= f64::MIN_POSITIVE {
            estimates.push(None);
            continue;
        }
        let weight = node.weight();
        let denom = node.denominator_exp();
        let cipher = node.ciphertexts();
        // Random committee subset for this participant's decryption.
        let mut committee = share_pool.clone();
        committee.shuffle(rng);
        let committee = &committee[..t];

        let mut groups = Vec::with_capacity(data_slots);
        for slot in 0..data_slots {
            // 2c: local addition of the encrypted noise to the encrypted mean.
            let fold_started = Instant::now();
            let combined = pk.add(&cipher[slot], &cipher[layout.noise_slot(slot)]);
            let share_started = Instant::now();
            phases.add(
                StepPhase::Combine,
                share_started.duration_since(fold_started).as_nanos() as u64,
            );
            ops.additions += 1;
            // 2d: collaborative decryption — shares here, combine batched
            // below under this committee's cached plan.
            let partials: Vec<_> = committee
                .iter()
                .map(|&m| tkp.shares()[m].partial_decrypt(&combined))
                .collect();
            phases.add(
                StepPhase::DecryptShare,
                share_started.elapsed().as_nanos() as u64,
            );
            decrypt_ops.partial_decryptions += t as u64;
            groups.push(partials);
        }
        let combine_started = Instant::now();
        let raws = plans.combine_batch(pk.as_ref(), config.threshold, tkp.delta(), &groups)?;
        phases.add(
            StepPhase::Combine,
            combine_started.elapsed().as_nanos() as u64,
        );
        decrypt_ops.combinations += data_slots as u64;
        let est = assemble_aggregates(layout, |slot| {
            codec.decode(&raws[slot], pk.n_s(), denom) / weight
        });
        decrypt_ops.messages += 2 * t as u64;
        decrypt_ops.bytes += 2 * (t * data_slots * pk.ciphertext_bytes()) as u64;
        estimates.push(Some(est));
    }

    Ok(ComputationOutcome {
        estimates,
        ops,
        decrypt_ops,
        traffic,
        alive_after,
        phases,
    })
}

fn run_simulated(
    config: &ChiaroscuroConfig,
    layout: &SlotLayout,
    contributions: &[Option<Vec<f64>>],
    ciphertext_bytes: usize,
    step_seed: u64,
) -> ComputationOutcome {
    let nodes: Vec<PushSumNode> = contributions
        .iter()
        .map(|c| match c {
            Some(values) => PushSumNode::new(values.clone(), 1.0),
            None => PushSumNode::new(vec![0.0; layout.total()], 0.0),
        })
        .collect();
    let mut net = Network::new(nodes, config.overlay.clone(), config.failure, step_seed);
    for (i, c) in contributions.iter().enumerate() {
        if c.is_none() {
            net.set_alive(i, false);
        }
    }
    let mut phases = PhaseProfile::default();
    let gossip_started = Instant::now();
    net.run_cycles(config.gossip_cycles);
    phases.add(
        StepPhase::Gossip,
        gossip_started.elapsed().as_nanos() as u64,
    );

    let alive_after: Vec<bool> = (0..net.len()).map(|i| net.is_alive(i)).collect();
    // Bytes on the wire are ciphertext-sized even though we simulate — the
    // plaintext push-sum already recorded 8-byte-per-slot messages, so the
    // traffic is rescaled to ciphertext size.
    let mut traffic = net.traffic().clone();
    let scale = ciphertext_bytes as f64 / 8.0;
    traffic.bytes = (traffic.bytes as f64 * scale) as u64;
    let (nodes, _) = net.into_parts();

    let data_slots = layout.noise_offset();
    let mut estimates = Vec::with_capacity(nodes.len());
    let mut decryptors = 0usize;
    let combine_started = Instant::now();
    for (i, node) in nodes.iter().enumerate() {
        if !alive_after[i] {
            estimates.push(None);
            continue;
        }
        match node.estimate() {
            Some(est) => {
                decryptors += 1;
                estimates.push(Some(assemble_aggregates(layout, |slot| {
                    est[slot] + est[layout.noise_slot(slot)]
                })));
            }
            None => estimates.push(None),
        }
    }
    phases.add(
        StepPhase::Combine,
        combine_started.elapsed().as_nanos() as u64,
    );

    let participants = contributions.iter().filter(|c| c.is_some()).count();
    let ops = synthesize_ops(
        layout.k,
        layout.series_len,
        participants,
        traffic.messages,
        config.rerandomize,
    );
    let decrypt_ops = synthesize_decrypt_ops(
        decryptors,
        data_slots,
        config.threshold.threshold,
        ciphertext_bytes,
    );

    ComputationOutcome {
        estimates,
        ops,
        decrypt_ops,
        traffic,
        alive_after,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::contribution_vector;
    use cs_dp::NoiseShareGenerator;
    use rand::SeedableRng;

    fn layout() -> SlotLayout {
        SlotLayout {
            k: 2,
            series_len: 3,
        }
    }

    /// Builds contributions for a tiny 2-cluster population with negligible
    /// noise so estimates are checkable.
    fn tiny_contributions(n: usize, rng: &mut StdRng) -> Vec<Option<Vec<f64>>> {
        let layout = layout();
        let shares = NoiseShareGenerator::new(n, 1e-9);
        (0..n)
            .map(|i| {
                let series = if i % 2 == 0 {
                    [1.0, 2.0, 3.0]
                } else {
                    [10.0, 10.0, 10.0]
                };
                Some(contribution_vector(&layout, &series, i % 2, &shares, rng))
            })
            .collect()
    }

    fn check_estimates(outcome: &ComputationOutcome, n: usize) {
        let produced = outcome.estimates.iter().flatten().count();
        assert!(produced > n / 2, "most nodes should produce estimates");
        for est in outcome.estimates.iter().flatten() {
            // Ratio sums/counts recovers the cluster means: cluster 0 →
            // [1,2,3], cluster 1 → [10,10,10]. Gossip error tolerance wide.
            for d in 0..3 {
                let mean0 = est.sums[0][d] / est.counts[0];
                let mean1 = est.sums[1][d] / est.counts[1];
                let want0 = [1.0, 2.0, 3.0][d];
                assert!(
                    (mean0 - want0).abs() < 0.3,
                    "cluster0 dim{d}: {mean0} vs {want0}"
                );
                assert!((mean1 - 10.0).abs() < 0.5, "cluster1 dim{d}: {mean1}");
            }
        }
    }

    #[test]
    fn simulated_step_recovers_means() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = ChiaroscuroConfig {
            k: 2,
            gossip_cycles: 30,
            ..ChiaroscuroConfig::demo_simulated()
        };
        let contributions = tiny_contributions(16, &mut rng);
        let crypto = CryptoContext::from_config(&config, &mut rng).unwrap();
        let outcome =
            run_computation_step(&config, &layout(), &contributions, &crypto, 7, &mut rng).unwrap();
        check_estimates(&outcome, 16);
        assert!(outcome.ops.encryptions > 0, "synthesized encryption counts");
        assert!(outcome.traffic.messages > 0);
    }

    #[test]
    fn real_step_recovers_means() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = ChiaroscuroConfig {
            k: 2,
            gossip_cycles: 15,
            ..ChiaroscuroConfig::test_real()
        };
        let contributions = tiny_contributions(8, &mut rng);
        let crypto = CryptoContext::from_config(&config, &mut rng).unwrap();
        let outcome =
            run_computation_step(&config, &layout(), &contributions, &crypto, 8, &mut rng).unwrap();
        check_estimates(&outcome, 8);
        assert!(outcome.decrypt_ops.partial_decryptions > 0);
        assert!(outcome.ops.additions > 0);
    }

    #[test]
    fn real_and_simulated_agree() {
        // Same contributions, same topology seeds: the two modes must give
        // near-identical estimates (fixed-point granularity apart).
        let mut rng = StdRng::seed_from_u64(3);
        let contributions = tiny_contributions(8, &mut rng);

        // Re-randomization draws from the shared simulation RNG, which would
        // desynchronize the real and simulated gossip schedules — turn it
        // off so both runs see identical pairings.
        let mut cfg_real = ChiaroscuroConfig::test_real();
        cfg_real.k = 2;
        cfg_real.gossip_cycles = 10;
        cfg_real.rerandomize = false;
        let mut rng_real = StdRng::seed_from_u64(4);
        let crypto_real = CryptoContext::from_config(&cfg_real, &mut rng_real).unwrap();
        let real = run_computation_step(
            &cfg_real,
            &layout(),
            &contributions,
            &crypto_real,
            99,
            &mut rng_real,
        )
        .unwrap();

        let mut cfg_sim = ChiaroscuroConfig::demo_simulated();
        cfg_sim.k = 2;
        cfg_sim.gossip_cycles = 10;
        let mut rng_sim = StdRng::seed_from_u64(5);
        let crypto_sim = CryptoContext::from_config(&cfg_sim, &mut rng_sim).unwrap();
        let sim = run_computation_step(
            &cfg_sim,
            &layout(),
            &contributions,
            &crypto_sim,
            99,
            &mut rng_sim,
        )
        .unwrap();

        for (r, s) in real.estimates.iter().zip(&sim.estimates) {
            let (Some(r), Some(s)) = (r, s) else { continue };
            for j in 0..2 {
                assert!((r.counts[j] - s.counts[j]).abs() < 1e-3);
                for d in 0..3 {
                    assert!(
                        (r.sums[j][d] - s.sums[j][d]).abs() < 1e-3,
                        "cluster {j} dim {d}: {} vs {}",
                        r.sums[j][d],
                        s.sums[j][d]
                    );
                }
            }
        }
    }

    #[test]
    fn packed_real_step_recovers_means() {
        let mut rng = StdRng::seed_from_u64(21);
        let config = ChiaroscuroConfig {
            k: 2,
            gossip_cycles: 15,
            packing: true,
            ..ChiaroscuroConfig::test_real()
        };
        let contributions = tiny_contributions(8, &mut rng);
        let crypto = CryptoContext::from_config(&config, &mut rng).unwrap();
        assert!(matches!(&crypto, CryptoContext::Real { fast: Some(_), .. }));
        let outcome =
            run_computation_step(&config, &layout(), &contributions, &crypto, 8, &mut rng).unwrap();
        check_estimates(&outcome, 8);
        assert!(outcome.decrypt_ops.partial_decryptions > 0);
        // 8 data slots pack into far fewer ciphertexts than 8 per node.
        let unpacked_min = 8 * 8; // nodes × data slots, if unpacked
        assert!(
            outcome.decrypt_ops.combinations < unpacked_min as u64,
            "combinations {} should shrink under packing",
            outcome.decrypt_ops.combinations
        );
    }

    #[test]
    fn packed_and_unpacked_real_steps_agree() {
        // Same contributions, same topology seed: packed and unpacked real
        // pipelines must produce near-identical estimates. Re-randomization
        // off so both consume the shared RNG identically.
        let mut rng = StdRng::seed_from_u64(23);
        let contributions = tiny_contributions(8, &mut rng);

        let mut cfg = ChiaroscuroConfig::test_real();
        cfg.k = 2;
        cfg.gossip_cycles = 10;
        cfg.rerandomize = false;

        let mut cfg_packed = cfg.clone();
        cfg_packed.packing = true;

        let mut rng_a = StdRng::seed_from_u64(24);
        let crypto_a = CryptoContext::from_config(&cfg, &mut rng_a).unwrap();
        let plain =
            run_computation_step(&cfg, &layout(), &contributions, &crypto_a, 99, &mut rng_a)
                .unwrap();

        let mut rng_b = StdRng::seed_from_u64(24);
        let crypto_b = CryptoContext::from_config(&cfg_packed, &mut rng_b).unwrap();
        let packed = run_computation_step(
            &cfg_packed,
            &layout(),
            &contributions,
            &crypto_b,
            99,
            &mut rng_b,
        )
        .unwrap();

        for (p, u) in packed.estimates.iter().zip(&plain.estimates) {
            let (Some(p), Some(u)) = (p, u) else { continue };
            for j in 0..2 {
                assert!((p.counts[j] - u.counts[j]).abs() < 1e-3);
                for d in 0..3 {
                    assert!(
                        (p.sums[j][d] - u.sums[j][d]).abs() < 1e-3,
                        "cluster {j} dim {d}: {} vs {}",
                        p.sums[j][d],
                        u.sums[j][d]
                    );
                }
            }
        }
    }

    #[test]
    fn lane_plan_is_feasible_on_the_default_real_config() {
        // Regression: the ideal cascade budget exceeds the 256-bit test
        // plaintext space at the default 30 gossip cycles — the plan must
        // clamp the reserved headroom, not refuse the run.
        let mut rng = StdRng::seed_from_u64(31);
        let config = ChiaroscuroConfig {
            packing: true,
            gossip_cycles: 30, // demo-scale exchange budget on test-size keys
            ..ChiaroscuroConfig::test_real()
        };
        let crypto = CryptoContext::from_config(&config, &mut rng).unwrap();
        let CryptoContext::Real { pk, codec, .. } = &crypto else {
            panic!("real mode");
        };
        for population in [2usize, 8, 64, 1000] {
            let plan = plan_packed_codec(&config, pk, codec, &layout(), population)
                .unwrap_or_else(|e| panic!("population {population}: {e}"));
            assert!(plan.lanes() >= 1);
            // Never below the per-node split count plus margin.
            assert!(
                plan.headroom_bits() as usize > config.gossip_cycles,
                "headroom {} cannot cover the node's own splits",
                plan.headroom_bits()
            );
        }
    }

    #[test]
    fn dead_participants_get_no_estimates_and_contribute_nothing() {
        let mut rng = StdRng::seed_from_u64(6);
        let config = ChiaroscuroConfig {
            k: 2,
            gossip_cycles: 25,
            ..ChiaroscuroConfig::demo_simulated()
        };
        let mut contributions = tiny_contributions(12, &mut rng);
        contributions[3] = None;
        contributions[7] = None;
        let crypto = CryptoContext::from_config(&config, &mut rng).unwrap();
        let outcome =
            run_computation_step(&config, &layout(), &contributions, &crypto, 11, &mut rng)
                .unwrap();
        assert!(outcome.estimates[3].is_none());
        assert!(outcome.estimates[7].is_none());
        // Counts must reflect 10 contributors, not 12.
        let est = outcome.estimates[0].as_ref().unwrap();
        let total: f64 = est.counts.iter().sum();
        assert!((total - 1.0).abs() < 0.1, "normalized count sum {total}");
    }
}
