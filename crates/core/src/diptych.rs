//! The Diptych data structure.
//!
//! "The resulting data structure consists thus of the perturbed centroids on
//! one side and of the encrypted means on the other side; it is called
//! Diptych and is key to the execution sequence" (paper §II-B).
//!
//! The *cleartext side* ([`Diptych`]) is what a participant may look at:
//! differentially-private centroids plus the iteration tag that lets late
//! participants synchronize. The *encrypted side* is transient — it lives in
//! the gossip layer during the computation step (`cs_gossip::
//! homomorphic_pushsum`) and never reaches cleartext until noise has been
//! added and the threshold decryption has run.

use cs_timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// The cleartext side of a participant's Diptych.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Diptych {
    /// Iteration these centroids belong to (the synchronization tag:
    /// exchanges carry it so "the late participants simply synchronize on
    /// the latest iteration").
    pub iteration: u64,
    /// The k perturbed centroids.
    pub centroids: Vec<TimeSeries>,
}

impl Diptych {
    /// Creates the iteration-0 diptych from initial centroids.
    pub fn initial(centroids: Vec<TimeSeries>) -> Self {
        assert!(!centroids.is_empty(), "need at least one centroid");
        Diptych {
            iteration: 0,
            centroids,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Advances to the next iteration with new perturbed centroids.
    ///
    /// Panics if the cluster count changes — the Diptych's shape is fixed
    /// for a run.
    pub fn advance(&mut self, new_centroids: Vec<TimeSeries>) {
        assert_eq!(new_centroids.len(), self.k(), "cluster count is fixed");
        self.centroids = new_centroids;
        self.iteration += 1;
    }

    /// Late-participant synchronization: adopt `other` if it is ahead.
    /// Returns `true` if this diptych changed.
    pub fn sync_with(&mut self, other: &Diptych) -> bool {
        if other.iteration > self.iteration {
            self.iteration = other.iteration;
            self.centroids = other.centroids.clone();
            true
        } else {
            false
        }
    }

    /// Summed Euclidean displacement to another centroid set (the
    /// convergence-step measure).
    pub fn movement_to(&self, new_centroids: &[TimeSeries]) -> f64 {
        assert_eq!(new_centroids.len(), self.k());
        self.centroids
            .iter()
            .zip(new_centroids)
            .map(|(a, b)| cs_timeseries::Distance::Euclidean.compute(a, b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec())
    }

    #[test]
    fn advance_increments_iteration() {
        let mut d = Diptych::initial(vec![ts(&[0.0]), ts(&[1.0])]);
        assert_eq!(d.iteration, 0);
        d.advance(vec![ts(&[0.5]), ts(&[1.5])]);
        assert_eq!(d.iteration, 1);
        assert_eq!(d.k(), 2);
    }

    #[test]
    fn sync_adopts_only_newer() {
        let mut behind = Diptych::initial(vec![ts(&[0.0])]);
        let mut ahead = Diptych::initial(vec![ts(&[9.0])]);
        ahead.advance(vec![ts(&[10.0])]);
        assert!(behind.sync_with(&ahead));
        assert_eq!(behind.iteration, 1);
        assert_eq!(behind.centroids[0], ts(&[10.0]));
        // Re-sync with an older diptych is a no-op.
        let old = Diptych::initial(vec![ts(&[0.0])]);
        assert!(!behind.sync_with(&old));
        assert_eq!(behind.centroids[0], ts(&[10.0]));
    }

    #[test]
    fn movement_measure() {
        let d = Diptych::initial(vec![ts(&[0.0, 0.0])]);
        assert_eq!(d.movement_to(&[ts(&[3.0, 4.0])]), 5.0);
    }

    #[test]
    #[should_panic(expected = "cluster count is fixed")]
    fn shape_change_panics() {
        let mut d = Diptych::initial(vec![ts(&[0.0])]);
        d.advance(vec![ts(&[0.0]), ts(&[1.0])]);
    }
}
