//! # chiaroscuro — privacy-preserving clustering of massively distributed
//! personal time-series
//!
//! A from-scratch Rust reproduction of **Chiaroscuro** (Allard, Hébrail,
//! Masseglia, Pacitti — ICDE 2016 demonstration; SIGMOD 2015 full paper):
//! k-means over time-series held by a large population of honest-but-curious
//! personal devices, with
//!
//! * a **Diptych** data structure ([`diptych`]) separating the cleartext
//!   side (differentially-private centroids) from the encrypted side
//!   (additively homomorphic means);
//! * a fully decentralized **gossip computation step** ([`rounds`]) running
//!   push-sum over Damgård-Jurik ciphertexts, with per-participant Laplace
//!   **noise shares** ([`noise`]) folded in before **threshold decryption**;
//! * **quality-enhancing heuristics**: privacy-budget distribution
//!   strategies (`cs_dp::budget`) and perturbed-mean smoothing
//!   (`cs_timeseries::smooth`);
//! * cost accounting in the demo's own style ([`cost`]) and a structured
//!   execution log ([`log`]) from which every demo graph derives;
//! * a pluggable **computation-step substrate** ([`backend`]): the default
//!   in-process cycle simulator, or a real message-passing transport via
//!   the `cs_net` crate's `NetBackend`.
#![doc = include_str!("../../../docs/quickstart.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod cost;
pub mod diptych;
pub mod engine;
mod error;
pub mod log;
pub mod noise;
pub mod participant;
pub mod quality;
pub mod rounds;
pub mod termination;

pub use backend::{ComputationBackend, SimulatorBackend, TracedBackend};
pub use config::{ChiaroscuroConfig, CryptoMode};
pub use diptych::Diptych;
pub use engine::{Engine, RunOutput};
pub use error::ChiaroscuroError;
pub use log::{ExecutionLog, IterationRecord};
pub use participant::Participant;
pub use quality::{compare_with_baseline, QualityReport};
pub use termination::{Termination, TerminationMonitor};
