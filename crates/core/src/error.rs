//! Error type for protocol runs.

use cs_crypto::CryptoError;
use cs_dp::AccountantError;
use std::fmt;

/// Errors surfaced by the Chiaroscuro engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ChiaroscuroError {
    /// Configuration failed validation.
    InvalidConfig(String),
    /// Fewer series than clusters, or an empty dataset.
    NotEnoughData {
        /// Series supplied.
        series: usize,
        /// Clusters requested.
        k: usize,
    },
    /// A cryptographic operation failed.
    Crypto(CryptoError),
    /// A network substrate failed below the protocol layer (socket bind,
    /// peer handshake, cluster bootstrap, broken control channel).
    Transport(String),
    /// The privacy budget was exhausted before convergence *and* before the
    /// iteration cap (should not happen with a consistent budget plan).
    BudgetExhausted(AccountantError),
}

impl fmt::Display for ChiaroscuroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChiaroscuroError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ChiaroscuroError::NotEnoughData { series, k } => {
                write!(f, "need at least k={k} series, got {series}")
            }
            ChiaroscuroError::Crypto(e) => write!(f, "crypto error: {e}"),
            ChiaroscuroError::Transport(msg) => write!(f, "transport error: {msg}"),
            ChiaroscuroError::BudgetExhausted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ChiaroscuroError {}

impl From<CryptoError> for ChiaroscuroError {
    fn from(e: CryptoError) -> Self {
        ChiaroscuroError::Crypto(e)
    }
}

impl From<AccountantError> for ChiaroscuroError {
    fn from(e: AccountantError) -> Self {
        ChiaroscuroError::BudgetExhausted(e)
    }
}
