//! Per-participant noise share vectors for one computation step.
//!
//! Implements paper step 2b's payload: each participant generates, for every
//! disclosed slot (k clusters × (series_len + 1) coordinates), one additive
//! noise share such that the *sum over the population* of shares is a
//! Laplace variable calibrated to the iteration's ε slice.

use cs_dp::NoiseShareGenerator;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Slot layout of one computation step's aggregate vector.
///
/// The first half holds the data aggregates, cluster by cluster (series sums
/// then the member count); the second half holds the matching noise
/// aggregates — mirroring the paper's separate "gossip computation of the
/// encrypted means" (2a) and "of the encrypted noises" (2b), merged slotwise
/// in step 2c.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotLayout {
    /// Number of clusters.
    pub k: usize,
    /// Series length.
    pub series_len: usize,
}

impl SlotLayout {
    /// Slots per cluster: the series coordinates plus the count.
    pub fn per_cluster(&self) -> usize {
        self.series_len + 1
    }

    /// Data slot of coordinate `d` of cluster `j`.
    pub fn data_slot(&self, j: usize, d: usize) -> usize {
        debug_assert!(j < self.k && d < self.series_len);
        j * self.per_cluster() + d
    }

    /// Count slot of cluster `j`.
    pub fn count_slot(&self, j: usize) -> usize {
        debug_assert!(j < self.k);
        j * self.per_cluster() + self.series_len
    }

    /// Offset of the noise block.
    pub fn noise_offset(&self) -> usize {
        self.k * self.per_cluster()
    }

    /// Noise slot matching data slot `i`.
    pub fn noise_slot(&self, i: usize) -> usize {
        debug_assert!(i < self.noise_offset());
        self.noise_offset() + i
    }

    /// Total slots (data + noise blocks).
    pub fn total(&self) -> usize {
        2 * self.k * self.per_cluster()
    }
}

/// Builds one participant's full contribution vector (data block + noise
/// block) in cleartext. The caller encrypts it (real mode) or feeds it to
/// the plaintext push-sum (simulated mode).
///
/// * `series` — the participant's clamped series values;
/// * `cluster` — the cluster this participant assigned itself to;
/// * `shares` — generator calibrated to (population, iteration noise scale).
pub fn contribution_vector<R: Rng + ?Sized>(
    layout: &SlotLayout,
    series: &[f64],
    cluster: usize,
    shares: &NoiseShareGenerator,
    rng: &mut R,
) -> Vec<f64> {
    assert_eq!(series.len(), layout.series_len, "series length mismatch");
    assert!(cluster < layout.k, "cluster out of range");
    let mut v = vec![0.0; layout.total()];
    for (d, &x) in series.iter().enumerate() {
        v[layout.data_slot(cluster, d)] = x;
    }
    v[layout.count_slot(cluster)] = 1.0;
    for i in 0..layout.noise_offset() {
        v[layout.noise_slot(i)] = shares.sample_share(rng);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layout_indexing_is_disjoint_and_complete() {
        let layout = SlotLayout {
            k: 3,
            series_len: 4,
        };
        assert_eq!(layout.total(), 30);
        let mut seen = vec![false; layout.total()];
        for j in 0..3 {
            for d in 0..4 {
                let i = layout.data_slot(j, d);
                assert!(!seen[i]);
                seen[i] = true;
                let ni = layout.noise_slot(i);
                assert!(!seen[ni]);
                seen[ni] = true;
            }
            let c = layout.count_slot(j);
            assert!(!seen[c]);
            seen[c] = true;
            let nc = layout.noise_slot(c);
            assert!(!seen[nc]);
            seen[nc] = true;
        }
        assert!(seen.iter().all(|&s| s), "every slot is addressed");
    }

    #[test]
    fn contribution_places_series_and_count() {
        let layout = SlotLayout {
            k: 2,
            series_len: 3,
        };
        let shares = NoiseShareGenerator::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let v = contribution_vector(&layout, &[1.0, 2.0, 3.0], 1, &shares, &mut rng);
        // Cluster 0 data block all zero:
        assert_eq!(v[layout.data_slot(0, 0)], 0.0);
        assert_eq!(v[layout.count_slot(0)], 0.0);
        // Cluster 1 holds the series and the indicator:
        assert_eq!(v[layout.data_slot(1, 0)], 1.0);
        assert_eq!(v[layout.data_slot(1, 2)], 3.0);
        assert_eq!(v[layout.count_slot(1)], 1.0);
    }

    #[test]
    fn noise_block_filled_everywhere() {
        let layout = SlotLayout {
            k: 2,
            series_len: 3,
        };
        let shares = NoiseShareGenerator::new(10, 5.0);
        let mut rng = StdRng::seed_from_u64(2);
        let v = contribution_vector(&layout, &[0.0; 3], 0, &shares, &mut rng);
        let nonzero_noise = (0..layout.noise_offset())
            .filter(|&i| v[layout.noise_slot(i)] != 0.0)
            .count();
        assert_eq!(nonzero_noise, 8, "every noise slot gets a share");
    }

    #[test]
    fn summed_contributions_reconstruct_cluster_sums() {
        // Three participants, two clusters: the slot-wise sum of their
        // contributions must be (cluster sums, counts, total noise).
        let layout = SlotLayout {
            k: 2,
            series_len: 2,
        };
        let shares = NoiseShareGenerator::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let a = contribution_vector(&layout, &[1.0, 2.0], 0, &shares, &mut rng);
        let b = contribution_vector(&layout, &[3.0, 4.0], 0, &shares, &mut rng);
        let c = contribution_vector(&layout, &[5.0, 6.0], 1, &shares, &mut rng);
        let sum: Vec<f64> = (0..layout.total()).map(|i| a[i] + b[i] + c[i]).collect();
        assert_eq!(sum[layout.data_slot(0, 0)], 4.0);
        assert_eq!(sum[layout.data_slot(0, 1)], 6.0);
        assert_eq!(sum[layout.count_slot(0)], 2.0);
        assert_eq!(sum[layout.data_slot(1, 1)], 6.0);
        assert_eq!(sum[layout.count_slot(1)], 1.0);
    }

    #[test]
    #[should_panic(expected = "cluster out of range")]
    fn bad_cluster_panics() {
        let layout = SlotLayout {
            k: 2,
            series_len: 1,
        };
        let shares = NoiseShareGenerator::new(2, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        contribution_vector(&layout, &[0.0], 5, &shares, &mut rng);
    }
}
