//! Execution-substrate abstraction for the computation step.
//!
//! The engine's iteration loop (assignment → computation → convergence) is
//! substrate-independent: only paper step 2 — the distributed gossip
//! aggregation, noise folding, and collaborative decryption — touches a
//! network. [`ComputationBackend`] isolates that step so `Engine::run` can
//! execute over the in-process cycle simulator (the default, Peersim-style)
//! or over a real message-passing runtime (`cs_net`'s thread-per-node
//! transport, or its sharded virtual-time executor for 10k+ virtual nodes)
//! without the protocol logic forking.

use crate::config::ChiaroscuroConfig;
use crate::error::ChiaroscuroError;
use crate::noise::SlotLayout;
use crate::rounds::{run_computation_step, ComputationOutcome, CryptoContext};
use cs_obs::{CausalTracer, TraceContext, Tracer};
use rand::rngs::StdRng;
use std::sync::Arc;

/// An execution substrate for the distributed computation step.
///
/// Implementations receive every live participant's cleartext contribution
/// vector and must return per-participant perturbed aggregate estimates plus
/// the cost counters the engine logs. `contributions[i]` is `None` for
/// participants that were down at the start of the iteration.
pub trait ComputationBackend {
    /// Short human-readable substrate name (log/debug output).
    fn label(&self) -> &'static str;

    /// Runs one computation step (paper steps 2a–2d).
    ///
    /// `step_seed` is the engine's per-iteration seed for the substrate's
    /// own randomness (topology, pacing, loss); `rng` is the engine's master
    /// RNG for draws that must stay on the shared deterministic stream
    /// (committee sampling in the default backend).
    fn run_step(
        &mut self,
        config: &ChiaroscuroConfig,
        layout: &SlotLayout,
        contributions: &[Option<Vec<f64>>],
        crypto: &CryptoContext,
        step_seed: u64,
        rng: &mut StdRng,
    ) -> Result<ComputationOutcome, ChiaroscuroError>;
}

/// The default substrate: the in-process cycle-driven gossip simulator
/// (`cs_gossip::Network`), byte-for-byte the behavior `Engine::run` always
/// had.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimulatorBackend;

impl ComputationBackend for SimulatorBackend {
    fn label(&self) -> &'static str {
        "cycle-simulator"
    }

    fn run_step(
        &mut self,
        config: &ChiaroscuroConfig,
        layout: &SlotLayout,
        contributions: &[Option<Vec<f64>>],
        crypto: &CryptoContext,
        step_seed: u64,
        rng: &mut StdRng,
    ) -> Result<ComputationOutcome, ChiaroscuroError> {
        run_computation_step(config, layout, contributions, crypto, step_seed, rng)
    }
}

/// Wraps any backend with coarse causal tracing: one `step.start` /
/// `step.done` span pair per computation step, trace id = step seed.
///
/// The in-process simulators (cycle-driven and event-driven) execute a
/// whole step inside one call, so — unlike the message-passing substrates,
/// which trace per node — the wrapper records the substrate as a single
/// actor. The resulting trace segments cleanly under
/// [`cs_obs::critical::analyze`] (one participant per round) and lines a
/// simulator run up against cluster timelines in the same tooling.
pub struct TracedBackend<B> {
    inner: B,
    tracer: Arc<Tracer>,
    actor: u64,
}

impl<B: ComputationBackend> TracedBackend<B> {
    /// Wraps `inner`, recording into `tracer` as `actor`.
    pub fn new(inner: B, tracer: Arc<Tracer>, actor: u64) -> Self {
        TracedBackend {
            inner,
            tracer,
            actor,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: ComputationBackend> ComputationBackend for TracedBackend<B> {
    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn run_step(
        &mut self,
        config: &ChiaroscuroConfig,
        layout: &SlotLayout,
        contributions: &[Option<Vec<f64>>],
        crypto: &CryptoContext,
        step_seed: u64,
        rng: &mut StdRng,
    ) -> Result<ComputationOutcome, ChiaroscuroError> {
        let mut causal = CausalTracer::new(
            self.tracer.clone(),
            step_seed,
            self.actor,
            TraceContext::NONE,
        );
        let result = self
            .inner
            .run_step(config, layout, contributions, crypto, step_seed, rng);
        let completed = result
            .as_ref()
            .map(|o| u64::from(o.estimates.iter().any(Option::is_some)))
            .unwrap_or(0);
        causal.mark("step.done", &[("completed", completed)]);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_obs::{Clock, NodeTrace, VirtualClock};

    #[test]
    fn simulator_backend_is_the_default_substrate() {
        assert_eq!(SimulatorBackend.label(), "cycle-simulator");
    }

    #[test]
    fn traced_backend_records_one_round_per_engine_iteration() {
        let series: Vec<cs_timeseries::TimeSeries> = (0..12)
            .map(|i| cs_timeseries::TimeSeries::new(vec![(i % 3) as f64; 8]))
            .collect();
        let mut cfg = crate::config::ChiaroscuroConfig::demo_simulated();
        cfg.k = 2;
        cfg.max_iterations = 3;
        let tracer = Arc::new(Tracer::new(Arc::new(VirtualClock::new()) as Arc<dyn Clock>));
        let mut backend = TracedBackend::new(SimulatorBackend, tracer.clone(), 0);
        let out = crate::engine::Engine::new(cfg)
            .unwrap()
            .run_with_backend(&series, &mut backend)
            .unwrap();
        assert_eq!(backend.inner().label(), "cycle-simulator");

        let trace = NodeTrace::capture(0, &tracer);
        let starts = trace
            .events
            .iter()
            .filter(|e| e.name == "step.start")
            .count();
        let dones = trace
            .events
            .iter()
            .filter(|e| e.name == "step.done")
            .count();
        assert_eq!(starts, out.iterations, "one span pair per computation step");
        assert_eq!(dones, out.iterations);

        // The coarse trace segments under the same critical-path analyzer
        // as the per-node substrates (the simulator is the sole actor, so
        // it is trivially the straggler of every round).
        let rounds = cs_obs::critical::analyze(&cs_obs::ClusterTrace {
            traces: vec![trace],
        });
        assert_eq!(rounds.len(), out.iterations);
        assert!(rounds.iter().all(|r| r.straggler == 0));
    }
}
