//! Execution-substrate abstraction for the computation step.
//!
//! The engine's iteration loop (assignment → computation → convergence) is
//! substrate-independent: only paper step 2 — the distributed gossip
//! aggregation, noise folding, and collaborative decryption — touches a
//! network. [`ComputationBackend`] isolates that step so `Engine::run` can
//! execute over the in-process cycle simulator (the default, Peersim-style)
//! or over a real message-passing runtime (`cs_net`'s thread-per-node
//! transport, or its sharded virtual-time executor for 10k+ virtual nodes)
//! without the protocol logic forking.

use crate::config::ChiaroscuroConfig;
use crate::error::ChiaroscuroError;
use crate::noise::SlotLayout;
use crate::rounds::{run_computation_step, ComputationOutcome, CryptoContext};
use rand::rngs::StdRng;

/// An execution substrate for the distributed computation step.
///
/// Implementations receive every live participant's cleartext contribution
/// vector and must return per-participant perturbed aggregate estimates plus
/// the cost counters the engine logs. `contributions[i]` is `None` for
/// participants that were down at the start of the iteration.
pub trait ComputationBackend {
    /// Short human-readable substrate name (log/debug output).
    fn label(&self) -> &'static str;

    /// Runs one computation step (paper steps 2a–2d).
    ///
    /// `step_seed` is the engine's per-iteration seed for the substrate's
    /// own randomness (topology, pacing, loss); `rng` is the engine's master
    /// RNG for draws that must stay on the shared deterministic stream
    /// (committee sampling in the default backend).
    fn run_step(
        &mut self,
        config: &ChiaroscuroConfig,
        layout: &SlotLayout,
        contributions: &[Option<Vec<f64>>],
        crypto: &CryptoContext,
        step_seed: u64,
        rng: &mut StdRng,
    ) -> Result<ComputationOutcome, ChiaroscuroError>;
}

/// The default substrate: the in-process cycle-driven gossip simulator
/// (`cs_gossip::Network`), byte-for-byte the behavior `Engine::run` always
/// had.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimulatorBackend;

impl ComputationBackend for SimulatorBackend {
    fn label(&self) -> &'static str {
        "cycle-simulator"
    }

    fn run_step(
        &mut self,
        config: &ChiaroscuroConfig,
        layout: &SlotLayout,
        contributions: &[Option<Vec<f64>>],
        crypto: &CryptoContext,
        step_seed: u64,
        rng: &mut StdRng,
    ) -> Result<ComputationOutcome, ChiaroscuroError> {
        run_computation_step(config, layout, contributions, crypto, step_seed, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_backend_is_the_default_substrate() {
        assert_eq!(SimulatorBackend.label(), "cycle-simulator");
    }
}
