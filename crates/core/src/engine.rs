//! The Chiaroscuro engine: the full execution sequence (paper §II-B).
//!
//! Per iteration, each participant runs the **assignment step** locally on
//! its perturbed centroids, the population runs the **computation step** as
//! an encrypted gossip aggregation with per-participant noise shares folded
//! in before collaborative decryption, and each participant runs the
//! **convergence step** locally on the perturbed means. There is no global
//! synchronization primitive: every participant carries its own Diptych, and
//! late participants adopt a peer's newer Diptych when they resurface.

use crate::backend::{ComputationBackend, SimulatorBackend};
use crate::config::{ChiaroscuroConfig, CryptoMode};
use crate::cost::{CostModel, IterationCost};
use crate::diptych::Diptych;
use crate::error::ChiaroscuroError;
use crate::log::{ExecutionLog, IterationRecord};
use crate::noise::{contribution_vector, SlotLayout};
use crate::participant::Participant;
use crate::rounds::{CryptoContext, PerturbedAggregates};
use crate::termination::TerminationMonitor;
use cs_crypto::CryptoCostProfile;
use cs_dp::{BudgetPlan, NoiseShareGenerator, PrivacyAccountant};
use cs_kmeans::assign::{cluster_means, cluster_sums};
use cs_timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Result of a complete run.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Canonical final centroids (population average of the participants'
    /// perturbed centroids; evaluation convenience — each participant also
    /// keeps its own).
    pub centroids: Vec<TimeSeries>,
    /// Canonical assignment of every input series to `centroids`.
    pub assignment: Vec<usize>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the run stopped on convergence (vs the iteration cap or the
    /// budget horizon).
    pub converged: bool,
    /// Full execution log (the demo's MongoDB-document analogue).
    pub log: ExecutionLog,
    /// Privacy spending record.
    pub accountant: PrivacyAccountant,
    /// Each participant's final centroids (their own Diptych view).
    pub per_participant_centroids: Vec<Vec<TimeSeries>>,
}

impl RunOutput {
    /// The demo's interactive use-case (Fig. 3(6)): ranks the final profiles
    /// against a sub-sequence of a participant's series.
    ///
    /// Pure post-processing of the DP-disclosed centroids — no privacy cost.
    pub fn closest_profiles(
        &self,
        query: &TimeSeries,
        measure: cs_timeseries::subsequence::MatchMeasure,
    ) -> Vec<cs_timeseries::subsequence::ProfileMatch> {
        cs_timeseries::subsequence::closest_profiles(query, &self.centroids, measure)
    }

    /// Size of the cluster a given participant's series was assigned to.
    pub fn cluster_size(&self, cluster: usize) -> usize {
        self.assignment.iter().filter(|&&a| a == cluster).count()
    }
}

/// The protocol driver.
pub struct Engine {
    config: ChiaroscuroConfig,
}

impl Engine {
    /// Creates an engine after validating the configuration.
    pub fn new(config: ChiaroscuroConfig) -> Result<Self, ChiaroscuroError> {
        config.validate()?;
        Ok(Engine { config })
    }

    /// The configuration.
    pub fn config(&self) -> &ChiaroscuroConfig {
        &self.config
    }

    /// Runs the protocol over one series per participant, executing the
    /// computation step on the default in-process cycle simulator.
    pub fn run(&self, series: &[TimeSeries]) -> Result<RunOutput, ChiaroscuroError> {
        self.run_with_backend(series, &mut SimulatorBackend)
    }

    /// Runs the protocol with the computation step executed by an arbitrary
    /// substrate — the cycle simulator, or a real message-passing transport
    /// (see the `cs_net` crate's `NetBackend`).
    pub fn run_with_backend(
        &self,
        series: &[TimeSeries],
        backend: &mut dyn ComputationBackend,
    ) -> Result<RunOutput, ChiaroscuroError> {
        let cfg = &self.config;
        let n = series.len();
        if n < cfg.k.max(2) {
            return Err(ChiaroscuroError::NotEnoughData {
                series: n,
                k: cfg.k,
            });
        }
        let series_len = series[0].len();
        if series_len == 0 {
            return Err(ChiaroscuroError::InvalidConfig(
                "series must be non-empty".into(),
            ));
        }
        if series.iter().any(|s| s.len() != series_len) {
            return Err(ChiaroscuroError::InvalidConfig(
                "all series must share one length".into(),
            ));
        }
        let layout = SlotLayout {
            k: cfg.k,
            series_len,
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Setup: dealer, cost model, initial centroids (public random
        // curves — initialization must not peek at private data).
        let crypto = CryptoContext::from_config(cfg, &mut rng)?;
        let cost_model = CostModel::new(self.cost_profile());
        let initial = initial_centroids(cfg.k, series_len, cfg.value_bound, &mut rng);
        let mut participants: Vec<Participant> = series
            .iter()
            .map(|s| Participant::new(s, cfg.value_bound, Diptych::initial(initial.clone())))
            .collect();

        let mut plan = BudgetPlan::new(cfg.budget_strategy, cfg.epsilon, cfg.max_iterations);
        let mut accountant = PrivacyAccountant::new(cfg.epsilon);
        let mut log = ExecutionLog::new("", n, series_len);
        let mut alive = vec![true; n];
        let mut last_relative_movement: Option<f64> = None;
        let mut converged = false;
        let mut iterations = 0;
        let sensitivity = cfg.sensitivity(series_len);
        let mut monitor = TerminationMonitor::new(cfg.termination, cfg.convergence_threshold);

        for iter in 0..cfg.max_iterations {
            let Some(eps_t) = plan.next_epsilon(last_relative_movement) else {
                break;
            };
            accountant.charge(iter, "perturbed sums and counts", eps_t)?;
            iterations = iter + 1;

            // Late-participant synchronization: resurfaced nodes adopt a
            // live peer's newer Diptych during their first exchange.
            sync_laggards(&mut participants, &alive, &mut rng);

            // Step 1 (local): assignment.
            let alive_count = alive.iter().filter(|&&a| a).count().max(1);
            let noise_scale = sensitivity / eps_t;
            let shares = NoiseShareGenerator::new(alive_count, noise_scale);
            let contributions: Vec<Option<Vec<f64>>> = participants
                .iter_mut()
                .enumerate()
                .map(|(i, p)| {
                    if !alive[i] {
                        return None;
                    }
                    let cluster = p.assignment_step(cfg.distance);
                    Some(contribution_vector(
                        &layout,
                        p.series().values(),
                        cluster,
                        &shares,
                        &mut rng,
                    ))
                })
                .collect();

            // Step 2 (distributed): gossip aggregation + noise + decryption,
            // on whatever substrate the backend provides.
            let step_seed = rng.gen::<u64>();
            let outcome =
                backend.run_step(cfg, &layout, &contributions, &crypto, step_seed, &mut rng)?;
            alive = outcome.alive_after.clone();

            // Omniscient-observer clean means for the log (E2's noise-impact
            // series; never shown to participants).
            let (clean, clean_counts) =
                observer_clean_means(&participants, &contributions, &layout, cfg.k);

            // Step 3 (local): means → centroids, convergence, advance.
            let mut movements = Vec::new();
            let mut converged_count = 0usize;
            for (i, p) in participants.iter_mut().enumerate() {
                let Some(est) = &outcome.estimates[i] else {
                    continue;
                };
                let new_centroids = perturbed_means_to_centroids(
                    est,
                    p.diptych().centroids.as_slice(),
                    cfg,
                    alive_count,
                    &mut rng,
                );
                let movement = p.convergence_step(&new_centroids, cfg.convergence_threshold);
                movements.push(movement);
                if p.converged {
                    converged_count += 1;
                }
                p.diptych_mut().advance(new_centroids);
            }

            let mean_movement = if movements.is_empty() {
                f64::INFINITY
            } else {
                movements.iter().sum::<f64>() / movements.len() as f64
            };
            last_relative_movement =
                Some(mean_movement / (cfg.k as f64 * cfg.value_bound).max(1e-12));

            // Canonical view + logging. The noise impact only averages over
            // clusters that actually had members — an empty cluster has no
            // "clean mean" to perturb.
            let canonical = canonical_centroids(&participants, &alive, cfg.k, series_len);
            let noise_impact = mean_abs_difference(&canonical, &clean, &clean_counts);
            let cost: IterationCost = cost_model.iteration_cost(
                outcome.ops,
                outcome.decrypt_ops,
                &outcome.traffic,
                alive_count,
            );
            log.push(IterationRecord {
                iteration: iter,
                epsilon: eps_t,
                noise_scale,
                alive: alive_count,
                movement: mean_movement,
                converged_fraction: converged_count as f64 / movements.len().max(1) as f64,
                centroids: canonical.iter().map(|c| c.values().to_vec()).collect(),
                observer_clean_centroids: clean.iter().map(|c| c.values().to_vec()).collect(),
                noise_impact,
                cost,
            });

            if monitor.observe(mean_movement) {
                converged = true;
                break;
            }
        }

        let canonical = canonical_centroids(&participants, &alive, cfg.k, series_len);
        let assignment = cs_kmeans::assign_all(series, &canonical, cfg.distance);
        Ok(RunOutput {
            centroids: canonical,
            assignment,
            iterations,
            converged,
            log,
            accountant,
            per_participant_centroids: participants
                .iter()
                .map(|p| p.diptych().centroids.clone())
                .collect(),
        })
    }

    /// The cost profile used for accounting.
    fn cost_profile(&self) -> CryptoCostProfile {
        match &self.config.crypto {
            CryptoMode::Simulated { cost_profile } => *cost_profile,
            // Real mode: ops are measured by running them; translate with
            // the nominal profile scaled to the configured key size class.
            CryptoMode::Real { .. } => CryptoCostProfile::nominal_2048(),
        }
    }
}

/// Public random initial centroids: smooth low-frequency curves inside the
/// (public) value bound. No private data involved.
fn initial_centroids(
    k: usize,
    series_len: usize,
    value_bound: f64,
    rng: &mut StdRng,
) -> Vec<TimeSeries> {
    (0..k)
        .map(|_| {
            let offset = (rng.gen::<f64>() * 2.0 - 1.0) * value_bound * 0.4;
            let amp = rng.gen::<f64>() * value_bound * 0.3;
            let phase = rng.gen::<f64>() * 2.0 * PI;
            let freq = 1.0 + rng.gen::<f64>() * 2.0;
            TimeSeries::from_fn(series_len, |i| {
                let x = i as f64 / series_len.max(1) as f64;
                (offset + amp * (2.0 * PI * freq * x + phase).sin())
                    .clamp(-value_bound, value_bound)
            })
        })
        .collect()
}

/// Converts a participant's perturbed aggregates into its next centroids:
/// ratio of perturbed sums to perturbed counts, empty-cluster guard, value
/// clamping, smoothing (all DP post-processing).
fn perturbed_means_to_centroids(
    est: &PerturbedAggregates,
    previous: &[TimeSeries],
    cfg: &ChiaroscuroConfig,
    alive_count: usize,
    rng: &mut StdRng,
) -> Vec<TimeSeries> {
    let k = est.counts.len();
    let series_len = est.sums.first().map_or(0, |s| s.len());
    // Global perturbed mean — the reseed anchor for empty clusters (pure
    // post-processing of disclosed values: no extra privacy cost).
    let total_count: f64 = est.counts.iter().sum();
    let global_mean: Vec<f64> = if total_count > 1e-9 {
        (0..series_len)
            .map(|d| est.sums.iter().map(|s| s[d]).sum::<f64>() / total_count)
            .collect()
    } else {
        vec![0.0; series_len]
    };

    (0..k)
        .map(|j| {
            // counts are population-normalized (push-sum averages); recover
            // the absolute scale with the public population size.
            let absolute_count = est.counts[j] * alive_count as f64;
            let centroid = if absolute_count < 0.5 {
                // Empty (or noise-drowned) cluster: restart near the global
                // perturbed mean instead of stranding the centroid.
                let jitter: Vec<f64> = (0..series_len)
                    .map(|_| (rng.gen::<f64>() - 0.5) * 0.1 * cfg.value_bound)
                    .collect();
                TimeSeries::from_fn(series_len, |d| {
                    (global_mean[d] + jitter[d]).clamp(-cfg.value_bound, cfg.value_bound)
                })
            } else {
                TimeSeries::from_fn(series_len, |d| {
                    (est.sums[j][d] / est.counts[j]).clamp(-cfg.value_bound, cfg.value_bound)
                })
            };
            let _ = &previous[j]; // previous centroids kept for API clarity
            cfg.smoothing.apply(&centroid)
        })
        .collect()
}

/// Population-average of live participants' centroids.
fn canonical_centroids(
    participants: &[Participant],
    alive: &[bool],
    k: usize,
    series_len: usize,
) -> Vec<TimeSeries> {
    let mut acc = vec![vec![0.0; series_len]; k];
    let mut count = 0usize;
    for (p, &a) in participants.iter().zip(alive) {
        if !a {
            continue;
        }
        count += 1;
        for (j, c) in p.diptych().centroids.iter().enumerate() {
            for (d, v) in c.values().iter().enumerate() {
                acc[j][d] += v;
            }
        }
    }
    let count = count.max(1) as f64;
    acc.into_iter()
        .map(|row| row.into_iter().map(|v| v / count).collect())
        .collect()
}

/// Exact (noise-free, fully aggregated) cluster means for the observer log,
/// with per-cluster member counts.
fn observer_clean_means(
    participants: &[Participant],
    contributions: &[Option<Vec<f64>>],
    layout: &SlotLayout,
    k: usize,
) -> (Vec<TimeSeries>, Vec<usize>) {
    let members: Vec<TimeSeries> = participants
        .iter()
        .zip(contributions)
        .filter(|(_, c)| c.is_some())
        .map(|(p, _)| p.series().clone())
        .collect();
    let assignment: Vec<usize> = participants
        .iter()
        .zip(contributions)
        .filter(|(_, c)| c.is_some())
        .map(|(p, _)| p.cluster)
        .collect();
    if members.is_empty() {
        return (vec![TimeSeries::zeros(layout.series_len); k], vec![0; k]);
    }
    let (sums, counts) = cluster_sums(&members, &assignment, k, layout.series_len);
    (cluster_means(&sums, &counts), counts)
}

/// Mean absolute coordinate difference over clusters with `counts > 0`.
fn mean_abs_difference(a: &[TimeSeries], b: &[TimeSeries], counts: &[usize]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for ((x, y), &count) in a.iter().zip(b).zip(counts) {
        if count == 0 {
            continue;
        }
        for (u, v) in x.values().iter().zip(y.values()) {
            total += (u - v).abs();
            n += 1;
        }
    }
    total / n.max(1) as f64
}

/// Late-participant sync: a participant whose Diptych lags the population
/// adopts the state of a random live peer (paper §II-B: "the late
/// participants simply synchronize on the latest iteration during their
/// gossip exchanges").
fn sync_laggards(participants: &mut [Participant], alive: &[bool], rng: &mut StdRng) {
    let max_iter = participants
        .iter()
        .zip(alive)
        .filter(|(_, &a)| a)
        .map(|(p, _)| p.diptych().iteration)
        .max()
        .unwrap_or(0);
    if max_iter == 0 {
        return;
    }
    // Pick one up-to-date live donor.
    let donors: Vec<usize> = participants
        .iter()
        .enumerate()
        .filter(|(i, p)| alive[*i] && p.diptych().iteration == max_iter)
        .map(|(i, _)| i)
        .collect();
    if donors.is_empty() {
        return;
    }
    let donor_idx = donors[rng.gen_range(0..donors.len())];
    let donor = participants[donor_idx].diptych().clone();
    for (i, p) in participants.iter_mut().enumerate() {
        if alive[i] && p.diptych().iteration < max_iter {
            p.diptych_mut().sync_with(&donor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_timeseries::datasets::blobs::{generate, BlobsConfig};

    fn blob_series(count: usize, clusters: usize, noise: f64, seed: u64) -> Vec<TimeSeries> {
        generate(
            &BlobsConfig {
                count,
                clusters,
                noise,
                len: 8,
                ..BlobsConfig::default()
            },
            &mut StdRng::seed_from_u64(seed),
        )
        .series
    }

    #[test]
    fn initial_centroids_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let cs = initial_centroids(4, 16, 5.0, &mut rng);
        assert_eq!(cs.len(), 4);
        for c in &cs {
            assert_eq!(c.len(), 16);
            assert!(c.max().unwrap() <= 5.0 && c.min().unwrap() >= -5.0);
        }
    }

    #[test]
    fn simulated_run_improves_over_initial_centroids() {
        let series = blob_series(120, 3, 0.3, 2);
        let mut cfg = ChiaroscuroConfig::demo_simulated();
        cfg.k = 3;
        // Nearly noise-free (huge ε, tight bound): isolates protocol logic
        // from the DP-utility trade-off that E3 studies.
        cfg.epsilon = 2000.0;
        cfg.value_bound = 6.0;
        cfg.budget_strategy = cs_dp::BudgetStrategy::Uniform;
        // Smoothing trades noise variance for shape bias (E8 ablation); with
        // negligible noise it would only add bias, so keep it off here.
        cfg.smoothing = cs_timeseries::smooth::Smoothing::None;
        cfg.max_iterations = 10;
        cfg.gossip_cycles = 40;
        let engine = Engine::new(cfg).unwrap();
        let out = engine.run(&series).unwrap();
        assert!(out.iterations >= 2);
        let report = crate::quality::compare_with_baseline(
            &series,
            &out.centroids,
            cs_timeseries::Distance::SquaredEuclidean,
            7,
        );
        assert!(
            report.inertia_ratio < 2.0,
            "with huge epsilon the ratio should approach 1: {}",
            report.inertia_ratio
        );
    }

    #[test]
    fn run_is_deterministic_given_seed() {
        let series = blob_series(60, 2, 0.3, 3);
        let mut cfg = ChiaroscuroConfig::demo_simulated();
        cfg.k = 2;
        cfg.max_iterations = 3;
        let out1 = Engine::new(cfg.clone()).unwrap().run(&series).unwrap();
        let out2 = Engine::new(cfg).unwrap().run(&series).unwrap();
        assert_eq!(out1.assignment, out2.assignment);
        assert_eq!(out1.log.records.len(), out2.log.records.len());
        for (a, b) in out1.centroids.iter().zip(&out2.centroids) {
            assert_eq!(a.values(), b.values());
        }
    }

    #[test]
    fn budget_is_respected() {
        let series = blob_series(60, 2, 0.3, 4);
        let mut cfg = ChiaroscuroConfig::demo_simulated();
        cfg.k = 2;
        cfg.epsilon = 1.0;
        cfg.max_iterations = 10;
        let out = Engine::new(cfg).unwrap().run(&series).unwrap();
        assert!(out.accountant.spent() <= 1.0 + 1e-9);
        assert_eq!(out.log.records.len(), out.iterations);
    }

    #[test]
    fn too_few_series_rejected() {
        let cfg = ChiaroscuroConfig::demo_simulated();
        let engine = Engine::new(cfg).unwrap();
        let err = engine.run(&[TimeSeries::zeros(4)]).unwrap_err();
        assert!(matches!(err, ChiaroscuroError::NotEnoughData { .. }));
    }

    #[test]
    fn ragged_and_empty_series_rejected() {
        let mut cfg = ChiaroscuroConfig::demo_simulated();
        cfg.k = 2;
        let engine = Engine::new(cfg).unwrap();
        let ragged: Vec<TimeSeries> = (0..10)
            .map(|i| TimeSeries::zeros(if i == 5 { 3 } else { 4 }))
            .collect();
        assert!(matches!(
            engine.run(&ragged).unwrap_err(),
            ChiaroscuroError::InvalidConfig(_)
        ));
        let empty: Vec<TimeSeries> = (0..10).map(|_| TimeSeries::zeros(0)).collect();
        assert!(matches!(
            engine.run(&empty).unwrap_err(),
            ChiaroscuroError::InvalidConfig(_)
        ));
    }

    #[test]
    fn log_records_match_iterations_and_contain_noise_impact() {
        let series = blob_series(80, 2, 0.4, 5);
        let mut cfg = ChiaroscuroConfig::demo_simulated();
        cfg.k = 2;
        cfg.epsilon = 2.0;
        cfg.max_iterations = 4;
        let out = Engine::new(cfg).unwrap().run(&series).unwrap();
        assert_eq!(out.log.records.len(), out.iterations);
        for r in &out.log.records {
            assert!(r.noise_scale > 0.0);
            assert!(r.noise_impact >= 0.0);
            assert_eq!(r.centroids.len(), 2);
            assert!(r.cost.gossip_messages > 0);
        }
    }

    #[test]
    fn plateau_termination_stops_at_noise_floor() {
        // With heavy noise, movement plateaus far above the threshold: the
        // plain criterion runs to the cap, the plateau criterion stops early
        // and saves the remaining privacy budget.
        let series = blob_series(100, 2, 0.4, 11);
        let mut cfg = ChiaroscuroConfig::demo_simulated();
        cfg.k = 2;
        cfg.epsilon = 8.0; // noisy regime
        cfg.max_iterations = 12;
        cfg.budget_strategy = cs_dp::BudgetStrategy::Uniform;

        let mut plain_cfg = cfg.clone();
        plain_cfg.termination = crate::termination::Termination::MovementThreshold;
        let plain = Engine::new(plain_cfg).unwrap().run(&series).unwrap();

        let mut plateau_cfg = cfg;
        plateau_cfg.termination = crate::termination::Termination::plateau_default();
        let plateau = Engine::new(plateau_cfg).unwrap().run(&series).unwrap();

        assert_eq!(plain.iterations, 12, "plain criterion runs to the cap");
        assert!(
            plateau.iterations < plain.iterations,
            "plateau must stop early: {} vs {}",
            plateau.iterations,
            plain.iterations
        );
        assert!(plateau.accountant.spent() < plain.accountant.spent());
    }

    #[test]
    fn run_output_usecase_helpers() {
        let series = blob_series(60, 2, 0.3, 21);
        let mut cfg = ChiaroscuroConfig::demo_simulated();
        cfg.k = 2;
        cfg.epsilon = 500.0;
        cfg.max_iterations = 3;
        let out = Engine::new(cfg).unwrap().run(&series).unwrap();
        let query = series[0].window(2, 4);
        let matches = out.closest_profiles(
            &query,
            cs_timeseries::subsequence::MatchMeasure::Pointwise(cs_timeseries::Distance::Euclidean),
        );
        assert_eq!(matches.len(), 2);
        assert!(matches[0].distance <= matches[1].distance);
        assert_eq!(
            out.cluster_size(0) + out.cluster_size(1),
            series.len(),
            "every series belongs to exactly one cluster"
        );
    }

    #[test]
    fn churn_does_not_crash_the_run() {
        let series = blob_series(60, 2, 0.4, 6);
        let mut cfg = ChiaroscuroConfig::demo_simulated();
        cfg.k = 2;
        cfg.max_iterations = 4;
        cfg.failure = cs_gossip::FailureModel {
            crash_prob: 0.02,
            recovery_prob: 0.3,
            drop_prob: 0.05,
        };
        let out = Engine::new(cfg).unwrap().run(&series).unwrap();
        assert!(out.iterations >= 1);
    }
}
