//! Per-participant state.

use crate::diptych::Diptych;
use cs_kmeans::assign::nearest_centroid;
use cs_timeseries::{Distance, TimeSeries};

/// One personal device participating in the protocol.
///
/// Holds the private series (clamped to the public value bound), the
/// participant's own Diptych (its approximation of the shared state — every
/// participant "holds its own approximation of the global aggregate"), and
/// its current assignment.
#[derive(Clone, Debug)]
pub struct Participant {
    series: TimeSeries,
    diptych: Diptych,
    /// Cluster chosen in the current iteration's assignment step.
    pub cluster: usize,
    /// Set when this participant's convergence step fired.
    pub converged: bool,
}

impl Participant {
    /// Creates a participant, clamping the series into `[-bound, bound]`.
    pub fn new(series: &TimeSeries, value_bound: f64, initial: Diptych) -> Self {
        let clamped: TimeSeries = series
            .values()
            .iter()
            .map(|v| v.clamp(-value_bound, value_bound))
            .collect();
        Participant {
            series: clamped,
            diptych: initial,
            cluster: 0,
            converged: false,
        }
    }

    /// The participant's (clamped) private series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// The participant's current Diptych (cleartext side).
    pub fn diptych(&self) -> &Diptych {
        &self.diptych
    }

    /// Mutable Diptych access (engine-internal updates).
    pub fn diptych_mut(&mut self) -> &mut Diptych {
        &mut self.diptych
    }

    /// Paper step 1 (local): assign the series to the closest perturbed
    /// centroid. Returns the chosen cluster.
    pub fn assignment_step(&mut self, distance: Distance) -> usize {
        let (cluster, _) = nearest_centroid(&self.series, &self.diptych.centroids, distance);
        self.cluster = cluster;
        cluster
    }

    /// Paper step 3 (local): compare the perturbed means against the current
    /// centroids; below the threshold the participant is done. Returns the
    /// observed movement.
    pub fn convergence_step(&mut self, new_centroids: &[TimeSeries], threshold: f64) -> f64 {
        let movement = self.diptych.movement_to(new_centroids);
        self.converged = movement <= threshold;
        movement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec())
    }

    fn two_centroids() -> Diptych {
        Diptych::initial(vec![ts(&[0.0, 0.0]), ts(&[10.0, 10.0])])
    }

    #[test]
    fn clamping_applies_bound() {
        let p = Participant::new(&ts(&[100.0, -100.0]), 5.0, two_centroids());
        assert_eq!(p.series().values(), &[5.0, -5.0]);
    }

    #[test]
    fn assignment_picks_nearest() {
        let mut p = Participant::new(&ts(&[9.0, 9.0]), 20.0, two_centroids());
        assert_eq!(p.assignment_step(Distance::SquaredEuclidean), 1);
        let mut q = Participant::new(&ts(&[1.0, -1.0]), 20.0, two_centroids());
        assert_eq!(q.assignment_step(Distance::SquaredEuclidean), 0);
    }

    #[test]
    fn convergence_sets_flag_when_still() {
        let mut p = Participant::new(&ts(&[0.0, 0.0]), 5.0, two_centroids());
        let same = vec![ts(&[0.0, 0.0]), ts(&[10.0, 10.0])];
        let movement = p.convergence_step(&same, 1e-6);
        assert_eq!(movement, 0.0);
        assert!(p.converged);

        let moved = vec![ts(&[1.0, 0.0]), ts(&[10.0, 10.0])];
        let movement = p.convergence_step(&moved, 1e-6);
        assert_eq!(movement, 1.0);
        assert!(!p.converged);
    }
}
