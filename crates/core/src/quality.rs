//! Quality evaluation against the centralized baseline.
//!
//! The demo's scenario follows "the evolution … of the perturbed centroids
//! obtained by participants, of their quality (compared to a centralized
//! k-means)". This module computes that comparison for a finished run.

use cs_kmeans::{adjusted_rand_index, assign_all, inertia, KMeans, KMeansConfig};
use cs_timeseries::{Distance, TimeSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Quality readout of one Chiaroscuro run against a centralized baseline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// Inertia of the Chiaroscuro clustering (data assigned to the final
    /// perturbed centroids).
    pub chiaroscuro_inertia: f64,
    /// Inertia of a centralized k-means with identical k on the same data.
    pub baseline_inertia: f64,
    /// `chiaroscuro / baseline` — 1.0 means privacy came for free; the demo
    /// shows how close to 1 realistic ε gets.
    pub inertia_ratio: f64,
    /// Adjusted Rand index between the two assignments.
    pub ari_vs_baseline: f64,
    /// Silhouette score of the Chiaroscuro assignment (sampled to at most
    /// [`SILHOUETTE_SAMPLE`] series; the measure is O(n²)).
    pub silhouette: f64,
}

/// Number of baseline restarts: k-means is a local optimizer, so a fair
/// baseline takes the best of several k-means++ runs.
const BASELINE_RESTARTS: u64 = 5;

/// Series used for the silhouette estimate (the full measure is O(n²)).
const SILHOUETTE_SAMPLE: usize = 400;

/// Compares final Chiaroscuro centroids against the best of
/// [`BASELINE_RESTARTS`] centralized k-means runs with the same `k` (seeded
/// deterministically from `seed`).
pub fn compare_with_baseline(
    series: &[TimeSeries],
    chiaroscuro_centroids: &[TimeSeries],
    distance: Distance,
    seed: u64,
) -> QualityReport {
    let k = chiaroscuro_centroids.len();
    let chiaroscuro_assignment = assign_all(series, chiaroscuro_centroids, distance);
    let chiaroscuro_inertia = inertia(
        series,
        chiaroscuro_centroids,
        &chiaroscuro_assignment,
        distance,
    );

    let runner = KMeans::new(KMeansConfig {
        k,
        distance,
        ..KMeansConfig::default()
    });
    let baseline = (0..BASELINE_RESTARTS)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(r));
            runner.fit(series, &mut rng)
        })
        .min_by(|a, b| a.inertia.partial_cmp(&b.inertia).expect("finite inertia"))
        .expect("at least one restart");

    // Silhouette on a deterministic stride sample.
    let stride = (series.len() / SILHOUETTE_SAMPLE).max(1);
    let sampled_series: Vec<TimeSeries> = series.iter().step_by(stride).cloned().collect();
    let sampled_assignment: Vec<usize> = chiaroscuro_assignment
        .iter()
        .step_by(stride)
        .copied()
        .collect();
    let silhouette =
        cs_kmeans::silhouette(&sampled_series, &sampled_assignment, Distance::Euclidean);

    QualityReport {
        chiaroscuro_inertia,
        baseline_inertia: baseline.inertia,
        inertia_ratio: cs_kmeans::metrics::inertia_ratio(chiaroscuro_inertia, baseline.inertia),
        ari_vs_baseline: adjusted_rand_index(&chiaroscuro_assignment, &baseline.assignment),
        silhouette,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_timeseries::datasets::blobs::{generate_with_centers, BlobsConfig};

    #[test]
    fn perfect_centroids_score_near_one() {
        // Hand the true generator centers to the comparison: the ratio must
        // be ≈ 1 and the ARI high.
        let (ds, centers) = generate_with_centers(
            &BlobsConfig {
                count: 200,
                clusters: 3,
                noise: 0.2,
                ..BlobsConfig::default()
            },
            &mut StdRng::seed_from_u64(1),
        );
        let report = compare_with_baseline(&ds.series, &centers, Distance::SquaredEuclidean, 7);
        assert!(
            report.inertia_ratio < 1.1,
            "true centers should match baseline: {}",
            report.inertia_ratio
        );
        assert!(
            report.ari_vs_baseline > 0.9,
            "ari {}",
            report.ari_vs_baseline
        );
    }

    #[test]
    fn garbage_centroids_score_badly() {
        let (ds, _) = generate_with_centers(
            &BlobsConfig {
                count: 150,
                clusters: 3,
                noise: 0.2,
                ..BlobsConfig::default()
            },
            &mut StdRng::seed_from_u64(2),
        );
        // All-identical garbage centroids far from the data.
        let garbage = vec![TimeSeries::new(vec![100.0; ds.series_len()]); 3];
        let report = compare_with_baseline(&ds.series, &garbage, Distance::SquaredEuclidean, 7);
        assert!(
            report.inertia_ratio > 5.0,
            "garbage must score much worse: {}",
            report.inertia_ratio
        );
    }
}
