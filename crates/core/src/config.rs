//! Engine configuration: every mutable and fixed parameter of the demo.
//!
//! The demo exposes "mutable parameters … (e.g., the differential privacy
//! level, the quality-enhancing heuristics enabled, the use-case …) and …
//! the number of participants required for decryption", with fixed
//! parameters "related to the k-means algorithm …, to the encryption scheme
//! …, and to the gossip algorithm". [`ChiaroscuroConfig`] is the union of
//! both sets.

use crate::error::ChiaroscuroError;
use cs_crypto::{CryptoCostProfile, KeyGenOptions, ThresholdParams};
use cs_dp::BudgetStrategy;
use cs_gossip::{FailureModel, Overlay};
use cs_timeseries::smooth::Smoothing;
use cs_timeseries::Distance;
use serde::{Deserialize, Serialize};

/// Whether homomorphic operations really run or are cost-modeled.
///
/// The demo itself "disable[s] the homomorphic operations (a single machine
/// can hardly cope with the encryption load of a thousand participants)"
/// while displaying costs "based on actual average measures performed
/// beforehand" — [`CryptoMode::Simulated`] reproduces exactly that;
/// [`CryptoMode::Real`] runs the genuine Damgård-Jurik pipeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum CryptoMode {
    /// Full Damgård-Jurik encryption, homomorphic push-sum, threshold
    /// decryption. Use small populations.
    Real {
        /// Key generation parameters.
        keygen: KeyGenOptions,
    },
    /// Plaintext arithmetic with crypto costs charged from a measured (or
    /// nominal) profile.
    Simulated {
        /// Per-operation costs used by the accounting.
        cost_profile: CryptoCostProfile,
    },
}

/// Full engine configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChiaroscuroConfig {
    // ---- k-means (fixed parameters in the demo) ----
    /// Number of clusters.
    pub k: usize,
    /// Maximum k-means iterations (also the privacy-budget horizon).
    pub max_iterations: usize,
    /// Convergence threshold on summed centroid displacement.
    pub convergence_threshold: f64,
    /// Termination criterion (paper footnote 2 supports criteria beyond the
    /// plain threshold — e.g. detecting the perturbation noise floor).
    pub termination: crate::termination::Termination,
    /// Distance for assignment and convergence.
    pub distance: Distance,

    // ---- privacy (mutable parameters in the demo) ----
    /// Total differential-privacy budget ε.
    pub epsilon: f64,
    /// Budget distribution heuristic.
    pub budget_strategy: BudgetStrategy,
    /// Smoothing heuristic applied to perturbed means.
    pub smoothing: Smoothing,
    /// Bound `B` on absolute series values; inputs are clamped to `[-B, B]`
    /// and the DP sensitivity derives from it (public knowledge, not
    /// data-derived).
    pub value_bound: f64,

    // ---- encryption ----
    /// Real or simulated crypto.
    pub crypto: CryptoMode,
    /// Threshold decryption: `threshold` partials out of a `parties`-member
    /// key committee (the demo's "number of participants required for
    /// decryption").
    pub threshold: ThresholdParams,
    /// Fixed-point fractional bits for plaintext encoding.
    pub codec_scale_bits: u32,
    /// Re-randomize ciphertexts before each forward (hides which slots are
    /// trivial zero encryptions). Ignored in simulated mode except for cost.
    pub rerandomize: bool,
    /// Pack many buckets per ciphertext (disjoint fixed-point lanes of
    /// `Z_{n^s}`, see `cs_crypto::packing`) and use fixed-base
    /// exponentiation for encryption — the crypto fast path. Only affects
    /// [`CryptoMode::Real`]; the simulated (plaintext) pipeline has nothing
    /// to pack. Off by default so existing runs stay byte-identical.
    pub packing: bool,

    // ---- gossip ----
    /// Gossip cycles per computation step ("number of exchanges per
    /// participant").
    pub gossip_cycles: usize,
    /// Overlay used for peer sampling.
    pub overlay: Overlay,
    /// Failure injection.
    pub failure: FailureModel,

    // ---- simulation ----
    /// Master seed (all randomness derives from it).
    pub seed: u64,
}

impl ChiaroscuroConfig {
    /// A small, fast configuration running **real** cryptography at
    /// test-size (insecure) keys.
    pub fn test_real() -> Self {
        ChiaroscuroConfig {
            k: 2,
            max_iterations: 4,
            convergence_threshold: 1e-3,
            termination: crate::termination::Termination::MovementThreshold,
            distance: Distance::SquaredEuclidean,
            epsilon: 5.0,
            budget_strategy: BudgetStrategy::Uniform,
            smoothing: Smoothing::None,
            value_bound: 10.0,
            crypto: CryptoMode::Real {
                keygen: KeyGenOptions::insecure_test_size(),
            },
            threshold: ThresholdParams {
                threshold: 2,
                parties: 3,
            },
            codec_scale_bits: 20,
            rerandomize: true,
            packing: false,
            gossip_cycles: 12,
            overlay: Overlay::Full,
            failure: FailureModel::none(),
            seed: 42,
        }
    }

    /// A demo-scale configuration with simulated crypto (the paper's ~10³
    /// participants regime).
    pub fn demo_simulated() -> Self {
        ChiaroscuroConfig {
            k: 5,
            max_iterations: 12,
            convergence_threshold: 1e-3,
            termination: crate::termination::Termination::MovementThreshold,
            distance: Distance::SquaredEuclidean,
            epsilon: 1.0,
            budget_strategy: BudgetStrategy::increasing_default(),
            smoothing: Smoothing::MovingAverage { window: 3 },
            value_bound: 10.0,
            crypto: CryptoMode::Simulated {
                cost_profile: CryptoCostProfile::nominal_2048(),
            },
            threshold: ThresholdParams {
                threshold: 5,
                parties: 16,
            },
            codec_scale_bits: 20,
            rerandomize: true,
            packing: false,
            gossip_cycles: 30,
            overlay: Overlay::Full,
            failure: FailureModel::none(),
            seed: 42,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ChiaroscuroError> {
        let fail = |msg: &str| Err(ChiaroscuroError::InvalidConfig(msg.to_string()));
        if self.k == 0 {
            return fail("k must be positive");
        }
        if self.max_iterations == 0 {
            return fail("max_iterations must be positive");
        }
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return fail("epsilon must be positive");
        }
        if !(self.value_bound > 0.0 && self.value_bound.is_finite()) {
            return fail("value_bound must be positive");
        }
        if self.gossip_cycles == 0 {
            return fail("gossip_cycles must be positive");
        }
        if self.threshold.validate().is_err() {
            return fail("threshold must satisfy 1 <= threshold <= parties");
        }
        if self.codec_scale_bits > 60 {
            return fail("codec_scale_bits too large for the value headroom");
        }
        self.failure.validate();
        Ok(())
    }

    /// The L1 sensitivity of one iteration's disclosed aggregate family:
    /// one participant's series (clamped to `value_bound`) joins exactly one
    /// cluster sum (`≤ value_bound · series_len`) and one count (`1`).
    pub fn sensitivity(&self, series_len: usize) -> f64 {
        self.value_bound * series_len as f64 + 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(ChiaroscuroConfig::test_real().validate().is_ok());
        assert!(ChiaroscuroConfig::demo_simulated().validate().is_ok());
    }

    #[test]
    fn bad_configs_rejected() {
        let mut c = ChiaroscuroConfig::demo_simulated();
        c.k = 0;
        assert!(c.validate().is_err());

        let mut c = ChiaroscuroConfig::demo_simulated();
        c.epsilon = -1.0;
        assert!(c.validate().is_err());

        let mut c = ChiaroscuroConfig::demo_simulated();
        c.threshold.threshold = 99;
        c.threshold.parties = 3;
        assert!(c.validate().is_err());

        let mut c = ChiaroscuroConfig::demo_simulated();
        c.gossip_cycles = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sensitivity_formula() {
        let c = ChiaroscuroConfig::demo_simulated();
        // value_bound = 10, len 24 → 241
        assert_eq!(c.sensitivity(24), 241.0);
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = ChiaroscuroConfig::demo_simulated();
        let json = serde_json::to_string(&c).unwrap();
        let back: ChiaroscuroConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.k, c.k);
        assert_eq!(back.epsilon, c.epsilon);
    }
}
