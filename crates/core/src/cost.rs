//! Cost accounting — the demo's "privacy vs performance" axis.
//!
//! The demo displays encryption and network costs per participant, with the
//! crypto time "based on actual average measures performed beforehand". The
//! [`CostModel`] turns operation counts (measured in real mode, synthesized
//! in simulated mode) into per-participant wall-clock using a
//! [`CryptoCostProfile`], and extrapolates to the paper's target population
//! (10⁶): per-participant gossip work is population-independent, which is
//! precisely why the paper's approach scales.

use cs_crypto::CryptoCostProfile;
use cs_gossip::homomorphic_pushsum::HomomorphicOpCounts;
use cs_gossip::TrafficStats;
use serde::{Deserialize, Serialize};

/// Operation counts for one iteration's collaborative decryptions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecryptionOps {
    /// Partial decryptions computed (across the committee).
    pub partial_decryptions: u64,
    /// Share combinations performed.
    pub combinations: u64,
    /// Request/response messages exchanged.
    pub messages: u64,
    /// Bytes moved by decryption traffic.
    pub bytes: u64,
}

impl DecryptionOps {
    /// Element-wise sum.
    pub fn merge(&mut self, other: &DecryptionOps) {
        self.partial_decryptions += other.partial_decryptions;
        self.combinations += other.combinations;
        self.messages += other.messages;
        self.bytes += other.bytes;
    }
}

/// Cost summary of one protocol iteration.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationCost {
    /// Gossip messages delivered.
    pub gossip_messages: u64,
    /// Gossip payload bytes.
    pub gossip_bytes: u64,
    /// Decryption messages.
    pub decrypt_messages: u64,
    /// Decryption bytes.
    pub decrypt_bytes: u64,
    /// Homomorphic op counts (gossip side).
    pub ops: HomomorphicOpCounts,
    /// Decryption op counts.
    pub decrypt_ops: DecryptionOps,
    /// Estimated crypto seconds per participant for this iteration.
    pub crypto_seconds_per_participant: f64,
    /// Network bytes per participant.
    pub bytes_per_participant: f64,
}

/// Converts op counts into time using a measured profile.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostModel {
    profile: CryptoCostProfile,
}

impl CostModel {
    /// Creates a model from a (measured or nominal) profile.
    pub fn new(profile: CryptoCostProfile) -> Self {
        CostModel { profile }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &CryptoCostProfile {
        &self.profile
    }

    /// Assembles an [`IterationCost`] from raw counters.
    pub fn iteration_cost(
        &self,
        ops: HomomorphicOpCounts,
        decrypt_ops: DecryptionOps,
        gossip_traffic: &TrafficStats,
        participants: usize,
    ) -> IterationCost {
        let p = &self.profile;
        let total_us = ops.encryptions as f64 * p.encrypt_us
            + ops.additions as f64 * p.add_us
            + ops.pow2_scalings as f64 * p.scalar_pow2_us
            + ops.rerandomizations as f64 * p.rerandomize_us
            + decrypt_ops.partial_decryptions as f64 * p.partial_decrypt_us
            + decrypt_ops.combinations as f64 * p.combine_us;
        let n = participants.max(1) as f64;
        IterationCost {
            gossip_messages: gossip_traffic.messages,
            gossip_bytes: gossip_traffic.bytes,
            decrypt_messages: decrypt_ops.messages,
            decrypt_bytes: decrypt_ops.bytes,
            ops,
            decrypt_ops,
            crypto_seconds_per_participant: total_us / n / 1e6,
            bytes_per_participant: (gossip_traffic.bytes + decrypt_ops.bytes) as f64 / n,
        }
    }

    /// Extrapolates one iteration's per-participant cost to a larger
    /// population.
    ///
    /// Gossip work per participant is O(cycles × slots) regardless of `n`,
    /// so per-participant numbers carry over unchanged; only the aggregate
    /// network volume scales linearly. Returns
    /// `(seconds_per_participant, total_network_bytes)`.
    pub fn extrapolate(&self, cost: &IterationCost, population: usize) -> (f64, f64) {
        (
            cost.crypto_seconds_per_participant,
            cost.bytes_per_participant * population as f64,
        )
    }
}

/// Synthesizes the homomorphic op counts the *real* backend would have
/// produced, for simulated-mode accounting:
///
/// * every participant encrypts its own series slots plus all noise slots
///   (`(k+1)·(series_len+1)` real encryptions; zero slots ship as free
///   trivial encryptions);
/// * every delivered gossip message carries `slots` additions, up to
///   `slots` pow2-rescalings, and — when enabled — `slots`
///   re-randomizations;
/// * step 2c's local noise addition adds `slots/2` additions per
///   participant.
pub fn synthesize_ops(
    k: usize,
    series_len: usize,
    participants: usize,
    delivered_messages: u64,
    rerandomize: bool,
) -> HomomorphicOpCounts {
    let per_cluster = (series_len + 1) as u64;
    let slots = 2 * k as u64 * per_cluster;
    let combine_adds = k as u64 * per_cluster * participants as u64;
    HomomorphicOpCounts {
        encryptions: participants as u64 * (k as u64 + 1) * per_cluster,
        additions: delivered_messages * slots + combine_adds,
        pow2_scalings: delivered_messages * slots,
        rerandomizations: if rerandomize {
            delivered_messages * slots
        } else {
            0
        },
    }
}

/// Decryption ops for one iteration: each of `decryptors` participants has
/// `slots` combined ciphertexts threshold-decrypted with `t` partials each.
pub fn synthesize_decrypt_ops(
    decryptors: usize,
    slots: usize,
    threshold: usize,
    ciphertext_bytes: usize,
) -> DecryptionOps {
    let d = decryptors as u64;
    let s = slots as u64;
    let t = threshold as u64;
    DecryptionOps {
        partial_decryptions: d * s * t,
        combinations: d * s,
        // One request to each of t committee members + t responses.
        messages: d * 2 * t,
        bytes: d * 2 * t * s * ciphertext_bytes as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_cost_aggregates_time() {
        let model = CostModel::new(CryptoCostProfile {
            key_bits: 2048,
            s: 1,
            threshold: 3,
            encrypt_us: 100.0,
            add_us: 1.0,
            scalar_pow2_us: 10.0,
            rerandomize_us: 100.0,
            partial_decrypt_us: 200.0,
            combine_us: 1000.0,
            ciphertext_bytes: 512,
        });
        let ops = HomomorphicOpCounts {
            encryptions: 10,
            additions: 100,
            pow2_scalings: 50,
            rerandomizations: 0,
        };
        let dec = DecryptionOps {
            partial_decryptions: 30,
            combinations: 10,
            messages: 20,
            bytes: 1000,
        };
        let mut traffic = TrafficStats::new();
        traffic.record_message(5000);
        let cost = model.iteration_cost(ops, dec, &traffic, 10);
        // (10*100 + 100*1 + 50*10 + 30*200 + 10*1000) µs / 10 / 1e6
        let want = (1000.0 + 100.0 + 500.0 + 6000.0 + 10_000.0) / 10.0 / 1e6;
        assert!((cost.crypto_seconds_per_participant - want).abs() < 1e-12);
        assert_eq!(cost.gossip_bytes, 5000);
        assert!((cost.bytes_per_participant - 600.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolation_scales_bytes_not_time() {
        let model = CostModel::new(CryptoCostProfile::nominal_2048());
        let cost = IterationCost {
            crypto_seconds_per_participant: 2.5,
            bytes_per_participant: 1000.0,
            ..Default::default()
        };
        let (secs, bytes) = model.extrapolate(&cost, 1_000_000);
        assert_eq!(secs, 2.5);
        assert_eq!(bytes, 1e9);
    }

    #[test]
    fn synthesized_ops_formulas() {
        let ops = synthesize_ops(2, 3, 10, 100, true);
        // per_cluster = 4; slots = 16; encryptions = 10 * 3 * 4 = 120
        assert_eq!(ops.encryptions, 120);
        // additions = 100*16 + combine 2*4*10 = 1680
        assert_eq!(ops.additions, 1680);
        assert_eq!(ops.pow2_scalings, 1600);
        assert_eq!(ops.rerandomizations, 1600);
        let ops = synthesize_ops(2, 3, 10, 100, false);
        assert_eq!(ops.rerandomizations, 0);
    }

    #[test]
    fn synthesized_decrypt_ops_formulas() {
        let d = synthesize_decrypt_ops(10, 8, 3, 512);
        assert_eq!(d.partial_decryptions, 240);
        assert_eq!(d.combinations, 80);
        assert_eq!(d.messages, 60);
        assert_eq!(d.bytes, 10 * 2 * 3 * 8 * 512);
    }
}
