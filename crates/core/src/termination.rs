//! Termination criteria beyond the plain movement threshold.
//!
//! Paper footnote 2: "Chiaroscuro supports the addition of other termination
//! criteria for coping with the impact of the differentially-private
//! perturbation on the convergence of centroids (e.g., monitoring centroids
//! quality)." With DP noise, centroid movement never drops below the noise
//! floor, so a fixed threshold may never fire even though the clustering
//! stopped improving iterations ago — burning privacy budget for nothing.
//! The plateau monitor detects exactly that.

use serde::{Deserialize, Serialize};

/// When to stop iterating (besides the iteration cap / budget horizon).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Termination {
    /// Classic k-means: stop when the summed centroid movement falls below
    /// the configured threshold.
    MovementThreshold,
    /// Noise-aware: additionally stop when movement has not improved its
    /// best value by at least `min_improvement` (relative) for `patience`
    /// consecutive iterations — the perturbation floor has been reached.
    MovementPlateau {
        /// Iterations without relative improvement before stopping.
        patience: usize,
        /// Minimum relative improvement that resets the patience counter.
        min_improvement: f64,
    },
}

impl Termination {
    /// A reasonable plateau default (2 stale iterations, 5% improvement).
    pub fn plateau_default() -> Self {
        Termination::MovementPlateau {
            patience: 2,
            min_improvement: 0.05,
        }
    }
}

/// Tracks the movement series of a run and decides when to stop.
#[derive(Clone, Debug)]
pub struct TerminationMonitor {
    criterion: Termination,
    threshold: f64,
    best_movement: f64,
    stale_iterations: usize,
}

impl TerminationMonitor {
    /// Creates a monitor for the criterion and the movement threshold.
    pub fn new(criterion: Termination, threshold: f64) -> Self {
        TerminationMonitor {
            criterion,
            threshold,
            best_movement: f64::INFINITY,
            stale_iterations: 0,
        }
    }

    /// Feeds one iteration's movement; returns `true` if the run should
    /// stop.
    pub fn observe(&mut self, movement: f64) -> bool {
        if movement <= self.threshold {
            return true;
        }
        match self.criterion {
            Termination::MovementThreshold => false,
            Termination::MovementPlateau {
                patience,
                min_improvement,
            } => {
                if movement < self.best_movement * (1.0 - min_improvement) {
                    self.best_movement = movement;
                    self.stale_iterations = 0;
                } else {
                    self.stale_iterations += 1;
                }
                self.stale_iterations >= patience
            }
        }
    }

    /// Best movement seen so far.
    pub fn best_movement(&self) -> f64 {
        self.best_movement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_fires_for_both_criteria() {
        for criterion in [
            Termination::MovementThreshold,
            Termination::plateau_default(),
        ] {
            let mut m = TerminationMonitor::new(criterion, 0.1);
            assert!(!m.observe(5.0));
            assert!(m.observe(0.05), "below threshold must stop ({criterion:?})");
        }
    }

    #[test]
    fn plain_threshold_never_stops_at_noise_floor() {
        let mut m = TerminationMonitor::new(Termination::MovementThreshold, 0.01);
        // Movement stuck at the noise floor ≈ 1.0 forever.
        for _ in 0..50 {
            assert!(!m.observe(1.0 + 0.001));
        }
    }

    #[test]
    fn plateau_detects_noise_floor() {
        let mut m = TerminationMonitor::new(Termination::plateau_default(), 0.01);
        assert!(!m.observe(10.0));
        assert!(!m.observe(5.0)); // improving
        assert!(!m.observe(2.0)); // improving
        assert!(!m.observe(1.95)); // stale 1 (< 5% improvement)
        assert!(m.observe(2.05), "second stale iteration must stop");
    }

    #[test]
    fn improvement_resets_patience() {
        let mut m = TerminationMonitor::new(
            Termination::MovementPlateau {
                patience: 2,
                min_improvement: 0.05,
            },
            1e-9,
        );
        assert!(!m.observe(10.0));
        assert!(!m.observe(9.9)); // stale 1
        assert!(!m.observe(5.0)); // big improvement: reset
        assert!(!m.observe(4.9)); // stale 1
        assert!(m.observe(4.9)); // stale 2 → stop
        assert!((m.best_movement() - 5.0).abs() < 1e-12);
    }
}
