//! Piecewise Aggregate Approximation (PAA).
//!
//! Chiaroscuro's per-iteration crypto and network cost is linear in the
//! series length `T` (the aggregate has `2k(T+1)` encrypted slots). PAA
//! compresses a series into `segments` mean values, shrinking `T` by the
//! reduction factor while preserving Euclidean geometry up to a provable
//! lower bound — so participants can trade a little clustering resolution
//! for a large cost cut before entering the protocol. Experiment E9
//! quantifies the trade-off.

use crate::TimeSeries;
use serde::{Deserialize, Serialize};

/// A PAA reducer mapping length-`input_len` series to `segments` means.
///
/// ```
/// use cs_timeseries::paa::Paa;
/// use cs_timeseries::TimeSeries;
///
/// let paa = Paa::new(8, 2);
/// let ts = TimeSeries::new(vec![1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0]);
/// assert_eq!(paa.reduce(&ts).values(), &[1.0, 5.0]);
/// assert_eq!(paa.reduction_factor(), 4.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Paa {
    input_len: usize,
    segments: usize,
}

impl Paa {
    /// Creates a reducer. Panics unless `1 <= segments <= input_len`.
    pub fn new(input_len: usize, segments: usize) -> Self {
        assert!(segments >= 1, "need at least one segment");
        assert!(
            segments <= input_len,
            "cannot have more segments than points"
        );
        Paa {
            input_len,
            segments,
        }
    }

    /// Original series length.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Reduced length.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// The cost-reduction factor `input_len / segments`.
    pub fn reduction_factor(&self) -> f64 {
        self.input_len as f64 / self.segments as f64
    }

    /// Reduces one series to its segment means.
    ///
    /// Segment boundaries follow the standard fractional scheme: point `i`
    /// contributes to segment `⌊i·segments/input_len⌋`, so uneven divisions
    /// distribute points as evenly as possible.
    pub fn reduce(&self, ts: &TimeSeries) -> TimeSeries {
        assert_eq!(ts.len(), self.input_len, "length mismatch");
        let mut sums = vec![0.0f64; self.segments];
        let mut counts = vec![0usize; self.segments];
        for (i, &v) in ts.values().iter().enumerate() {
            let seg = i * self.segments / self.input_len;
            sums[seg] += v;
            counts[seg] += 1;
        }
        TimeSeries::new(
            sums.iter()
                .zip(&counts)
                .map(|(s, &c)| s / c.max(1) as f64)
                .collect(),
        )
    }

    /// Reduces a whole dataset.
    pub fn reduce_all(&self, series: &[TimeSeries]) -> Vec<TimeSeries> {
        series.iter().map(|ts| self.reduce(ts)).collect()
    }

    /// Expands a reduced series back to the original length by step
    /// interpolation (each segment mean repeated over its span) — used to
    /// map reduced-space centroids back for display and matching.
    pub fn expand(&self, reduced: &TimeSeries) -> TimeSeries {
        assert_eq!(reduced.len(), self.segments, "length mismatch");
        TimeSeries::from_fn(self.input_len, |i| {
            reduced.values()[i * self.segments / self.input_len]
        })
    }

    /// The PAA lower-bound distance: `√(T/S) · d_euclid(reduce(a),
    /// reduce(b))` never exceeds the true Euclidean distance — the classic
    /// GEMINI lower-bounding property used to prune candidates cheaply.
    pub fn lower_bound_distance(&self, a: &TimeSeries, b: &TimeSeries) -> f64 {
        let ra = self.reduce(a);
        let rb = self.reduce(b);
        (self.reduction_factor()).sqrt() * crate::Distance::Euclidean.compute(&ra, &rb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Distance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn reduce_exact_division() {
        let paa = Paa::new(6, 3);
        let ts = TimeSeries::new(vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0]);
        assert_eq!(paa.reduce(&ts).values(), &[2.0, 6.0, 10.0]);
    }

    #[test]
    fn reduce_uneven_division() {
        let paa = Paa::new(5, 2);
        let ts = TimeSeries::new(vec![2.0, 4.0, 6.0, 8.0, 10.0]);
        // seg(i) = ⌊i·2/5⌋: points 0,1,2 → segment 0; points 3,4 → segment 1.
        let r = paa.reduce(&ts);
        assert_eq!(r.values()[0], 4.0);
        assert_eq!(r.values()[1], 9.0);
    }

    #[test]
    fn identity_when_segments_equal_len() {
        let paa = Paa::new(4, 4);
        let ts = TimeSeries::new(vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(paa.reduce(&ts), ts);
        assert_eq!(paa.expand(&ts), ts);
    }

    #[test]
    fn single_segment_is_global_mean() {
        let paa = Paa::new(4, 1);
        let ts = TimeSeries::new(vec![1.0, 2.0, 3.0, 6.0]);
        assert_eq!(paa.reduce(&ts).values(), &[3.0]);
    }

    #[test]
    fn expand_repeats_segment_means() {
        let paa = Paa::new(6, 2);
        let reduced = TimeSeries::new(vec![1.0, 5.0]);
        assert_eq!(
            paa.expand(&reduced).values(),
            &[1.0, 1.0, 1.0, 5.0, 5.0, 5.0]
        );
    }

    #[test]
    fn reduce_expand_preserves_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let ts: TimeSeries = (0..24).map(|_| rng.gen::<f64>() * 10.0).collect();
        let paa = Paa::new(24, 6);
        let roundtrip = paa.expand(&paa.reduce(&ts));
        assert!((roundtrip.mean() - ts.mean()).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_property_holds() {
        // The PAA distance must never exceed the true Euclidean distance,
        // across many random pairs.
        let mut rng = StdRng::seed_from_u64(2);
        let paa = Paa::new(32, 8);
        for _ in 0..200 {
            let a: TimeSeries = (0..32).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
            let b: TimeSeries = (0..32).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
            let lb = paa.lower_bound_distance(&a, &b);
            let true_d = Distance::Euclidean.compute(&a, &b);
            assert!(lb <= true_d + 1e-9, "lower bound violated: {lb} > {true_d}");
        }
    }

    #[test]
    #[should_panic(expected = "more segments than points")]
    fn too_many_segments_panics() {
        Paa::new(3, 4);
    }
}
