//! # cs-timeseries — time-series toolkit and synthetic datasets
//!
//! The data substrate of the Chiaroscuro reproduction:
//!
//! * [`TimeSeries`] and [`LabeledDataset`]: the value types every other crate
//!   clusters, gossips about, encrypts, and perturbs;
//! * distances ([`distance`], [`dtw`]): squared Euclidean (the k-means
//!   objective), Euclidean, Manhattan, and dynamic time warping for the
//!   profile-matching use-case;
//! * normalization ([`normalize`]) and smoothing ([`smooth`]) — the latter is
//!   one of the paper's two quality-enhancing heuristics ("smoothing the
//!   perturbed means");
//! * subsequence matching ([`subsequence`]): the demo's interactive scenario
//!   where Bob selects a sub-sequence of his series and retrieves the closest
//!   cluster profiles;
//! * dataset generators ([`datasets`]): a CER-like electricity-consumption
//!   generator and a NUMED-like tumor-growth generator (Claret et al. model),
//!   plus controlled Gaussian blobs with ground-truth labels. The real CER
//!   data is license-gated; DESIGN.md §4 documents the substitution, and
//!   [`io`] loads the real thing (or any aligned-series CSV) for license
//!   holders;
//! * [`paa`]: Piecewise Aggregate Approximation — shrinks the series length
//!   (and with it the protocol's per-iteration crypto/network cost, which is
//!   linear in it) while preserving Euclidean geometry up to a provable
//!   lower bound (experiment E9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod distance;
pub mod dtw;
pub mod io;
pub mod normalize;
pub mod paa;
pub mod series;
pub mod smooth;
pub mod stats;
pub mod subsequence;

pub use datasets::LabeledDataset;
pub use distance::Distance;
pub use series::TimeSeries;
