//! Distance measures between equal-length series.

use crate::TimeSeries;
use serde::{Deserialize, Serialize};

/// The distance used by assignment and convergence steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Distance {
    /// `Σ (aᵢ−bᵢ)²` — the k-means objective's native measure (no square
    /// root, monotone with Euclidean, cheapest).
    SquaredEuclidean,
    /// `√Σ (aᵢ−bᵢ)²`.
    Euclidean,
    /// `Σ |aᵢ−bᵢ|`.
    Manhattan,
}

impl Distance {
    /// Computes the distance. Panics on length mismatch.
    pub fn compute(&self, a: &TimeSeries, b: &TimeSeries) -> f64 {
        assert_eq!(a.len(), b.len(), "length mismatch");
        self.compute_slices(a.values(), b.values())
    }

    /// Slice-level implementation (used by the sliding-window matcher).
    pub fn compute_slices(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Distance::SquaredEuclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| {
                    let d = x - y;
                    d * d
                })
                .sum(),
            Distance::Euclidean => Distance::SquaredEuclidean.compute_slices(a, b).sqrt(),
            Distance::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec())
    }

    #[test]
    fn known_values() {
        let a = ts(&[0.0, 0.0]);
        let b = ts(&[3.0, 4.0]);
        assert_eq!(Distance::SquaredEuclidean.compute(&a, &b), 25.0);
        assert_eq!(Distance::Euclidean.compute(&a, &b), 5.0);
        assert_eq!(Distance::Manhattan.compute(&a, &b), 7.0);
    }

    #[test]
    fn identity_of_indiscernibles() {
        let a = ts(&[1.0, -2.0, 3.5]);
        for d in [
            Distance::SquaredEuclidean,
            Distance::Euclidean,
            Distance::Manhattan,
        ] {
            assert_eq!(d.compute(&a, &a), 0.0);
        }
    }

    #[test]
    fn symmetry() {
        let a = ts(&[1.0, 2.0]);
        let b = ts(&[-3.0, 0.5]);
        for d in [
            Distance::SquaredEuclidean,
            Distance::Euclidean,
            Distance::Manhattan,
        ] {
            assert_eq!(d.compute(&a, &b), d.compute(&b, &a));
        }
    }

    #[test]
    fn euclidean_triangle_inequality() {
        let a = ts(&[0.0, 0.0]);
        let b = ts(&[1.0, 1.0]);
        let c = ts(&[2.0, -1.0]);
        let d = Distance::Euclidean;
        assert!(d.compute(&a, &c) <= d.compute(&a, &b) + d.compute(&b, &c) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        Distance::Euclidean.compute(&ts(&[1.0]), &ts(&[1.0, 2.0]));
    }
}
