//! Per-series normalization.
//!
//! Clustering consumption profiles cares about *shape*, not absolute
//! magnitude; the demo clusters normalized series so a villa and a studio
//! with the same usage pattern land in the same cluster.

use crate::TimeSeries;
use serde::{Deserialize, Serialize};

/// Normalization applied to each series independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Normalization {
    /// Leave values unchanged.
    None,
    /// `(x − mean) / std` (constant series map to all-zeros).
    ZScore,
    /// `(x − min) / (max − min)` into `[0, 1]` (constant series map to 0.5).
    MinMax,
}

impl Normalization {
    /// Returns a normalized copy.
    pub fn apply(&self, ts: &TimeSeries) -> TimeSeries {
        match self {
            Normalization::None => ts.clone(),
            Normalization::ZScore => {
                let mean = ts.mean();
                let std = ts.std_dev();
                if std == 0.0 {
                    return TimeSeries::zeros(ts.len());
                }
                ts.values().iter().map(|v| (v - mean) / std).collect()
            }
            Normalization::MinMax => {
                let (min, max) = match (ts.min(), ts.max()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return ts.clone(),
                };
                let range = max - min;
                if range == 0.0 {
                    return TimeSeries::new(vec![0.5; ts.len()]);
                }
                ts.values().iter().map(|v| (v - min) / range).collect()
            }
        }
    }

    /// Normalizes every series of a dataset.
    pub fn apply_all(&self, series: &[TimeSeries]) -> Vec<TimeSeries> {
        series.iter().map(|ts| self.apply(ts)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_moments() {
        let ts = TimeSeries::new(vec![2.0, 4.0, 6.0, 8.0]);
        let z = Normalization::ZScore.apply(&ts);
        assert!(z.mean().abs() < 1e-12);
        assert!((z.std_dev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_range() {
        let ts = TimeSeries::new(vec![10.0, 20.0, 15.0]);
        let m = Normalization::MinMax.apply(&ts);
        assert_eq!(m.min(), Some(0.0));
        assert_eq!(m.max(), Some(1.0));
        assert_eq!(m.values()[2], 0.5);
    }

    #[test]
    fn constant_series_degenerate_cases() {
        let ts = TimeSeries::new(vec![5.0; 4]);
        assert_eq!(Normalization::ZScore.apply(&ts).values(), &[0.0; 4]);
        assert_eq!(Normalization::MinMax.apply(&ts).values(), &[0.5; 4]);
    }

    #[test]
    fn none_is_identity() {
        let ts = TimeSeries::new(vec![1.0, -2.0]);
        assert_eq!(Normalization::None.apply(&ts), ts);
    }

    #[test]
    fn shape_preserved_across_scales() {
        // Two proportional series must normalize identically under z-score.
        let a = TimeSeries::new(vec![1.0, 2.0, 3.0]);
        let b = a.scale(100.0);
        let za = Normalization::ZScore.apply(&a);
        let zb = Normalization::ZScore.apply(&b);
        for (x, y) in za.values().iter().zip(zb.values()) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
