//! Dynamic time warping.
//!
//! Used by the interactive use-case: Bob's selected sub-sequence need not be
//! phase-aligned with the centroid profiles, so an elastic measure finds the
//! intuitively closest profile where a lock-step distance would not.

use crate::TimeSeries;

/// DTW distance with an optional Sakoe-Chiba band of half-width `band`
/// (`None` = unconstrained). Local cost is squared difference; the returned
/// value is the square root of the accumulated cost, making it comparable to
/// a Euclidean distance.
pub fn dtw(a: &TimeSeries, b: &TimeSeries, band: Option<usize>) -> f64 {
    dtw_slices(a.values(), b.values(), band)
}

/// Slice-level DTW (see [`dtw`]).
pub fn dtw_slices(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == m { 0.0 } else { f64::INFINITY };
    }
    // Effective band must at least cover the diagonal slope difference.
    let w = band.map(|w| w.max(n.abs_diff(m))).unwrap_or(n.max(m));

    // Rolling two-row DP over the (n+1) x (m+1) cost matrix.
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        for j in lo..=hi {
            let d = a[i - 1] - b[j - 1];
            let cost = d * d;
            let best = prev[j].min(prev[j - 1]).min(curr[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec())
    }

    #[test]
    fn identical_series_distance_zero() {
        let a = ts(&[1.0, 2.0, 3.0, 2.0, 1.0]);
        assert_eq!(dtw(&a, &a, None), 0.0);
    }

    #[test]
    fn phase_shift_cheaper_than_euclidean() {
        // A one-step shifted bump: DTW should nearly vanish, Euclidean not.
        let a = ts(&[0.0, 0.0, 5.0, 0.0, 0.0, 0.0]);
        let b = ts(&[0.0, 0.0, 0.0, 5.0, 0.0, 0.0]);
        let d_dtw = dtw(&a, &b, None);
        let d_euc = crate::Distance::Euclidean.compute(&a, &b);
        assert!(d_dtw < d_euc * 0.2, "dtw {d_dtw} vs euclidean {d_euc}");
    }

    #[test]
    fn different_lengths_supported() {
        let a = ts(&[1.0, 2.0, 3.0]);
        let b = ts(&[1.0, 1.5, 2.0, 2.5, 3.0]);
        let d = dtw(&a, &b, None);
        assert!(d.is_finite());
        assert!(d < 1.0, "warping should absorb the resampling: {d}");
    }

    #[test]
    fn band_constrains_warping() {
        let a = ts(&[0.0, 0.0, 0.0, 0.0, 5.0]);
        let b = ts(&[5.0, 0.0, 0.0, 0.0, 0.0]);
        let tight = dtw(&a, &b, Some(1));
        let loose = dtw(&a, &b, None);
        assert!(tight >= loose, "tight {tight} loose {loose}");
    }

    #[test]
    fn symmetry() {
        let a = ts(&[1.0, 3.0, 2.0]);
        let b = ts(&[2.0, 2.0, 2.0, 1.0]);
        assert!((dtw(&a, &b, None) - dtw(&b, &a, None)).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let e = ts(&[]);
        let a = ts(&[1.0]);
        assert_eq!(dtw(&e, &e, None), 0.0);
        assert_eq!(dtw(&e, &a, None), f64::INFINITY);
    }
}
