//! Sub-sequence matching — the demo's interactive use-case.
//!
//! Fig. 3(6) of the paper: Bob selects a sub-sequence of his own series and
//! the GUI finds "the centroids the closest to the sub-sequence chosen". The
//! matcher slides the query over each profile and ranks profiles by their
//! best window.

use crate::dtw::dtw_slices;
use crate::{Distance, TimeSeries};
use serde::{Deserialize, Serialize};

/// How query windows are compared to profile windows.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MatchMeasure {
    /// Lock-step distance.
    Pointwise(Distance),
    /// Elastic matching with an optional Sakoe-Chiba band.
    Dtw {
        /// Band half-width (`None` = unconstrained).
        band: Option<usize>,
    },
}

/// A ranked match of the query against one profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileMatch {
    /// Index of the profile in the input list.
    pub profile: usize,
    /// Offset of the best-matching window within the profile.
    pub offset: usize,
    /// Distance of the best window.
    pub distance: f64,
}

/// Finds, for each profile, the best-matching window for `query`, and
/// returns profiles sorted by ascending best distance.
///
/// Profiles shorter than the query are skipped. Panics if the query is
/// empty.
pub fn closest_profiles(
    query: &TimeSeries,
    profiles: &[TimeSeries],
    measure: MatchMeasure,
) -> Vec<ProfileMatch> {
    assert!(!query.is_empty(), "empty query");
    let q = query.values();
    let mut matches: Vec<ProfileMatch> = profiles
        .iter()
        .enumerate()
        .filter(|(_, p)| p.len() >= q.len())
        .map(|(idx, p)| {
            let (offset, distance) = best_window(q, p.values(), measure);
            ProfileMatch {
                profile: idx,
                offset,
                distance,
            }
        })
        .collect();
    matches.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("distances are finite")
    });
    matches
}

/// Best `(offset, distance)` of `query` slid along `profile`.
fn best_window(query: &[f64], profile: &[f64], measure: MatchMeasure) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for offset in 0..=(profile.len() - query.len()) {
        let window = &profile[offset..offset + query.len()];
        let d = match measure {
            MatchMeasure::Pointwise(dist) => dist.compute_slices(query, window),
            MatchMeasure::Dtw { band } => dtw_slices(query, window, band),
        };
        if d < best.1 {
            best = (offset, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec())
    }

    #[test]
    fn finds_exact_subsequence() {
        let profile = ts(&[0.0, 1.0, 4.0, 9.0, 4.0, 1.0, 0.0]);
        let query = ts(&[4.0, 9.0, 4.0]);
        let matches = closest_profiles(
            &query,
            &[profile],
            MatchMeasure::Pointwise(Distance::SquaredEuclidean),
        );
        assert_eq!(matches[0].offset, 2);
        assert_eq!(matches[0].distance, 0.0);
    }

    #[test]
    fn ranks_profiles_by_best_window() {
        let query = ts(&[1.0, 2.0, 1.0]);
        let close = ts(&[0.0, 1.0, 2.0, 1.0, 0.0]);
        let far = ts(&[10.0, 10.0, 10.0, 10.0, 10.0]);
        let matches = closest_profiles(
            &query,
            &[far.clone(), close],
            MatchMeasure::Pointwise(Distance::Euclidean),
        );
        assert_eq!(matches[0].profile, 1, "closest profile first");
        assert!(matches[0].distance < matches[1].distance);
    }

    #[test]
    fn short_profiles_skipped() {
        let query = ts(&[1.0, 2.0, 3.0]);
        let short = ts(&[1.0]);
        let ok = ts(&[1.0, 2.0, 3.0]);
        let matches = closest_profiles(
            &query,
            &[short, ok],
            MatchMeasure::Pointwise(Distance::Euclidean),
        );
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].profile, 1);
    }

    #[test]
    fn dtw_matching_tolerates_phase() {
        let query = ts(&[0.0, 5.0, 0.0]);
        // The bump sits slightly differently in each profile; DTW should
        // rank the one with a same-shape (if shifted) bump first.
        let shifted_bump = ts(&[0.0, 0.0, 5.0, 0.0, 0.0]);
        let flat = ts(&[2.0, 2.0, 2.0, 2.0, 2.0]);
        let matches = closest_profiles(
            &query,
            &[flat, shifted_bump],
            MatchMeasure::Dtw { band: None },
        );
        assert_eq!(matches[0].profile, 1);
    }

    #[test]
    #[should_panic(expected = "empty query")]
    fn empty_query_panics() {
        closest_profiles(
            &ts(&[]),
            &[ts(&[1.0])],
            MatchMeasure::Pointwise(Distance::Euclidean),
        );
    }
}
