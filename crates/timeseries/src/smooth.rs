//! Smoothing of perturbed series.
//!
//! Chiaroscuro's second quality-enhancing heuristic: the Laplace noise added
//! to a mean is i.i.d. per time point, while the underlying profile is
//! smooth — a low-pass filter attenuates the noise (variance shrinks roughly
//! with the window size) at the cost of some bias on sharp features. The
//! ablation experiment E8 quantifies this trade-off.

use crate::TimeSeries;
use serde::{Deserialize, Serialize};

/// Smoothing applied to perturbed means before they become centroids.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Smoothing {
    /// No smoothing.
    None,
    /// Centered moving average with the given odd window (even values are
    /// rounded up). Edges use the available partial window.
    MovingAverage {
        /// Window width in points.
        window: usize,
    },
    /// Exponential smoothing `s_t = α·x_t + (1−α)·s_{t−1}` followed by the
    /// same pass backwards (zero-phase), `0 < α <= 1`.
    Exponential {
        /// Smoothing factor; smaller = smoother.
        alpha: f64,
    },
}

impl Smoothing {
    /// Returns a smoothed copy.
    pub fn apply(&self, ts: &TimeSeries) -> TimeSeries {
        match *self {
            Smoothing::None => ts.clone(),
            Smoothing::MovingAverage { window } => moving_average(ts, window.max(1)),
            Smoothing::Exponential { alpha } => {
                assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
                exponential_zero_phase(ts, alpha)
            }
        }
    }
}

fn moving_average(ts: &TimeSeries, window: usize) -> TimeSeries {
    let n = ts.len();
    if n == 0 {
        return ts.clone();
    }
    let half = window / 2;
    let v = ts.values();
    TimeSeries::from_fn(n, |i| {
        let lo = i.saturating_sub(half);
        let hi = (i + half).min(n - 1);
        let slice = &v[lo..=hi];
        slice.iter().sum::<f64>() / slice.len() as f64
    })
}

fn exponential_zero_phase(ts: &TimeSeries, alpha: f64) -> TimeSeries {
    let n = ts.len();
    if n == 0 {
        return ts.clone();
    }
    let v = ts.values();
    let mut fwd = Vec::with_capacity(n);
    let mut s = v[0];
    for &x in v {
        s = alpha * x + (1.0 - alpha) * s;
        fwd.push(s);
    }
    let mut out = vec![0.0; n];
    let mut s = fwd[n - 1];
    for i in (0..n).rev() {
        s = alpha * fwd[i] + (1.0 - alpha) * s;
        out[i] = s;
    }
    TimeSeries::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn constant_series_unchanged() {
        let ts = TimeSeries::new(vec![3.0; 10]);
        for s in [
            Smoothing::MovingAverage { window: 3 },
            Smoothing::Exponential { alpha: 0.4 },
        ] {
            let out = s.apply(&ts);
            for v in out.values() {
                assert!((v - 3.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let ts = TimeSeries::new(vec![1.0, 5.0, 2.0]);
        assert_eq!(Smoothing::MovingAverage { window: 1 }.apply(&ts), ts);
    }

    #[test]
    fn moving_average_known_values() {
        let ts = TimeSeries::new(vec![0.0, 3.0, 6.0]);
        let out = Smoothing::MovingAverage { window: 3 }.apply(&ts);
        assert_eq!(out.values(), &[1.5, 3.0, 4.5]);
    }

    #[test]
    fn smoothing_reduces_noise_variance() {
        let mut rng = StdRng::seed_from_u64(42);
        let clean = TimeSeries::from_fn(200, |i| (i as f64 * 0.1).sin());
        let noisy: TimeSeries = clean
            .values()
            .iter()
            .map(|v| v + rng.gen::<f64>() - 0.5)
            .collect();
        for s in [
            Smoothing::MovingAverage { window: 5 },
            Smoothing::Exponential { alpha: 0.3 },
        ] {
            let smoothed = s.apply(&noisy);
            let err_noisy: f64 = clean
                .values()
                .iter()
                .zip(noisy.values())
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            let err_smooth: f64 = clean
                .values()
                .iter()
                .zip(smoothed.values())
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            assert!(
                err_smooth < err_noisy * 0.6,
                "{s:?}: {err_smooth} !< 0.6 × {err_noisy}"
            );
        }
    }

    #[test]
    fn mean_approximately_preserved() {
        let mut rng = StdRng::seed_from_u64(7);
        let ts: TimeSeries = (0..100).map(|_| rng.gen::<f64>() * 10.0).collect();
        let out = Smoothing::MovingAverage { window: 5 }.apply(&ts);
        assert!((out.mean() - ts.mean()).abs() < 0.3);
    }

    #[test]
    fn empty_series_ok() {
        let ts = TimeSeries::zeros(0);
        assert_eq!(Smoothing::MovingAverage { window: 3 }.apply(&ts).len(), 0);
        assert_eq!(Smoothing::Exponential { alpha: 0.5 }.apply(&ts).len(), 0);
    }
}
