//! The [`TimeSeries`] value type.

use serde::{Deserialize, Serialize};
use std::ops::Index;

/// A fixed-length sequence of real-valued observations.
///
/// All series in one clustering run share the same length (the paper's
/// datasets are aligned: half-hourly electricity readings, weekly tumor
/// measurements).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Wraps a vector of observations.
    ///
    /// Panics if any value is not finite — NaNs would silently poison every
    /// downstream distance and aggregate.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "time series values must be finite"
        );
        TimeSeries { values }
    }

    /// A zero series of the given length.
    pub fn zeros(len: usize) -> Self {
        TimeSeries {
            values: vec![0.0; len],
        }
    }

    /// Builds a series by evaluating `f` at `0..len`.
    pub fn from_fn(len: usize, f: impl Fn(usize) -> f64) -> Self {
        TimeSeries::new((0..len).map(f).collect())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access (normalization, smoothing).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Arithmetic mean (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        (self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / self.values.len() as f64)
            .sqrt()
    }

    /// Minimum value (`None` for empty).
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum value (`None` for empty).
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// L1 norm `Σ|xᵢ|` — the quantity that bounds a participant's
    /// contribution to a cluster sum (DP sensitivity).
    pub fn l1_norm(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }

    /// Pointwise addition. Panics on length mismatch.
    pub fn add(&self, other: &TimeSeries) -> TimeSeries {
        assert_eq!(self.len(), other.len(), "length mismatch");
        TimeSeries::new(
            self.values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// Pointwise scaling.
    pub fn scale(&self, factor: f64) -> TimeSeries {
        TimeSeries::new(self.values.iter().map(|v| v * factor).collect())
    }

    /// A contiguous sub-sequence `[start, start+len)` as a new series.
    ///
    /// Panics if the window exceeds the series.
    pub fn window(&self, start: usize, len: usize) -> TimeSeries {
        TimeSeries {
            values: self.values[start..start + len].to_vec(),
        }
    }
}

impl Index<usize> for TimeSeries {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

impl From<Vec<f64>> for TimeSeries {
    fn from(values: Vec<f64>) -> Self {
        TimeSeries::new(values)
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        TimeSeries::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let ts = TimeSeries::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.mean(), 2.5);
        assert_eq!(ts.min(), Some(1.0));
        assert_eq!(ts.max(), Some(4.0));
        assert!((ts.std_dev() - 1.118033988749895).abs() < 1e-12);
        assert_eq!(ts.l1_norm(), 10.0);
    }

    #[test]
    fn empty_series_statistics() {
        let ts = TimeSeries::zeros(0);
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.min(), None);
    }

    #[test]
    fn add_and_scale() {
        let a = TimeSeries::new(vec![1.0, 2.0]);
        let b = TimeSeries::new(vec![10.0, 20.0]);
        assert_eq!(a.add(&b).values(), &[11.0, 22.0]);
        assert_eq!(a.scale(3.0).values(), &[3.0, 6.0]);
    }

    #[test]
    fn from_fn_and_window() {
        let ts = TimeSeries::from_fn(5, |i| i as f64);
        assert_eq!(ts.window(1, 3).values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn l1_norm_with_negatives() {
        let ts = TimeSeries::new(vec![-1.5, 2.5, -3.0]);
        assert_eq!(ts.l1_norm(), 7.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        TimeSeries::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_length_mismatch_panics() {
        TimeSeries::zeros(2).add(&TimeSeries::zeros(3));
    }

    #[test]
    fn serde_roundtrip() {
        let ts = TimeSeries::new(vec![1.5, -2.5]);
        let json = serde_json::to_string(&ts).unwrap();
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ts);
    }
}
