//! CSV import/export for datasets.
//!
//! The synthetic generators stand in for the license-gated CER data
//! (DESIGN.md §4); license holders can load the real thing — or any
//! aligned-series CSV — through this module and run every experiment
//! unchanged.
//!
//! Format: one series per row, comma-separated values; an optional first
//! column may carry an integer group label (`load_labeled`). Blank lines and
//! `#` comments are skipped.

use crate::datasets::LabeledDataset;
use crate::TimeSeries;
use std::fmt;
use std::path::Path;

/// Errors from dataset parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a number (row, column, content).
    BadNumber {
        /// 1-based row in the file.
        row: usize,
        /// 1-based column.
        column: usize,
        /// Offending cell content.
        content: String,
    },
    /// Rows have differing lengths (row, expected, got).
    RaggedRow {
        /// 1-based row in the file.
        row: usize,
        /// Length of the first data row.
        expected: usize,
        /// Length of this row.
        got: usize,
    },
    /// The file contained no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::BadNumber {
                row,
                column,
                content,
            } => write!(f, "row {row}, column {column}: cannot parse {content:?}"),
            CsvError::RaggedRow { row, expected, got } => {
                write!(f, "row {row}: expected {expected} values, got {got}")
            }
            CsvError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses unlabeled series from CSV text.
pub fn parse_series(text: &str) -> Result<Vec<TimeSeries>, CsvError> {
    let mut out = Vec::new();
    let mut expected = None;
    for (row_idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut values = Vec::new();
        for (col_idx, cell) in line.split(',').enumerate() {
            let v: f64 = cell.trim().parse().map_err(|_| CsvError::BadNumber {
                row: row_idx + 1,
                column: col_idx + 1,
                content: cell.trim().to_string(),
            })?;
            values.push(v);
        }
        match expected {
            None => expected = Some(values.len()),
            Some(e) if e != values.len() => {
                return Err(CsvError::RaggedRow {
                    row: row_idx + 1,
                    expected: e,
                    got: values.len(),
                })
            }
            _ => {}
        }
        out.push(TimeSeries::new(values));
    }
    if out.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(out)
}

/// Parses labeled series: first column is an integer group label.
pub fn parse_labeled(text: &str, name: &str) -> Result<LabeledDataset, CsvError> {
    let mut series = Vec::new();
    let mut labels = Vec::new();
    let mut expected = None;
    for (row_idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cells = line.split(',');
        let label_cell = cells.next().unwrap_or("").trim();
        let label: usize = label_cell.parse().map_err(|_| CsvError::BadNumber {
            row: row_idx + 1,
            column: 1,
            content: label_cell.to_string(),
        })?;
        let mut values = Vec::new();
        for (col_idx, cell) in cells.enumerate() {
            let v: f64 = cell.trim().parse().map_err(|_| CsvError::BadNumber {
                row: row_idx + 1,
                column: col_idx + 2,
                content: cell.trim().to_string(),
            })?;
            values.push(v);
        }
        match expected {
            None => expected = Some(values.len()),
            Some(e) if e != values.len() => {
                return Err(CsvError::RaggedRow {
                    row: row_idx + 1,
                    expected: e,
                    got: values.len(),
                })
            }
            _ => {}
        }
        series.push(TimeSeries::new(values));
        labels.push(label);
    }
    if series.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(LabeledDataset::new(name, series, labels))
}

/// Loads unlabeled series from a file.
pub fn load_series(path: impl AsRef<Path>) -> Result<Vec<TimeSeries>, CsvError> {
    parse_series(&std::fs::read_to_string(path)?)
}

/// Loads a labeled dataset from a file (first column = label).
pub fn load_labeled(path: impl AsRef<Path>, name: &str) -> Result<LabeledDataset, CsvError> {
    parse_labeled(&std::fs::read_to_string(path)?, name)
}

/// Renders series as CSV text (one row per series).
pub fn to_csv(series: &[TimeSeries]) -> String {
    let mut out = String::new();
    for ts in series {
        let row: Vec<String> = ts.values().iter().map(|v| v.to_string()).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = "1.0,2.5,-3.0\n4.0,5.0,6.0\n";
        let series = parse_series(text).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].values(), &[1.0, 2.5, -3.0]);
        // Semantic roundtrip (rendering may drop trailing ".0").
        assert_eq!(parse_series(&to_csv(&series)).unwrap(), series);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# household profiles\n\n1,2\n# mid comment\n3,4\n";
        let series = parse_series(text).unwrap();
        assert_eq!(series.len(), 2);
    }

    #[test]
    fn labeled_parsing() {
        let text = "0,1.0,2.0\n1,3.0,4.0\n0,5.0,6.0\n";
        let ds = parse_labeled(text, "test").unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.labels, vec![0, 1, 0]);
        assert_eq!(ds.series[1].values(), &[3.0, 4.0]);
    }

    #[test]
    fn bad_number_reports_position() {
        let err = parse_series("1.0,abc\n").unwrap_err();
        match err {
            CsvError::BadNumber {
                row,
                column,
                content,
            } => {
                assert_eq!((row, column), (1, 2));
                assert_eq!(content, "abc");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = parse_series("1,2,3\n4,5\n").unwrap_err();
        assert!(matches!(
            err,
            CsvError::RaggedRow {
                row: 2,
                expected: 3,
                got: 2
            }
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            parse_series("# only comments\n"),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cs_timeseries_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.csv");
        let series = vec![
            TimeSeries::new(vec![1.5, 2.5]),
            TimeSeries::new(vec![3.5, 4.5]),
        ];
        std::fs::write(&path, to_csv(&series)).unwrap();
        let back = load_series(&path).unwrap();
        assert_eq!(back, series);
        std::fs::remove_dir_all(&dir).ok();
    }
}
