//! CER-like electricity-consumption generator.
//!
//! The CER Electricity Customer Behaviour Trial [ISSDA 2012] recorded
//! half-hourly consumption of Irish homes and businesses. The license
//! prevents shipping it; this generator produces the structure the demo
//! exploits: distinct household archetypes (the "consumption groups" an
//! individual discovers through clustering) with realistic daily shapes,
//! weekday/weekend modulation, appliance spikes, and autocorrelated noise.

use super::LabeledDataset;
use crate::TimeSeries;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Household archetypes, each a recognizable load shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Archetype {
    /// Two pronounced peaks (breakfast, dinner), low daytime usage.
    CommuterCouple,
    /// High, flat daytime usage (home office / retirees).
    DaytimeHome,
    /// Late-evening and night usage dominates.
    NightOwl,
    /// Business: high weekday 9-to-5 plateau, quiet weekends.
    SmallBusiness,
    /// Electric-heating home: high base load with cold-morning boost.
    ElectricHeating,
}

impl Archetype {
    /// All archetypes in a fixed order (label = index in this slice).
    pub const ALL: [Archetype; 5] = [
        Archetype::CommuterCouple,
        Archetype::DaytimeHome,
        Archetype::NightOwl,
        Archetype::SmallBusiness,
        Archetype::ElectricHeating,
    ];

    /// Expected consumption (kW) at `hour ∈ [0, 24)` on a weekday (`weekend`
    /// toggles the weekend shape).
    fn expected_load(&self, hour: f64, weekend: bool) -> f64 {
        let bump = |center: f64, width: f64, height: f64| -> f64 {
            // wrap-around Gaussian bump on the 24h circle
            let mut d = (hour - center).abs();
            if d > 12.0 {
                d = 24.0 - d;
            }
            height * (-d * d / (2.0 * width * width)).exp()
        };
        match self {
            Archetype::CommuterCouple => {
                let base = 0.25;
                let morning = if weekend {
                    bump(9.5, 1.5, 0.9)
                } else {
                    bump(7.0, 1.0, 1.1)
                };
                let evening = bump(19.0, 2.0, 1.6);
                base + morning + evening
            }
            Archetype::DaytimeHome => {
                0.4 + bump(8.0, 1.2, 0.6) + bump(13.0, 4.0, 1.0) + bump(19.5, 2.0, 1.0)
            }
            Archetype::NightOwl => {
                0.3 + bump(23.0, 2.5, 1.4) + bump(2.0, 2.0, 1.0) + bump(13.0, 2.0, 0.3)
            }
            Archetype::SmallBusiness => {
                let base = 0.35;
                if weekend {
                    base + bump(12.0, 4.0, 0.2)
                } else {
                    // plateau approximated by overlapping bumps
                    base + bump(10.0, 2.5, 1.8) + bump(14.5, 2.5, 1.8)
                }
            }
            Archetype::ElectricHeating => 1.1 + bump(6.5, 1.5, 1.5) + bump(21.0, 2.5, 1.2),
        }
    }
}

/// Configuration of the generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CerConfig {
    /// Number of households (series).
    pub households: usize,
    /// Days covered by each series.
    pub days: usize,
    /// Readings per day (48 = half-hourly like CER; 24 = hourly).
    pub readings_per_day: usize,
    /// Multiplicative per-household size factor spread (log-uniform width).
    pub size_spread: f64,
    /// Std-dev of the AR(1) measurement noise, in kW.
    pub noise_level: f64,
    /// Probability per reading of an appliance spike.
    pub spike_probability: f64,
}

impl Default for CerConfig {
    fn default() -> Self {
        CerConfig {
            households: 1000,
            days: 7,
            readings_per_day: 24,
            size_spread: 0.35,
            noise_level: 0.08,
            spike_probability: 0.01,
        }
    }
}

/// Generates a CER-like dataset; labels are archetype indices.
pub fn generate<R: Rng + ?Sized>(config: &CerConfig, rng: &mut R) -> LabeledDataset {
    assert!(config.households > 0 && config.days > 0 && config.readings_per_day > 0);
    let len = config.days * config.readings_per_day;
    let mut series = Vec::with_capacity(config.households);
    let mut labels = Vec::with_capacity(config.households);
    for _ in 0..config.households {
        let label = rng.gen_range(0..Archetype::ALL.len());
        let archetype = Archetype::ALL[label];
        // Household size factor: log-uniform around 1.
        let size = ((rng.gen::<f64>() * 2.0 - 1.0) * config.size_spread).exp();
        // Personal phase shift: people's schedules differ by ±1h.
        let phase = (rng.gen::<f64>() * 2.0 - 1.0) * 1.0;
        let mut noise = 0.0f64;
        let mut values = Vec::with_capacity(len);
        for t in 0..len {
            let day = t / config.readings_per_day;
            let weekend = day % 7 >= 5;
            let hour = (t % config.readings_per_day) as f64 * 24.0 / config.readings_per_day as f64
                + phase;
            let hour = hour.rem_euclid(24.0);
            let mut load = size * archetype.expected_load(hour, weekend);
            // AR(1) noise: consumption errors are autocorrelated.
            noise = 0.7 * noise + config.noise_level * crate::datasets::cer::gauss(rng);
            load += noise;
            if rng.gen::<f64>() < config.spike_probability {
                load += rng.gen::<f64>() * 1.5; // kettle/oven event
            }
            // Seasonal-ish slow modulation across days.
            load *= 1.0 + 0.05 * (2.0 * PI * day as f64 / 30.0).sin();
            values.push(load.max(0.0));
        }
        series.push(TimeSeries::new(values));
        labels.push(label);
    }
    LabeledDataset::new("cer-like", series, labels)
}

/// One standard normal draw (polar method) — private helper so the crate does
/// not depend on `cs-dp`.
fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::Normalization;
    use crate::Distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> CerConfig {
        CerConfig {
            households: 60,
            days: 2,
            readings_per_day: 24,
            ..CerConfig::default()
        }
    }

    #[test]
    fn shape_and_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = generate(&small_config(), &mut rng);
        assert_eq!(ds.len(), 60);
        assert_eq!(ds.series_len(), 48);
        assert!(ds.group_count() <= 5);
        assert!(ds.labels.iter().all(|&l| l < 5));
    }

    #[test]
    fn consumption_is_non_negative() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = generate(&small_config(), &mut rng);
        for s in &ds.series {
            assert!(s.min().unwrap() >= 0.0);
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let a = generate(&small_config(), &mut StdRng::seed_from_u64(3));
        let b = generate(&small_config(), &mut StdRng::seed_from_u64(3));
        assert_eq!(a.series[0], b.series[0]);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn same_archetype_closer_than_different() {
        // Average intra-archetype distance must undercut inter-archetype
        // distance on normalized shapes — otherwise clustering is hopeless.
        let mut rng = StdRng::seed_from_u64(4);
        let config = CerConfig {
            households: 120,
            days: 3,
            ..CerConfig::default()
        };
        let ds = generate(&config, &mut rng);
        let normed = Normalization::ZScore.apply_all(&ds.series);
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        for i in 0..normed.len() {
            for j in i + 1..normed.len() {
                let d = Distance::SquaredEuclidean.compute(&normed[i], &normed[j]);
                if ds.labels[i] == ds.labels[j] {
                    intra = (intra.0 + d, intra.1 + 1);
                } else {
                    inter = (inter.0 + d, inter.1 + 1);
                }
            }
        }
        let intra_avg = intra.0 / intra.1 as f64;
        let inter_avg = inter.0 / inter.1 as f64;
        assert!(
            intra_avg < inter_avg * 0.9,
            "intra {intra_avg} must be well below inter {inter_avg}"
        );
    }

    #[test]
    fn business_quieter_on_weekends() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = CerConfig {
            households: 200,
            days: 7,
            noise_level: 0.0,
            spike_probability: 0.0,
            ..CerConfig::default()
        };
        let ds = generate(&config, &mut rng);
        let rp = config.readings_per_day;
        let business_label = 3; // SmallBusiness in Archetype::ALL
        let mut weekday_sum = 0.0;
        let mut weekend_sum = 0.0;
        let mut count = 0;
        for (s, &l) in ds.series.iter().zip(&ds.labels) {
            if l != business_label {
                continue;
            }
            count += 1;
            weekday_sum += s.values()[..5 * rp].iter().sum::<f64>() / (5 * rp) as f64;
            weekend_sum += s.values()[5 * rp..].iter().sum::<f64>() / (2 * rp) as f64;
        }
        assert!(count > 10, "need enough businesses in the sample");
        let weekend_avg = weekend_sum / count as f64;
        let weekday_avg = weekday_sum / count as f64;
        assert!(
            weekend_avg < weekday_avg * 0.8,
            "weekend load must drop for businesses: {weekend_avg} vs {weekday_avg}"
        );
    }
}
