//! NUMED-like tumor-growth generator (Claret et al. TGI model).
//!
//! The paper's NUMED dataset "contains time-series representing the tumor
//! growth of cancer suffering patients synthetically generated based on
//! mathematical models [Claret et al., J. Clin. Onc. 31(17)]". The Claret
//! tumor-growth-inhibition model has the closed form
//!
//! ```text
//! y(t) = y0 · exp( KL·t − KD0·E·(1 − e^{−λt}) / λ )
//! ```
//!
//! with growth rate `KL`, initial drug-kill rate `KD0`, exposure `E`, and
//! resistance-appearance rate `λ`. Cohorts (responder / stable / progressive)
//! arise from the parameter regime each patient is drawn from — these are the
//! ground-truth groups the clustering should rediscover.

use super::LabeledDataset;
use crate::TimeSeries;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Patient cohorts with distinct parameter regimes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cohort {
    /// Strong, durable response: tumor shrinks steadily.
    Responder,
    /// Initial shrinkage, then regrowth as resistance appears.
    RelapsingResponder,
    /// Roughly stable disease.
    Stable,
    /// Progressive disease: sustained growth.
    Progressive,
}

impl Cohort {
    /// All cohorts (label = index).
    pub const ALL: [Cohort; 4] = [
        Cohort::Responder,
        Cohort::RelapsingResponder,
        Cohort::Stable,
        Cohort::Progressive,
    ];

    /// Mean `(KL, KD0, lambda)` per week for the cohort (exposure folded
    /// into KD0). Values chosen so trajectories separate over the demo's
    /// twenty-week horizon.
    fn params(&self) -> (f64, f64, f64) {
        match self {
            Cohort::Responder => (0.015, 0.090, 0.01),
            Cohort::RelapsingResponder => (0.040, 0.110, 0.25),
            Cohort::Stable => (0.025, 0.028, 0.02),
            Cohort::Progressive => (0.055, 0.012, 0.10),
        }
    }
}

/// Generator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NumedConfig {
    /// Number of patients.
    pub patients: usize,
    /// Number of weekly measurements (the demo shows "twenty weeks").
    pub weeks: usize,
    /// Relative jitter applied to each patient's parameters.
    pub parameter_jitter: f64,
    /// Relative measurement noise on each observation.
    pub measurement_noise: f64,
    /// Mean baseline tumor size in millimeters.
    pub baseline_mm: f64,
}

impl Default for NumedConfig {
    fn default() -> Self {
        NumedConfig {
            patients: 1000,
            weeks: 20,
            parameter_jitter: 0.15,
            measurement_noise: 0.03,
            baseline_mm: 60.0,
        }
    }
}

/// The Claret TGI closed form.
pub fn claret_tumor_size(y0: f64, kl: f64, kd0: f64, lambda: f64, t_weeks: f64) -> f64 {
    let kill_integral = if lambda.abs() < 1e-12 {
        kd0 * t_weeks
    } else {
        kd0 * (1.0 - (-lambda * t_weeks).exp()) / lambda
    };
    y0 * (kl * t_weeks - kill_integral).exp()
}

/// Generates a NUMED-like cohort dataset; labels are cohort indices.
pub fn generate<R: Rng + ?Sized>(config: &NumedConfig, rng: &mut R) -> LabeledDataset {
    assert!(config.patients > 0 && config.weeks > 0);
    let mut series = Vec::with_capacity(config.patients);
    let mut labels = Vec::with_capacity(config.patients);
    for _ in 0..config.patients {
        let label = rng.gen_range(0..Cohort::ALL.len());
        let cohort = Cohort::ALL[label];
        let (kl0, kd00, lam0) = cohort.params();
        let jitter = |rng: &mut R, v: f64| {
            v * (1.0 + (rng.gen::<f64>() * 2.0 - 1.0) * config.parameter_jitter)
        };
        let kl = jitter(rng, kl0);
        let kd0 = jitter(rng, kd00);
        let lambda = jitter(rng, lam0);
        let y0 = config.baseline_mm * (0.6 + 0.8 * rng.gen::<f64>());
        let values: Vec<f64> = (0..config.weeks)
            .map(|w| {
                let clean = claret_tumor_size(y0, kl, kd0, lambda, w as f64);
                let noisy =
                    clean * (1.0 + (rng.gen::<f64>() * 2.0 - 1.0) * config.measurement_noise);
                noisy.max(0.0)
            })
            .collect();
        series.push(TimeSeries::new(values));
        labels.push(label);
    }
    LabeledDataset::new("numed-like", series, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> NumedConfig {
        NumedConfig {
            patients: 80,
            ..NumedConfig::default()
        }
    }

    #[test]
    fn shape_and_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = generate(&small_config(), &mut rng);
        assert_eq!(ds.len(), 80);
        assert_eq!(ds.series_len(), 20);
        assert!(ds.labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn claret_closed_form_properties() {
        // No treatment effect (kd0 = 0): pure exponential growth.
        let grown = claret_tumor_size(50.0, 0.05, 0.0, 0.1, 10.0);
        assert!((grown - 50.0 * (0.5f64).exp()).abs() < 1e-9);
        // Strong durable kill: shrinkage below baseline.
        let shrunk = claret_tumor_size(50.0, 0.01, 0.1, 0.0, 10.0);
        assert!(shrunk < 50.0);
        // t = 0 returns the baseline exactly.
        assert_eq!(claret_tumor_size(42.0, 0.1, 0.1, 0.1, 0.0), 42.0);
    }

    #[test]
    fn responders_shrink_progressives_grow() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = NumedConfig {
            patients: 400,
            measurement_noise: 0.0,
            ..NumedConfig::default()
        };
        let ds = generate(&config, &mut rng);
        let mut ratios = [0.0f64; 4];
        let mut counts = [0usize; 4];
        for (s, &l) in ds.series.iter().zip(&ds.labels) {
            let v = s.values();
            ratios[l] += v[v.len() - 1] / v[0];
            counts[l] += 1;
        }
        for (r, c) in ratios.iter_mut().zip(counts) {
            *r /= c.max(1) as f64;
        }
        // Cohort order: Responder, RelapsingResponder, Stable, Progressive.
        assert!(ratios[0] < 0.75, "responders shrink: {}", ratios[0]);
        assert!(ratios[3] > 1.5, "progressives grow: {}", ratios[3]);
        assert!(
            (0.7..1.4).contains(&ratios[2]),
            "stable stays near 1: {}",
            ratios[2]
        );
    }

    #[test]
    fn relapsing_cohort_dips_then_regrows() {
        let (kl, kd0, lambda) = Cohort::RelapsingResponder.params();
        let traj: Vec<f64> = (0..20)
            .map(|w| claret_tumor_size(60.0, kl, kd0, lambda, w as f64))
            .collect();
        let min_idx = traj
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx > 0 && min_idx < 19,
            "nadir strictly inside: {min_idx}"
        );
        assert!(traj[19] > traj[min_idx] * 1.05, "regrowth after nadir");
    }

    #[test]
    fn deterministic_with_seed() {
        let a = generate(&small_config(), &mut StdRng::seed_from_u64(9));
        let b = generate(&small_config(), &mut StdRng::seed_from_u64(9));
        assert_eq!(a.series[5], b.series[5]);
    }

    #[test]
    fn sizes_are_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = generate(&small_config(), &mut rng);
        for s in &ds.series {
            assert!(s.min().unwrap() >= 0.0);
        }
    }
}
