//! Synthetic dataset generators.
//!
//! The demo runs Chiaroscuro "over a real dataset and a synthetic one": the
//! CER electricity-consumption trial and NUMED tumor-growth series. CER is
//! distributed under an ISSDA license we cannot ship; [`cer`] generates
//! structurally equivalent household load profiles (the demo needs the data
//! only as clusterable profiles with recognizable consumption groups). NUMED
//! was itself synthetic, "generated based on mathematical models" — [`numed`]
//! implements that model family (Claret et al. tumor growth inhibition).
//! [`blobs`] adds a fully controlled generator with exact ground truth for
//! validating clustering quality metrics.

pub mod blobs;
pub mod cer;
pub mod numed;

use crate::TimeSeries;
use serde::{Deserialize, Serialize};

/// A dataset with per-series ground-truth group labels.
///
/// Labels come from the generator (which archetype/cohort produced each
/// series) and are used only for evaluation — the protocol never sees them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LabeledDataset {
    /// Generator name (for logs and experiment tables).
    pub name: String,
    /// The series, all of equal length.
    pub series: Vec<TimeSeries>,
    /// Ground-truth group of each series (`labels.len() == series.len()`).
    pub labels: Vec<usize>,
}

impl LabeledDataset {
    /// Builds a dataset, validating shape invariants.
    pub fn new(name: impl Into<String>, series: Vec<TimeSeries>, labels: Vec<usize>) -> Self {
        assert_eq!(series.len(), labels.len(), "one label per series");
        if let Some(first) = series.first() {
            assert!(
                series.iter().all(|s| s.len() == first.len()),
                "all series must share one length"
            );
        }
        LabeledDataset {
            name: name.into(),
            series,
            labels,
        }
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` iff the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Length of each series (0 for an empty dataset).
    pub fn series_len(&self) -> usize {
        self.series.first().map_or(0, |s| s.len())
    }

    /// Number of distinct ground-truth groups.
    pub fn group_count(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariants_checked() {
        let ds = LabeledDataset::new(
            "t",
            vec![TimeSeries::zeros(3), TimeSeries::zeros(3)],
            vec![0, 1],
        );
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.series_len(), 3);
        assert_eq!(ds.group_count(), 2);
    }

    #[test]
    #[should_panic(expected = "one label per series")]
    fn label_count_mismatch_panics() {
        LabeledDataset::new("t", vec![TimeSeries::zeros(3)], vec![]);
    }

    #[test]
    #[should_panic(expected = "share one length")]
    fn ragged_series_panics() {
        LabeledDataset::new(
            "t",
            vec![TimeSeries::zeros(3), TimeSeries::zeros(4)],
            vec![0, 0],
        );
    }
}
