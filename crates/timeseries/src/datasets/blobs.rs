//! Controlled Gaussian "blob" series with exact ground truth.
//!
//! Centers are smooth random curves (low-order random Fourier series);
//! members are a center plus i.i.d. Gaussian noise. Because the generative
//! truth is exact and tunable, this generator validates clustering quality
//! metrics and makes separability a dial in experiments.

use super::LabeledDataset;
use crate::TimeSeries;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Generator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlobsConfig {
    /// Number of series.
    pub count: usize,
    /// Length of each series.
    pub len: usize,
    /// Number of clusters (centers).
    pub clusters: usize,
    /// Amplitude of the random centers.
    pub center_amplitude: f64,
    /// Std-dev of member noise around its center — the separability dial.
    pub noise: f64,
    /// Number of Fourier harmonics per center (smoothness).
    pub harmonics: usize,
}

impl Default for BlobsConfig {
    fn default() -> Self {
        BlobsConfig {
            count: 500,
            len: 24,
            clusters: 4,
            center_amplitude: 3.0,
            noise: 0.4,
            harmonics: 3,
        }
    }
}

/// Generates the blob dataset and returns it together with the true centers.
pub fn generate_with_centers<R: Rng + ?Sized>(
    config: &BlobsConfig,
    rng: &mut R,
) -> (LabeledDataset, Vec<TimeSeries>) {
    assert!(config.count > 0 && config.len > 0 && config.clusters > 0);
    let centers: Vec<TimeSeries> = (0..config.clusters)
        .map(|_| random_smooth_curve(config, rng))
        .collect();
    let mut series = Vec::with_capacity(config.count);
    let mut labels = Vec::with_capacity(config.count);
    for _ in 0..config.count {
        let label = rng.gen_range(0..config.clusters);
        let center = &centers[label];
        let values: Vec<f64> = center
            .values()
            .iter()
            .map(|v| v + config.noise * gauss(rng))
            .collect();
        series.push(TimeSeries::new(values));
        labels.push(label);
    }
    (LabeledDataset::new("blobs", series, labels), centers)
}

/// Generates only the dataset (centers discarded).
pub fn generate<R: Rng + ?Sized>(config: &BlobsConfig, rng: &mut R) -> LabeledDataset {
    generate_with_centers(config, rng).0
}

fn random_smooth_curve<R: Rng + ?Sized>(config: &BlobsConfig, rng: &mut R) -> TimeSeries {
    let offset = (rng.gen::<f64>() * 2.0 - 1.0) * config.center_amplitude;
    let harmonics: Vec<(f64, f64, f64)> = (1..=config.harmonics)
        .map(|h| {
            (
                h as f64,
                (rng.gen::<f64>() * 2.0 - 1.0) * config.center_amplitude / h as f64,
                rng.gen::<f64>() * 2.0 * PI,
            )
        })
        .collect();
    TimeSeries::from_fn(config.len, |i| {
        let x = i as f64 / config.len as f64;
        offset
            + harmonics
                .iter()
                .map(|(h, amp, phase)| amp * (2.0 * PI * h * x + phase).sin())
                .sum::<f64>()
    })
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_determinism() {
        let config = BlobsConfig {
            count: 50,
            ..BlobsConfig::default()
        };
        let a = generate(&config, &mut StdRng::seed_from_u64(1));
        let b = generate(&config, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.len(), 50);
        assert_eq!(a.series_len(), 24);
        assert_eq!(a.series[7], b.series[7]);
    }

    #[test]
    fn members_cluster_around_their_center() {
        let config = BlobsConfig {
            count: 200,
            noise: 0.2,
            ..BlobsConfig::default()
        };
        let (ds, centers) = generate_with_centers(&config, &mut StdRng::seed_from_u64(2));
        let mut correct = 0;
        for (s, &l) in ds.series.iter().zip(&ds.labels) {
            let nearest = centers
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    Distance::SquaredEuclidean
                        .compute(s, a.1)
                        .partial_cmp(&Distance::SquaredEuclidean.compute(s, b.1))
                        .unwrap()
                })
                .unwrap()
                .0;
            if nearest == l {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / ds.len() as f64 > 0.95,
            "low-noise members must sit closest to their own center ({correct}/200)"
        );
    }

    #[test]
    fn noise_dial_controls_spread() {
        let tight_cfg = BlobsConfig {
            count: 100,
            noise: 0.05,
            ..BlobsConfig::default()
        };
        let loose_cfg = BlobsConfig {
            count: 100,
            noise: 2.0,
            ..BlobsConfig::default()
        };
        let (tight, tc) = generate_with_centers(&tight_cfg, &mut StdRng::seed_from_u64(3));
        let (loose, lc) = generate_with_centers(&loose_cfg, &mut StdRng::seed_from_u64(3));
        let spread = |ds: &LabeledDataset, centers: &[TimeSeries]| -> f64 {
            ds.series
                .iter()
                .zip(&ds.labels)
                .map(|(s, &l)| Distance::SquaredEuclidean.compute(s, &centers[l]))
                .sum::<f64>()
                / ds.len() as f64
        };
        assert!(spread(&tight, &tc) * 10.0 < spread(&loose, &lc));
    }
}
