//! Small statistics helpers shared by generators, metrics, and experiments.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (unbiased, 0 for fewer than two values).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (`NaN` for an empty slice). Sorts a copy.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// `p`-quantile via linear interpolation, `p ∈ [0, 1]`.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p out of range");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let pos = p * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (pos - lo as f64) * (v[hi] - v[lo])
    }
}

/// Root-mean-square error between two equal-length slices.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    (a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>() / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 4.571428571428571).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn quantiles() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.25), 1.0);
    }

    #[test]
    fn rmse_known() {
        assert_eq!(rmse(&[0.0, 0.0], &[3.0, 4.0]), (12.5f64).sqrt());
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }
}
