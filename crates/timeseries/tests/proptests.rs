//! Property-based tests for the time-series toolkit.

use cs_timeseries::dtw::dtw;
use cs_timeseries::normalize::Normalization;
use cs_timeseries::smooth::Smoothing;
use cs_timeseries::subsequence::{closest_profiles, MatchMeasure};
use cs_timeseries::{Distance, TimeSeries};
use proptest::prelude::*;

fn ts_strategy(len: std::ops::Range<usize>) -> impl Strategy<Value = TimeSeries> {
    proptest::collection::vec(-1000.0f64..1000.0, len).prop_map(TimeSeries::new)
}

/// Two series of one shared random length.
fn ts_pair(max_len: usize) -> impl Strategy<Value = (TimeSeries, TimeSeries)> {
    (1..max_len).prop_flat_map(|len| {
        (
            proptest::collection::vec(-1000.0f64..1000.0, len).prop_map(TimeSeries::new),
            proptest::collection::vec(-1000.0f64..1000.0, len).prop_map(TimeSeries::new),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distances_are_symmetric_and_positive((a, b) in ts_pair(32)) {
        for d in [Distance::SquaredEuclidean, Distance::Euclidean, Distance::Manhattan] {
            let ab = d.compute(&a, &b);
            let ba = d.compute(&b, &a);
            prop_assert!(ab >= 0.0);
            prop_assert!((ab - ba).abs() < 1e-9);
        }
        prop_assert_eq!(Distance::Euclidean.compute(&a, &a), 0.0);
    }

    #[test]
    fn euclidean_triangle_inequality(
        values in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0), 1..16),
    ) {
        let a: TimeSeries = values.iter().map(|v| v.0).collect();
        let b: TimeSeries = values.iter().map(|v| v.1).collect();
        let c: TimeSeries = values.iter().map(|v| v.2).collect();
        let d = Distance::Euclidean;
        prop_assert!(d.compute(&a, &c) <= d.compute(&a, &b) + d.compute(&b, &c) + 1e-6);
    }

    #[test]
    fn dtw_bounded_by_euclidean((a, b) in ts_pair(20)) {
        // Unconstrained DTW can always pick the diagonal path, so it is
        // never worse than lock-step Euclidean.
        let d_dtw = dtw(&a, &b, None);
        let d_euc = Distance::Euclidean.compute(&a, &b);
        prop_assert!(d_dtw <= d_euc + 1e-9, "dtw {d_dtw} > euclidean {d_euc}");
        prop_assert!((dtw(&a, &b, None) - dtw(&b, &a, None)).abs() < 1e-9, "symmetry");
    }

    #[test]
    fn zscore_standardizes(a in ts_strategy(2..64)) {
        prop_assume!(a.std_dev() > 1e-9);
        let z = Normalization::ZScore.apply(&a);
        prop_assert!(z.mean().abs() < 1e-9);
        prop_assert!((z.std_dev() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn minmax_bounded(a in ts_strategy(1..64)) {
        let m = Normalization::MinMax.apply(&a);
        prop_assert!(m.min().unwrap() >= -1e-12);
        prop_assert!(m.max().unwrap() <= 1.0 + 1e-12);
    }

    #[test]
    fn normalization_is_shape_invariant_to_affine(
        a in ts_strategy(3..32),
        scale in 0.1f64..100.0,
        offset in -100.0f64..100.0,
    ) {
        prop_assume!(a.std_dev() > 1e-6);
        let transformed: TimeSeries = a.values().iter().map(|v| v * scale + offset).collect();
        let za = Normalization::ZScore.apply(&a);
        let zt = Normalization::ZScore.apply(&transformed);
        for (x, y) in za.values().iter().zip(zt.values()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn smoothing_preserves_length_and_constants(
        a in ts_strategy(1..40),
        window in 1usize..9,
        alpha in 0.05f64..1.0,
    ) {
        for s in [
            Smoothing::MovingAverage { window },
            Smoothing::Exponential { alpha },
        ] {
            let out = s.apply(&a);
            prop_assert_eq!(out.len(), a.len());
            // Smoothed values stay inside the input's range (convexity).
            if let (Some(lo), Some(hi)) = (a.min(), a.max()) {
                prop_assert!(out.min().unwrap() >= lo - 1e-9);
                prop_assert!(out.max().unwrap() <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn best_window_is_really_the_best(
        profile in ts_strategy(8..40),
        qstart in 0usize..8,
        qlen in 2usize..6,
    ) {
        prop_assume!(qstart + qlen <= profile.len());
        // A query cut from the profile itself must match at distance 0.
        let query = profile.window(qstart, qlen);
        let matches = closest_profiles(
            &query,
            std::slice::from_ref(&profile),
            MatchMeasure::Pointwise(Distance::SquaredEuclidean),
        );
        prop_assert_eq!(matches.len(), 1);
        prop_assert!(matches[0].distance < 1e-9);
    }

    #[test]
    fn window_and_l1_consistency(a in ts_strategy(4..40)) {
        let half = a.len() / 2;
        let left = a.window(0, half);
        let right = a.window(half, a.len() - half);
        prop_assert!((left.l1_norm() + right.l1_norm() - a.l1_norm()).abs() < 1e-6);
    }
}
