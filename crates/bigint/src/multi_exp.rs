//! Straus (interleaved) multi-exponentiation and batched modular inversion.
//!
//! Threshold combination evaluates `Π_i base_i^{exp_i} mod n` for a handful
//! of bases whose exponents are small signed Lagrange multiples. Computing
//! each factor with its own [`MontgomeryCtx::pow_mod`] repeats the squaring
//! chain (and a 15-entry window table) per base; the Straus trick shares one
//! squaring chain across all bases, multiplying each base's windowed digit
//! in as the chain passes its position. Negative exponents accumulate into a
//! separate denominator product over the same chain, so a whole combine
//! costs one chain plus a single modular inversion — and even that inversion
//! can be amortized across many combines with [`batch_inverse`]
//! (Montgomery's trick: k inversions for the price of one plus `3(k-1)`
//! multiplications).

use crate::montgomery::MontgomeryCtx;
use crate::BigUint;

/// One `base^exp` factor of a multi-exponentiation, with the exponent's
/// sign carried alongside its magnitude (exponents in the Lagrange combine
/// are integers that may be negative).
#[derive(Clone, Debug)]
pub struct MultiExpTerm {
    /// The base, reduced mod the context modulus by the evaluator.
    pub base: BigUint,
    /// The exponent magnitude.
    pub exp: BigUint,
    /// Whether the factor contributes `base^{-exp}` (i.e. to the
    /// denominator product).
    pub negative: bool,
}

/// `Π base_i^{exp_i} mod n` over non-negative exponents, one shared
/// squaring chain across all bases.
///
/// ```
/// use cs_bigint::{multi_exp::multi_exp, BigUint, MontgomeryCtx};
///
/// let m = BigUint::from(1_000_000_007u64);
/// let ctx = MontgomeryCtx::new(&m);
/// let terms = [
///     (BigUint::from(3u64), BigUint::from(20u64)),
///     (BigUint::from(7u64), BigUint::from(13u64)),
/// ];
/// let naive = ctx.mul_mod(
///     &ctx.pow_mod(&terms[0].0, &terms[0].1),
///     &ctx.pow_mod(&terms[1].0, &terms[1].1),
/// );
/// assert_eq!(multi_exp(&ctx, &terms), naive);
/// ```
pub fn multi_exp(ctx: &MontgomeryCtx, terms: &[(BigUint, BigUint)]) -> BigUint {
    let signed: Vec<MultiExpTerm> = terms
        .iter()
        .map(|(base, exp)| MultiExpTerm {
            base: base.clone(),
            exp: exp.clone(),
            negative: false,
        })
        .collect();
    multi_exp_signed(ctx, &signed).0
}

/// Straus evaluation of a signed multi-exponentiation: returns
/// `(numerator, denominator)` where the true value is
/// `numerator · denominator^{-1} mod n`.
///
/// Both accumulators ride the same squaring chain, so t factors cost one
/// chain of `max_bits` doublings (twice that when any exponent is negative)
/// instead of t independent `pow_mod` chains. Windowed digit tables are
/// sized to the longest exponent: 4-bit windows with a 15-entry table per
/// base for long exponents, plain binary (no table) when every exponent is
/// short enough that table construction would dominate.
///
/// The caller owns the single inversion of the denominator (or batches it
/// across calls with [`batch_inverse`]). A denominator of 1 means no
/// negative exponents contributed.
pub fn multi_exp_signed(ctx: &MontgomeryCtx, terms: &[MultiExpTerm]) -> (BigUint, BigUint) {
    let modulus = ctx.modulus();
    let one = BigUint::one() % &modulus;
    let mut live: Vec<(BigUint, &BigUint, bool)> = terms
        .iter()
        .filter(|t| !t.exp.is_zero())
        .map(|t| (&t.base % &modulus, &t.exp, t.negative))
        .collect();
    // A zero base with a non-zero exponent collapses its side of the
    // fraction to zero; the Straus tables below assume unit-group
    // elements, so pull those terms out and zero the side afterwards.
    let num_zero = live.iter().any(|(b, _, neg)| b.is_zero() && !neg);
    let den_zero = live.iter().any(|(b, _, neg)| b.is_zero() && *neg);
    live.retain(|(b, _, _)| !b.is_zero());
    if live.is_empty() {
        let num = if num_zero {
            BigUint::zero()
        } else {
            one.clone()
        };
        let den = if den_zero { BigUint::zero() } else { one };
        return (num, den);
    }

    let max_bits = live.iter().map(|(_, e, _)| e.bit_len()).max().unwrap_or(0);
    // Table construction costs 14 mont_muls per base at 4-bit windows; for
    // the short exponents of a Lagrange combine that outweighs the saved
    // window multiplications, so fall back to binary (window = 1).
    let window = if max_bits >= 32 { 4usize } else { 1 };
    let digits = (1usize << window) - 1;

    // Per-base digit tables in Montgomery form: table[b][d-1] = base_b^d.
    let tables: Vec<Vec<Vec<u64>>> = live
        .iter()
        .map(|(base, _, _)| {
            let base_m = ctx.to_mont(base);
            let mut t = Vec::with_capacity(digits);
            t.push(base_m.clone());
            for d in 1..digits {
                let prev = &t[d - 1];
                t.push(ctx.mont_mul(prev, &base_m));
            }
            t
        })
        .collect();

    let has_neg = live.iter().any(|(_, _, neg)| *neg);
    let mut num = ctx.one_mont();
    let mut den = ctx.one_mont();
    let top_window = max_bits.div_ceil(window);
    for w in (0..top_window).rev() {
        if w + 1 != top_window {
            for _ in 0..window {
                num = ctx.mont_sqr(&num);
                if has_neg {
                    den = ctx.mont_sqr(&den);
                }
            }
        }
        for (b, (_, exp, neg)) in live.iter().enumerate() {
            let mut digit = 0usize;
            for bit in (0..window).rev() {
                let idx = w * window + bit;
                digit <<= 1;
                if idx < exp.bit_len() && exp.bit(idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                let entry = &tables[b][digit - 1];
                if *neg {
                    den = ctx.mont_mul(&den, entry);
                } else {
                    num = ctx.mont_mul(&num, entry);
                }
            }
        }
    }
    let num = if num_zero {
        BigUint::zero()
    } else {
        ctx.from_mont(&num)
    };
    let den = if den_zero {
        BigUint::zero()
    } else {
        ctx.from_mont(&den)
    };
    (num, den)
}

/// Batched modular inversion (Montgomery's trick): inverts every value for
/// the cost of **one** extended-gcd inversion plus `3(k-1)` multiplications.
///
/// Returns `None` when any value is zero or shares a factor with the
/// modulus (the product is then not a unit, and neither is that value).
///
/// ```
/// use cs_bigint::{multi_exp::batch_inverse, BigUint, MontgomeryCtx};
///
/// let m = BigUint::from(1_000_003u64);
/// let ctx = MontgomeryCtx::new(&m);
/// let vals = [BigUint::from(42u64), BigUint::from(99u64)];
/// let invs = batch_inverse(&ctx, &vals).unwrap();
/// for (v, inv) in vals.iter().zip(&invs) {
///     assert!(ctx.mul_mod(v, inv).is_one());
/// }
/// ```
pub fn batch_inverse(ctx: &MontgomeryCtx, values: &[BigUint]) -> Option<Vec<BigUint>> {
    if values.is_empty() {
        return Some(Vec::new());
    }
    let modulus = ctx.modulus();
    // Prefix products: prefix[i] = v_0 · … · v_{i-1} mod n.
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = BigUint::one() % &modulus;
    for v in values {
        prefix.push(acc.clone());
        acc = ctx.mul_mod(&acc, v);
    }
    // One inversion of the full product …
    let mut inv_acc = acc.mod_inverse(&modulus)?;
    // … then peel values off the back: inv(v_i) = inv_suffix · prefix_i,
    // and fold v_i into the running suffix inverse.
    let mut out = vec![BigUint::zero(); values.len()];
    for i in (0..values.len()).rev() {
        out[i] = ctx.mul_mod(&inv_acc, &prefix[i]);
        inv_acc = ctx.mul_mod(&inv_acc, &values[i]);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::random_below;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_512() -> MontgomeryCtx {
        // An odd 128-bit modulus is plenty to exercise multi-limb paths.
        let m = BigUint::from_limbs(vec![0xffff_ffff_ffff_ff43, 0xdead_beef_cafe_f00d]);
        MontgomeryCtx::new(&m)
    }

    fn naive(ctx: &MontgomeryCtx, terms: &[(BigUint, BigUint)]) -> BigUint {
        let mut acc = BigUint::one() % &ctx.modulus();
        for (b, e) in terms {
            acc = ctx.mul_mod(&acc, &ctx.pow_mod(b, e));
        }
        acc
    }

    #[test]
    fn matches_naive_product_of_pow_mods() {
        let ctx = ctx_512();
        let mut rng = StdRng::seed_from_u64(7);
        for t in 0..6 {
            let terms: Vec<(BigUint, BigUint)> = (0..t)
                .map(|_| {
                    (
                        random_below(&mut rng, &ctx.modulus()),
                        random_below(&mut rng, &ctx.modulus()),
                    )
                })
                .collect();
            assert_eq!(multi_exp(&ctx, &terms), naive(&ctx, &terms), "t={t}");
        }
    }

    #[test]
    fn short_exponents_take_the_binary_path() {
        let ctx = ctx_512();
        let terms: Vec<(BigUint, BigUint)> = vec![
            (BigUint::from(17u64), BigUint::from(24u64)),
            (BigUint::from(23u64), BigUint::from(12u64)),
            (BigUint::from(29u64), BigUint::from(1u64)),
        ];
        assert_eq!(multi_exp(&ctx, &terms), naive(&ctx, &terms));
    }

    #[test]
    fn zero_exponent_terms_are_identity() {
        let ctx = ctx_512();
        let terms = vec![(BigUint::from(99u64), BigUint::zero())];
        assert!(multi_exp(&ctx, &terms).is_one());
        assert!(multi_exp(&ctx, &[]).is_one());
    }

    #[test]
    fn signed_split_agrees_with_manual_inversion() {
        let ctx = ctx_512();
        let mut rng = StdRng::seed_from_u64(11);
        let terms: Vec<MultiExpTerm> = (0..4)
            .map(|i| MultiExpTerm {
                base: random_below(&mut rng, &ctx.modulus()),
                exp: BigUint::from(3u64 + 5 * i as u64),
                negative: i % 2 == 1,
            })
            .collect();
        let (num, den) = multi_exp_signed(&ctx, &terms);
        let expect_num = naive(
            &ctx,
            &terms
                .iter()
                .filter(|t| !t.negative)
                .map(|t| (t.base.clone(), t.exp.clone()))
                .collect::<Vec<_>>(),
        );
        let expect_den = naive(
            &ctx,
            &terms
                .iter()
                .filter(|t| t.negative)
                .map(|t| (t.base.clone(), t.exp.clone()))
                .collect::<Vec<_>>(),
        );
        assert_eq!(num, expect_num);
        assert_eq!(den, expect_den);
    }

    #[test]
    fn zero_base_collapses_its_side() {
        let ctx = ctx_512();
        let terms = vec![
            MultiExpTerm {
                base: BigUint::zero(),
                exp: BigUint::from(3u64),
                negative: false,
            },
            MultiExpTerm {
                base: BigUint::from(5u64),
                exp: BigUint::from(2u64),
                negative: true,
            },
        ];
        let (num, den) = multi_exp_signed(&ctx, &terms);
        assert!(num.is_zero());
        assert_eq!(den, BigUint::from(25u64));
    }

    #[test]
    fn batch_inverse_matches_individual_inverses() {
        let ctx = ctx_512();
        let mut rng = StdRng::seed_from_u64(13);
        for k in [1usize, 2, 5, 9] {
            let vals: Vec<BigUint> = (0..k)
                .map(|_| {
                    // Values coprime to the modulus with overwhelming
                    // probability; retry if not.
                    loop {
                        let v = random_below(&mut rng, &ctx.modulus());
                        if !v.is_zero() && v.gcd(&ctx.modulus()).is_one() {
                            return v;
                        }
                    }
                })
                .collect();
            let invs = batch_inverse(&ctx, &vals).expect("all units");
            for (v, inv) in vals.iter().zip(&invs) {
                assert_eq!(*inv, v.mod_inverse(&ctx.modulus()).unwrap());
            }
        }
    }

    #[test]
    fn batch_inverse_rejects_non_units() {
        let ctx = ctx_512();
        assert!(batch_inverse(&ctx, &[BigUint::zero()]).is_none());
        assert!(batch_inverse(&ctx, &[]).unwrap().is_empty());
    }
}
