//! Serde support: [`BigUint`] serializes as little-endian bytes, [`BigInt`]
//! as a `(sign, bytes)` pair. Compact and endian-stable across platforms.

use crate::{BigInt, BigUint, Sign};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

impl Serialize for BigUint {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serde::Serialize::serialize(&self.to_bytes_le(), serializer)
    }
}

impl<'de> Deserialize<'de> for BigUint {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let bytes = Vec::<u8>::deserialize(deserializer)?;
        Ok(BigUint::from_bytes_le(&bytes))
    }
}

impl Serialize for BigInt {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let sign: i8 = match self.sign() {
            Sign::Minus => -1,
            Sign::Zero => 0,
            Sign::Plus => 1,
        };
        (sign, self.magnitude().to_bytes_le()).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for BigInt {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (sign, bytes): (i8, Vec<u8>) = Deserialize::deserialize(deserializer)?;
        let mag = BigUint::from_bytes_le(&bytes);
        let sign = match sign {
            -1 => Sign::Minus,
            0 => Sign::Zero,
            1 => Sign::Plus,
            other => return Err(D::Error::custom(format!("invalid sign {other}"))),
        };
        if (sign == Sign::Zero) != mag.is_zero() {
            return Err(D::Error::custom("sign/magnitude mismatch"));
        }
        Ok(BigInt::from_sign_mag(sign, mag))
    }
}

#[cfg(test)]
mod tests {
    use crate::{BigInt, BigUint};

    #[test]
    fn biguint_json_roundtrip() {
        let v = BigUint::parse_decimal("123456789012345678901234567890").unwrap();
        let json = serde_json::to_string(&v).unwrap();
        let back: BigUint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn bigint_json_roundtrip_negative() {
        let v = BigInt::from(-987654321i64);
        let json = serde_json::to_string(&v).unwrap();
        let back: BigInt = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn zero_roundtrip() {
        let json = serde_json::to_string(&BigUint::zero()).unwrap();
        let back: BigUint = serde_json::from_str(&json).unwrap();
        assert!(back.is_zero());
    }

    #[test]
    fn inconsistent_sign_rejected() {
        // sign says negative but magnitude is zero
        let bad = r#"[-1, []]"#;
        assert!(serde_json::from_str::<BigInt>(bad).is_err());
    }
}
