//! Modular arithmetic entry points on [`BigUint`].
//!
//! These are the convenience, allocation-per-call APIs. Hot loops (the
//! cryptosystem, the homomorphic push-sum) hold a [`crate::MontgomeryCtx`]
//! and call it directly to amortize the context setup.

use crate::{BigUint, MontgomeryCtx};

impl BigUint {
    /// `(self + rhs) mod m`. Both operands are reduced first.
    pub fn mod_add(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "zero modulus");
        let a = self % m;
        let b = rhs % m;
        let s = &a + &b;
        if s >= *m {
            &s - m
        } else {
            s
        }
    }

    /// `(self - rhs) mod m`, wrapping into `[0, m)`.
    pub fn mod_sub(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "zero modulus");
        let a = self % m;
        let b = rhs % m;
        if a >= b {
            &a - &b
        } else {
            &(&a + m) - &b
        }
    }

    /// `(self * rhs) mod m`.
    pub fn mod_mul(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "zero modulus");
        &(self * rhs) % m
    }

    /// `self^exp mod m`.
    ///
    /// Odd moduli (every modulus in this codebase's crypto) take the
    /// Montgomery fast path; even moduli fall back to square-and-multiply
    /// with division-based reduction.
    pub fn mod_pow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        if m.is_odd() {
            return MontgomeryCtx::new(m).pow_mod(self, exp);
        }
        // Generic binary exponentiation for even moduli.
        let mut base = self % m;
        let mut acc = BigUint::one();
        let bits = exp.bit_len();
        for i in 0..bits {
            if exp.bit(i) {
                acc = acc.mod_mul(&base, m);
            }
            if i + 1 < bits {
                base = base.mod_mul(&base, m);
            }
        }
        acc
    }

    /// `-self mod m`, i.e. `m - (self mod m)` (or zero).
    pub fn mod_neg(&self, m: &BigUint) -> BigUint {
        let r = self % m;
        if r.is_zero() {
            r
        } else {
            m - &r
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    fn b(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn mod_add_wraps() {
        let m = b(10);
        assert_eq!(b(7).mod_add(&b(8), &m), b(5));
        assert_eq!(b(17).mod_add(&b(28), &m), b(5), "operands reduced first");
    }

    #[test]
    fn mod_sub_wraps_negative() {
        let m = b(10);
        assert_eq!(b(3).mod_sub(&b(8), &m), b(5));
        assert_eq!(b(8).mod_sub(&b(3), &m), b(5));
    }

    #[test]
    fn mod_neg_examples() {
        let m = b(10);
        assert_eq!(b(3).mod_neg(&m), b(7));
        assert_eq!(b(0).mod_neg(&m), b(0));
        assert_eq!(b(10).mod_neg(&m), b(0));
    }

    #[test]
    fn mod_pow_odd_and_even_moduli_agree_with_naive() {
        // 3^20 = 3486784401
        for m in [97u64, 96u64] {
            let got = b(3).mod_pow(&b(20), &b(m));
            assert_eq!(got.to_u64(), Some(3486784401u64 % m), "mod {m}");
        }
    }

    #[test]
    fn mod_pow_modulus_one_is_zero() {
        assert!(b(5).mod_pow(&b(3), &b(1)).is_zero());
    }

    #[test]
    fn mod_pow_large_exponent_fermat() {
        // 2^(p-1) mod p = 1 for prime p (Fermat), exercised through the
        // public dispatcher rather than MontgomeryCtx directly.
        let p = b(1_000_000_007);
        assert_eq!(b(2).mod_pow(&p.sub_u64(1), &p), BigUint::one());
    }
}
