//! The [`BigUint`] type: representation, constructors, and basic accessors.

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 64-bit limbs with the invariant that the most
/// significant limb (the last element) is non-zero; zero is represented by an
/// empty limb vector. All public constructors and operations maintain this
/// invariant.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    #[inline]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    #[inline]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// The value `2`.
    #[inline]
    pub fn two() -> Self {
        BigUint { limbs: vec![2] }
    }

    /// Builds a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut v = BigUint { limbs };
        v.normalize();
        v
    }

    /// Read-only view of the little-endian limbs (empty slice for zero).
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Strips high zero limbs so the invariant holds.
    #[inline]
    pub(crate) fn normalize(&mut self) {
        while let Some(&0) = self.limbs.last() {
            self.limbs.pop();
        }
    }

    /// Returns `true` iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff the value is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Number of significant limbs.
    #[inline]
    pub fn limb_len(&self) -> usize {
        self.limbs.len()
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Converts to `f64`, saturating to `f64::INFINITY` for huge values.
    ///
    /// Used only for diagnostics (cost model extrapolation, logging) — never
    /// inside cryptographic code paths.
    pub fn to_f64_lossy(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
            if acc.is_infinite() {
                return f64::INFINITY;
            }
        }
        acc
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::from(0u64), BigUint::zero());
    }

    #[test]
    fn from_u128_roundtrip() {
        let v = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        assert_eq!(BigUint::from(v).to_u128(), Some(v));
    }

    #[test]
    fn normalization_strips_zero_limbs() {
        let v = BigUint::from_limbs(vec![5, 0, 0]);
        assert_eq!(v.limb_len(), 1);
        assert_eq!(v.to_u64(), Some(5));
    }

    #[test]
    fn bit_len_examples() {
        assert_eq!(BigUint::from(1u64).bit_len(), 1);
        assert_eq!(BigUint::from(255u64).bit_len(), 8);
        assert_eq!(BigUint::from(256u64).bit_len(), 9);
        assert_eq!(BigUint::from(u64::MAX).bit_len(), 64);
        assert_eq!(BigUint::from(u64::MAX as u128 + 1).bit_len(), 65);
    }

    #[test]
    fn to_f64_lossy_small() {
        assert_eq!(BigUint::from(42u64).to_f64_lossy(), 42.0);
        let big = BigUint::from(1u128 << 100);
        let expected = 2f64.powi(100);
        assert!((big.to_f64_lossy() - expected).abs() / expected < 1e-12);
    }
}
