//! # cs-bigint — arbitrary-precision integers for the Chiaroscuro reproduction
//!
//! A from-scratch big-integer library providing exactly what the
//! Damgård-Jurik / Paillier cryptosystem and its threshold variant require:
//!
//! * [`BigUint`]: unsigned arbitrary-precision integers with schoolbook and
//!   Karatsuba multiplication, Knuth Algorithm D division, shifts, bit
//!   access, and radix conversion;
//! * [`BigInt`]: signed integers (sign + magnitude) used by the extended
//!   Euclidean algorithm and integer Lagrange coefficients;
//! * modular arithmetic: [`BigUint::mod_pow`], [`BigUint::mod_inverse`],
//!   [`BigUint::gcd`], with a Montgomery-multiplication fast path
//!   ([`montgomery::MontgomeryCtx`]) for odd moduli (all Damgård-Jurik moduli
//!   `n^(s+1)` are odd);
//! * probabilistic primality testing (Miller-Rabin) and random (safe-)prime
//!   generation ([`prime`]);
//! * uniform random sampling ([`rng`]).
//!
//! The representation is a little-endian `Vec<u64>` of limbs, normalized so
//! that the most significant limb is non-zero (zero is the empty vector).
//!
//! ## Example
//!
//! ```
//! use cs_bigint::BigUint;
//!
//! let a = BigUint::from(123456789u64);
//! let b = BigUint::parse_decimal("987654321987654321").unwrap();
//! let m = BigUint::from(1_000_000_007u64);
//! let p = a.mod_pow(&b, &m);
//! assert!(p < m);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod add_sub;
mod bits;
mod cmp;
mod convert;
mod div;
pub mod fixed_base;
mod fmt;
pub mod gcd;
mod int;
pub mod modular;
pub mod montgomery;
mod mul;
pub mod multi_exp;
pub mod prime;
pub mod rng;
#[cfg(feature = "serde")]
mod serde_impl;
mod shift;
mod uint;

pub use fixed_base::FixedBaseExp;
pub use int::{BigInt, Sign};
pub use montgomery::MontgomeryCtx;
pub use uint::BigUint;

/// Number of bits in one limb of a [`BigUint`].
pub const LIMB_BITS: usize = 64;
