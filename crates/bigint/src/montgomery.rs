//! Montgomery modular multiplication and exponentiation for odd moduli.
//!
//! All Damgård-Jurik moduli (`n`, `n^s`, `n^(s+1)`) are odd, so modular
//! exponentiation — the dominant cost of encryption, decryption shares, and
//! push-sum rescaling — always takes this fast path. The implementation is
//! the word-level CIOS (Coarsely Integrated Operand Scanning) algorithm with
//! a 4-bit fixed window for exponentiation.

use crate::BigUint;

/// Largest limb count served by the fixed-width kernels below. Moduli up to
/// `8 × 64 = 512` bits — every prime-power and `n^(s+1)` modulus in the test
/// parameter sets, and the CRT sides of production 2048-bit keys — run on
/// stack arrays with fully unrolled loops; larger moduli fall back to the
/// heap-allocating generic routines.
const FIXED_MAX_LIMBS: usize = 8;

/// Fixed-width CIOS Montgomery multiplication: `a·b·R^{-1} mod n` with all
/// state in registers/stack. `K ≤ FIXED_MAX_LIMBS`.
#[inline(always)]
fn mmul_k<const K: usize>(a: &[u64; K], b: &[u64; K], n: &[u64; K], n0_inv: u64) -> [u64; K] {
    let mut t = [0u64; K];
    let mut t_hi = 0u64; // t[K]
    let mut t_hi2 = 0u64; // t[K+1] (0 or 1)
    for &ai in a.iter() {
        // t += ai * b
        let mut carry = 0u128;
        for j in 0..K {
            let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
            t[j] = s as u64;
            carry = s >> 64;
        }
        let s = t_hi as u128 + carry;
        t_hi = s as u64;
        t_hi2 = (s >> 64) as u64;

        // m = t[0] * n0_inv mod 2^64; then t = (t + m*n) / 2^64
        let m = t[0].wrapping_mul(n0_inv);
        let s = t[0] as u128 + m as u128 * n[0] as u128;
        debug_assert_eq!(s as u64, 0);
        let mut carry = s >> 64;
        for j in 1..K {
            let s = t[j] as u128 + m as u128 * n[j] as u128 + carry;
            t[j - 1] = s as u64;
            carry = s >> 64;
        }
        let s = t_hi as u128 + carry;
        t[K - 1] = s as u64;
        let s2 = t_hi2 as u128 + (s >> 64);
        t_hi = s2 as u64;
        t_hi2 = 0;
        debug_assert_eq!(s2 >> 64, 0);
    }
    let _ = t_hi2;
    if t_hi != 0 || !lt_k(&t, n) {
        sub_k(&mut t, n);
    }
    t
}

/// Fixed-width Montgomery squaring (separated operand scanning, off-diagonal
/// products doubled). Scratch is sized for `FIXED_MAX_LIMBS`; only the first
/// `2K + 1` slots are touched.
#[inline(always)]
fn msqr_k<const K: usize>(a: &[u64; K], n: &[u64; K], n0_inv: u64) -> [u64; K] {
    let mut t = [0u64; 2 * FIXED_MAX_LIMBS + 1];
    for i in 0..K {
        let ai = a[i];
        let mut carry = 0u128;
        for j in (i + 1)..K {
            let s = t[i + j] as u128 + ai as u128 * a[j] as u128 + carry;
            t[i + j] = s as u64;
            carry = s >> 64;
        }
        t[i + K] = carry as u64;
    }
    // Double the off-diagonal triangle …
    let mut carry = 0u64;
    for limb in t.iter_mut().take(2 * K) {
        let next = *limb >> 63;
        *limb = (*limb << 1) | carry;
        carry = next;
    }
    debug_assert_eq!(carry, 0);
    // … and add the diagonal squares.
    let mut carry = 0u128;
    for i in 0..K {
        let sq = a[i] as u128 * a[i] as u128;
        let s = t[2 * i] as u128 + (sq as u64) as u128 + carry;
        t[2 * i] = s as u64;
        let s = t[2 * i + 1] as u128 + (sq >> 64) + (s >> 64);
        t[2 * i + 1] = s as u64;
        carry = s >> 64;
    }
    debug_assert_eq!(carry, 0);

    // Montgomery reduction: K rounds of t += m·n·2^(64i), then shift.
    for i in 0..K {
        let m = t[i].wrapping_mul(n0_inv);
        let mut carry = 0u128;
        for j in 0..K {
            let s = t[i + j] as u128 + m as u128 * n[j] as u128 + carry;
            t[i + j] = s as u64;
            carry = s >> 64;
        }
        let mut idx = i + K;
        while carry != 0 {
            let s = t[idx] as u128 + carry;
            t[idx] = s as u64;
            carry = s >> 64;
            idx += 1;
        }
    }
    let mut out = [0u64; K];
    out.copy_from_slice(&t[K..2 * K]);
    if t[2 * K] != 0 || !lt_k(&out, n) {
        sub_k(&mut out, n);
    }
    out
}

/// `a < b` over fixed-width limb arrays (little-endian).
#[inline(always)]
fn lt_k<const K: usize>(a: &[u64; K], b: &[u64; K]) -> bool {
    for j in (0..K).rev() {
        if a[j] != b[j] {
            return a[j] < b[j];
        }
    }
    false
}

/// `a -= n` in place; any top borrow cancels against the caller's carry limb.
#[inline(always)]
fn sub_k<const K: usize>(a: &mut [u64; K], n: &[u64; K]) {
    let mut borrow = 0u64;
    for j in 0..K {
        let (d1, b1) = a[j].overflowing_sub(n[j]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[j] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
}

/// Reusable Montgomery context for a fixed odd modulus.
///
/// ```
/// use cs_bigint::{BigUint, MontgomeryCtx};
///
/// let p = BigUint::from(1_000_000_007u64); // odd prime
/// let ctx = MontgomeryCtx::new(&p);
/// // Fermat: a^(p-1) ≡ 1 (mod p)
/// let a = BigUint::from(42u64);
/// assert!(ctx.pow_mod(&a, &p.sub_u64(1)).is_one());
/// ```
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    /// The modulus `n` (odd, > 1).
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R² mod n` where `R = 2^(64·limbs)`; converts into Montgomery form.
    rr: Vec<u64>,
    /// `R mod n`: the Montgomery representation of 1.
    one: Vec<u64>,
}

impl MontgomeryCtx {
    /// Builds a context for an odd modulus `> 1`.
    ///
    /// Panics if `n` is even or `<= 1`.
    pub fn new(n: &BigUint) -> Self {
        assert!(
            n.is_odd() && !n.is_one(),
            "Montgomery requires an odd modulus > 1"
        );
        let limbs = n.limbs().to_vec();
        let k = limbs.len();

        // n0_inv = -n^{-1} mod 2^64 via Newton-Hensel lifting:
        // x_{i+1} = x_i * (2 - n*x_i) doubles correct low bits each step.
        let n0 = limbs[0];
        let mut x = n0; // correct to 3 bits for odd n0? Start: x ≡ n0^{-1} mod 2^3.
        for _ in 0..5 {
            x = x.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(x)));
        }
        debug_assert_eq!(n0.wrapping_mul(x), 1);
        let n0_inv = x.wrapping_neg();

        // R mod n and R² mod n via plain division (setup cost only).
        let r = BigUint::one() << (64 * k);
        let one = (&r % n).limbs().to_vec();
        let rr = (&(&r * &r) % n).limbs().to_vec();

        MontgomeryCtx {
            n: limbs,
            n0_inv,
            rr: pad(rr, k),
            one: pad(one, k),
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.n.clone())
    }

    /// Number of limbs of the modulus.
    fn k(&self) -> usize {
        self.n.len()
    }

    /// CIOS Montgomery multiplication: returns `a·b·R^{-1} mod n` for
    /// `a, b < n` given as padded limb slices of length `k`.
    pub(crate) fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k();
        debug_assert!(a.len() == k && b.len() == k);
        macro_rules! fixed {
            ($K:literal) => {{
                let a: &[u64; $K] = a.try_into().unwrap();
                let b: &[u64; $K] = b.try_into().unwrap();
                let n: &[u64; $K] = self.n.as_slice().try_into().unwrap();
                return mmul_k(a, b, n, self.n0_inv).to_vec();
            }};
        }
        match k {
            1 => fixed!(1),
            2 => fixed!(2),
            3 => fixed!(3),
            4 => fixed!(4),
            5 => fixed!(5),
            6 => fixed!(6),
            7 => fixed!(7),
            8 => fixed!(8),
            _ => {}
        }
        // t has k+2 limbs: accumulator for the running sum.
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter() {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..k {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // m = t[0] * n0_inv mod 2^64; then t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = t[0] as u128 + m as u128 * self.n[0] as u128;
            debug_assert_eq!(s as u64, 0);
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            let s2 = t[k + 1] as u128 + (s >> 64);
            t[k] = s2 as u64;
            t[k + 1] = 0;
            debug_assert_eq!(s2 >> 64, 0);
        }
        // Final conditional subtraction: t may be in [0, 2n).
        let needs_sub =
            t[k] != 0 || BigUint::cmp_limbs(&t[..k], &self.n) != std::cmp::Ordering::Less;
        let mut out = t;
        if needs_sub {
            let mut borrow = 0u64;
            #[allow(clippy::needless_range_loop)] // lockstep over out and self.n
            for j in 0..k {
                let (d1, b1) = out[j].overflowing_sub(self.n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            out[k] = out[k].wrapping_sub(borrow);
            debug_assert_eq!(out[k], 0);
        }
        out.truncate(k);
        out
    }

    /// Montgomery squaring: returns `a²·R^{-1} mod n` for `a < n`.
    ///
    /// Separated-operand-scanning form: the full double-width square is
    /// computed first (off-diagonal products counted once and doubled, so
    /// ~k²/2 word multiplications instead of k²), then reduced with k
    /// Montgomery reduction rounds — ~25% fewer word multiplications than
    /// `mont_mul(a, a)`, and squarings dominate every exponentiation chain.
    pub(crate) fn mont_sqr(&self, a: &[u64]) -> Vec<u64> {
        let k = self.k();
        debug_assert_eq!(a.len(), k);
        macro_rules! fixed {
            ($K:literal) => {{
                let a: &[u64; $K] = a.try_into().unwrap();
                let n: &[u64; $K] = self.n.as_slice().try_into().unwrap();
                return msqr_k(a, n, self.n0_inv).to_vec();
            }};
        }
        match k {
            1 => fixed!(1),
            2 => fixed!(2),
            3 => fixed!(3),
            4 => fixed!(4),
            5 => fixed!(5),
            6 => fixed!(6),
            7 => fixed!(7),
            8 => fixed!(8),
            _ => {}
        }
        // t = a² over 2k limbs (+1 guard limb for reduction carries).
        let mut t = vec![0u64; 2 * k + 1];
        for i in 0..k {
            let mut carry = 0u128;
            for j in (i + 1)..k {
                let s = t[i + j] as u128 + a[i] as u128 * a[j] as u128 + carry;
                t[i + j] = s as u64;
                carry = s >> 64;
            }
            t[i + k] = carry as u64;
        }
        // Double the off-diagonal triangle …
        let mut carry = 0u64;
        for limb in t.iter_mut().take(2 * k) {
            let next = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = next;
        }
        debug_assert_eq!(carry, 0);
        // … and add the diagonal squares.
        let mut carry = 0u128;
        for i in 0..k {
            let sq = a[i] as u128 * a[i] as u128;
            let s = t[2 * i] as u128 + (sq as u64) as u128 + carry;
            t[2 * i] = s as u64;
            let s = t[2 * i + 1] as u128 + (sq >> 64) + (s >> 64);
            t[2 * i + 1] = s as u64;
            carry = s >> 64;
        }
        debug_assert_eq!(carry, 0);

        // Montgomery reduction: k rounds of t += m·n·2^(64i), then shift.
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n0_inv);
            let mut carry = 0u128;
            for j in 0..k {
                let s = t[i + j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[i + j] = s as u64;
                carry = s >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let s = t[idx] as u128 + carry;
                t[idx] = s as u64;
                carry = s >> 64;
                idx += 1;
            }
        }
        let needs_sub =
            t[2 * k] != 0 || BigUint::cmp_limbs(&t[k..2 * k], &self.n) != std::cmp::Ordering::Less;
        let mut out = t[k..=2 * k].to_vec();
        if needs_sub {
            let mut borrow = 0u64;
            #[allow(clippy::needless_range_loop)] // lockstep over out and self.n
            for j in 0..k {
                let (d1, b1) = out[j].overflowing_sub(self.n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            out[k] = out[k].wrapping_sub(borrow);
            debug_assert_eq!(out[k], 0);
        }
        out.truncate(k);
        out
    }

    /// The Montgomery representation of 1 (for chain accumulators).
    pub(crate) fn one_mont(&self) -> Vec<u64> {
        self.one.clone()
    }

    /// Converts `a < n` into Montgomery form (`a·R mod n`).
    pub(crate) fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        debug_assert!(*a < self.modulus());
        self.mont_mul(&pad(a.limbs().to_vec(), self.k()), &self.rr)
    }

    /// Converts out of Montgomery form (`a·R^{-1} mod n`).
    #[allow(clippy::wrong_self_convention)] // "from Montgomery domain", not a constructor
    pub(crate) fn from_mont(&self, a: &[u64]) -> BigUint {
        let k = self.k();
        let one = pad(vec![1], k);
        BigUint::from_limbs(self.mont_mul(a, &one))
    }

    /// `a · b mod n` for `a, b < n`.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// `base^exp mod n` with a windowed square-and-multiply chain.
    ///
    /// `base` is reduced mod `n` first; `exp` may be any size. The window
    /// width adapts to the exponent: 4-bit windows (15-entry table) for
    /// long exponents, plain binary for short ones where building the
    /// table would cost more multiplications than it saves.
    pub fn pow_mod(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one() % self.modulus();
        }
        let base = base % &self.modulus();
        let base_m = if base.is_zero() {
            return BigUint::zero();
        } else {
            self.to_mont(&base)
        };

        // Fixed-width fast path: the whole chain (window table, squarings,
        // multiplies) lives in stack arrays — no per-operation allocation.
        macro_rules! fixed {
            ($K:literal) => {{
                return self.pow_windowed_fixed::<$K>(&base_m, exp);
            }};
        }
        match self.k() {
            1 => fixed!(1),
            2 => fixed!(2),
            3 => fixed!(3),
            4 => fixed!(4),
            5 => fixed!(5),
            6 => fixed!(6),
            7 => fixed!(7),
            8 => fixed!(8),
            _ => {}
        }

        let bits = exp.bit_len();
        let window = if bits >= 32 { 4usize } else { 1 };

        // Precompute base^1 .. base^(2^w − 1) in Montgomery form.
        let mut table = Vec::with_capacity((1 << window) - 1);
        table.push(base_m.clone());
        for i in 1..(1 << window) - 1 {
            let prev: &Vec<u64> = &table[i - 1];
            table.push(self.mont_mul(prev, &base_m));
        }

        // Process the exponent in windows, most significant first:
        // acc = acc^(2^w) · base^digit per window, starting from acc = 1.
        let top_window = bits.div_ceil(window);
        let mut acc = self.one.clone();
        for w in (0..top_window).rev() {
            if w + 1 != top_window {
                for _ in 0..window {
                    acc = self.mont_sqr(&acc);
                }
            }
            let mut digit = 0usize;
            for b in (0..window).rev() {
                let bit_idx = w * window + b;
                digit <<= 1;
                if bit_idx < bits && exp.bit(bit_idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit - 1]);
            }
        }
        self.from_mont(&acc)
    }

    /// Windowed exponentiation specialized to a `K`-limb modulus: identical
    /// chain to the generic [`Self::pow_mod`] body, but every intermediate
    /// is a stack array and the CIOS/SOS inner loops unroll at compile time.
    fn pow_windowed_fixed<const K: usize>(&self, base_m: &[u64], exp: &BigUint) -> BigUint {
        let n: &[u64; K] = self.n.as_slice().try_into().unwrap();
        let n0 = self.n0_inv;
        let base: &[u64; K] = base_m.try_into().unwrap();

        let bits = exp.bit_len();
        let window = if bits >= 32 { 4usize } else { 1 };
        let table_len = (1usize << window) - 1;
        let mut table = [[0u64; K]; 15];
        table[0] = *base;
        for i in 1..table_len {
            table[i] = mmul_k(&table[i - 1], base, n, n0);
        }

        let top_window = bits.div_ceil(window);
        let mut acc: [u64; K] = self.one.as_slice().try_into().unwrap();
        for w in (0..top_window).rev() {
            if w + 1 != top_window {
                for _ in 0..window {
                    acc = msqr_k(&acc, n, n0);
                }
            }
            let mut digit = 0usize;
            for b in (0..window).rev() {
                let bit_idx = w * window + b;
                digit <<= 1;
                if bit_idx < bits && exp.bit(bit_idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                acc = mmul_k(&acc, &table[digit - 1], n, n0);
            }
        }
        self.from_mont(&acc)
    }

    /// `base^(2^j) mod n`: exactly `j` Montgomery squarings, no window
    /// table. The push-sum denominator alignment multiplies plaintexts by
    /// small powers of two on every absorbed message, so skipping the
    /// table build that a generic [`Self::pow_mod`] would pay matters.
    pub fn pow_mod_pow2(&self, base: &BigUint, j: u32) -> BigUint {
        let base = base % &self.modulus();
        if base.is_zero() {
            return BigUint::zero();
        }
        let acc = self.to_mont(&base);
        macro_rules! fixed {
            ($K:literal) => {{
                let n: &[u64; $K] = self.n.as_slice().try_into().unwrap();
                let mut a: [u64; $K] = acc.as_slice().try_into().unwrap();
                for _ in 0..j {
                    a = msqr_k(&a, n, self.n0_inv);
                }
                return self.from_mont(&a);
            }};
        }
        match self.k() {
            1 => fixed!(1),
            2 => fixed!(2),
            3 => fixed!(3),
            4 => fixed!(4),
            5 => fixed!(5),
            6 => fixed!(6),
            7 => fixed!(7),
            8 => fixed!(8),
            _ => {}
        }
        let mut acc = acc;
        for _ in 0..j {
            acc = self.mont_sqr(&acc);
        }
        self.from_mont(&acc)
    }
}

fn pad(mut v: Vec<u64>, k: usize) -> Vec<u64> {
    v.resize(k.max(v.len()), 0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mul_mod(a: u128, b: u128, m: u128) -> u128 {
        // Only valid when operands fit in u64 so the product fits u128.
        (a * b) % m
    }

    #[test]
    fn mul_mod_matches_naive_u64() {
        let m = BigUint::from(0xffff_ffff_ffff_ffc5u64); // odd
        let ctx = MontgomeryCtx::new(&m);
        let a = BigUint::from(0x1234_5678_9abc_def1u64);
        let b = BigUint::from(0x0fed_cba9_8765_4321u64);
        let got = ctx.mul_mod(&a, &b);
        let want = naive_mul_mod(
            0x1234_5678_9abc_def1u128,
            0x0fed_cba9_8765_4321u128,
            0xffff_ffff_ffff_ffc5u128,
        );
        assert_eq!(got.to_u128(), Some(want));
    }

    #[test]
    fn pow_mod_matches_fermat() {
        // p prime → a^(p-1) ≡ 1 (mod p)
        let p = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&p);
        let a = BigUint::from(123_456u64);
        assert_eq!(ctx.pow_mod(&a, &p.sub_u64(1)), BigUint::one());
    }

    #[test]
    fn pow_mod_edge_exponents() {
        let m = BigUint::from(101u64);
        let ctx = MontgomeryCtx::new(&m);
        let a = BigUint::from(7u64);
        assert_eq!(ctx.pow_mod(&a, &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.pow_mod(&a, &BigUint::one()), a);
        assert_eq!(
            ctx.pow_mod(&BigUint::zero(), &BigUint::from(5u64)),
            BigUint::zero()
        );
    }

    #[test]
    fn pow_mod_multi_limb_modulus() {
        // Compare against repeated mul_mod for a 192-bit modulus.
        let m = BigUint::from_limbs(vec![0xffff_ffff_ffff_fff1, 0xabcd, 0x1]);
        let m = if m.is_even() { m.add_u64(1) } else { m };
        let ctx = MontgomeryCtx::new(&m);
        let a = BigUint::from_limbs(vec![0xdead_beef, 0xcafe]);
        let mut expect = BigUint::one();
        for _ in 0..37 {
            expect = ctx.mul_mod(&expect, &a);
        }
        assert_eq!(ctx.pow_mod(&a, &BigUint::from(37u64)), expect);
    }

    #[test]
    fn base_reduced_before_exponentiation() {
        let m = BigUint::from(97u64);
        let ctx = MontgomeryCtx::new(&m);
        let big_base = BigUint::from(97u64 * 3 + 5);
        assert_eq!(
            ctx.pow_mod(&big_base, &BigUint::from(10u64)),
            ctx.pow_mod(&BigUint::from(5u64), &BigUint::from(10u64))
        );
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        MontgomeryCtx::new(&BigUint::from(100u64));
    }

    #[test]
    fn mont_sqr_matches_mont_mul_self() {
        use crate::rng::random_below;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        // Moduli from 1 to 8 limbs, values spanning the full range.
        for limbs in 1..=8usize {
            let m = {
                let v = crate::rng::random_bits(&mut rng, limbs * 64);
                if v.is_even() {
                    v.add_u64(1)
                } else {
                    v
                }
            };
            if m.is_one() {
                continue;
            }
            let ctx = MontgomeryCtx::new(&m);
            for _ in 0..25 {
                let a = random_below(&mut rng, &m);
                let am = pad(a.limbs().to_vec(), ctx.k());
                assert_eq!(
                    ctx.mont_sqr(&am),
                    ctx.mont_mul(&am, &am),
                    "limbs={limbs} a={a:?}"
                );
            }
            // Edge values: 0, 1, m−1.
            for a in [BigUint::zero(), BigUint::one(), m.sub_u64(1)] {
                let am = pad(a.limbs().to_vec(), ctx.k());
                assert_eq!(ctx.mont_sqr(&am), ctx.mont_mul(&am, &am));
            }
        }
    }

    #[test]
    fn pow_mod_pow2_matches_generic() {
        let m = BigUint::from_limbs(vec![0xffff_ffff_ffff_ff43, 0xabc]);
        let ctx = MontgomeryCtx::new(&m);
        let base = BigUint::from(0x1234_5678u64);
        for j in [0u32, 1, 5, 13, 30] {
            assert_eq!(
                ctx.pow_mod_pow2(&base, j),
                ctx.pow_mod(&base, &(BigUint::one() << j as usize)),
                "j={j}"
            );
        }
        assert!(ctx.pow_mod_pow2(&BigUint::zero(), 4).is_zero());
    }

    #[test]
    fn pow_mod_short_exponents_match_long_path_semantics() {
        // Exponents straddling the adaptive-window threshold agree with
        // iterated multiplication.
        let m = BigUint::from_limbs(vec![0xffff_ffff_ffff_fff1, 0x7]);
        let ctx = MontgomeryCtx::new(&m);
        let a = BigUint::from(3u64);
        let mut expect = BigUint::one();
        for e in 1..=64u64 {
            expect = ctx.mul_mod(&expect, &a);
            assert_eq!(ctx.pow_mod(&a, &BigUint::from(e)), expect, "e={e}");
        }
    }
}
