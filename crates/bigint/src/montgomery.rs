//! Montgomery modular multiplication and exponentiation for odd moduli.
//!
//! All Damgård-Jurik moduli (`n`, `n^s`, `n^(s+1)`) are odd, so modular
//! exponentiation — the dominant cost of encryption, decryption shares, and
//! push-sum rescaling — always takes this fast path. The implementation is
//! the word-level CIOS (Coarsely Integrated Operand Scanning) algorithm with
//! a 4-bit fixed window for exponentiation.

use crate::BigUint;

/// Reusable Montgomery context for a fixed odd modulus.
///
/// ```
/// use cs_bigint::{BigUint, MontgomeryCtx};
///
/// let p = BigUint::from(1_000_000_007u64); // odd prime
/// let ctx = MontgomeryCtx::new(&p);
/// // Fermat: a^(p-1) ≡ 1 (mod p)
/// let a = BigUint::from(42u64);
/// assert!(ctx.pow_mod(&a, &p.sub_u64(1)).is_one());
/// ```
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    /// The modulus `n` (odd, > 1).
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R² mod n` where `R = 2^(64·limbs)`; converts into Montgomery form.
    rr: Vec<u64>,
    /// `R mod n`: the Montgomery representation of 1.
    one: Vec<u64>,
}

impl MontgomeryCtx {
    /// Builds a context for an odd modulus `> 1`.
    ///
    /// Panics if `n` is even or `<= 1`.
    pub fn new(n: &BigUint) -> Self {
        assert!(
            n.is_odd() && !n.is_one(),
            "Montgomery requires an odd modulus > 1"
        );
        let limbs = n.limbs().to_vec();
        let k = limbs.len();

        // n0_inv = -n^{-1} mod 2^64 via Newton-Hensel lifting:
        // x_{i+1} = x_i * (2 - n*x_i) doubles correct low bits each step.
        let n0 = limbs[0];
        let mut x = n0; // correct to 3 bits for odd n0? Start: x ≡ n0^{-1} mod 2^3.
        for _ in 0..5 {
            x = x.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(x)));
        }
        debug_assert_eq!(n0.wrapping_mul(x), 1);
        let n0_inv = x.wrapping_neg();

        // R mod n and R² mod n via plain division (setup cost only).
        let r = BigUint::one() << (64 * k);
        let one = (&r % n).limbs().to_vec();
        let rr = (&(&r * &r) % n).limbs().to_vec();

        MontgomeryCtx {
            n: limbs,
            n0_inv,
            rr: pad(rr, k),
            one: pad(one, k),
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.n.clone())
    }

    /// Number of limbs of the modulus.
    fn k(&self) -> usize {
        self.n.len()
    }

    /// CIOS Montgomery multiplication: returns `a·b·R^{-1} mod n` for
    /// `a, b < n` given as padded limb slices of length `k`.
    pub(crate) fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k();
        debug_assert!(a.len() == k && b.len() == k);
        // t has k+2 limbs: accumulator for the running sum.
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter() {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..k {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // m = t[0] * n0_inv mod 2^64; then t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = t[0] as u128 + m as u128 * self.n[0] as u128;
            debug_assert_eq!(s as u64, 0);
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            let s2 = t[k + 1] as u128 + (s >> 64);
            t[k] = s2 as u64;
            t[k + 1] = 0;
            debug_assert_eq!(s2 >> 64, 0);
        }
        // Final conditional subtraction: t may be in [0, 2n).
        let needs_sub =
            t[k] != 0 || BigUint::cmp_limbs(&t[..k], &self.n) != std::cmp::Ordering::Less;
        let mut out = t;
        if needs_sub {
            let mut borrow = 0u64;
            #[allow(clippy::needless_range_loop)] // lockstep over out and self.n
            for j in 0..k {
                let (d1, b1) = out[j].overflowing_sub(self.n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            out[k] = out[k].wrapping_sub(borrow);
            debug_assert_eq!(out[k], 0);
        }
        out.truncate(k);
        out
    }

    /// Converts `a < n` into Montgomery form (`a·R mod n`).
    pub(crate) fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        debug_assert!(*a < self.modulus());
        self.mont_mul(&pad(a.limbs().to_vec(), self.k()), &self.rr)
    }

    /// Converts out of Montgomery form (`a·R^{-1} mod n`).
    #[allow(clippy::wrong_self_convention)] // "from Montgomery domain", not a constructor
    pub(crate) fn from_mont(&self, a: &[u64]) -> BigUint {
        let k = self.k();
        let one = pad(vec![1], k);
        BigUint::from_limbs(self.mont_mul(a, &one))
    }

    /// `a · b mod n` for `a, b < n`.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// `base^exp mod n` with a fixed 4-bit window.
    ///
    /// `base` is reduced mod `n` first; `exp` may be any size.
    pub fn pow_mod(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one() % self.modulus();
        }
        let base = base % &self.modulus();
        let base_m = if base.is_zero() {
            return BigUint::zero();
        } else {
            self.to_mont(&base)
        };

        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.one.clone());
        table.push(base_m.clone());
        for i in 2..16 {
            let prev: &Vec<u64> = &table[i - 1];
            table.push(self.mont_mul(prev, &base_m));
        }

        // Process the exponent in 4-bit windows, most significant first:
        // acc = acc^16 · base^window per window, starting from acc = 1.
        let bits = exp.bit_len();
        let top_window = bits.div_ceil(4);
        let mut acc = self.one.clone();
        for w in (0..top_window).rev() {
            if w + 1 != top_window {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let mut window = 0usize;
            for b in (0..4).rev() {
                let bit_idx = w * 4 + b;
                window <<= 1;
                if bit_idx < bits && exp.bit(bit_idx) {
                    window |= 1;
                }
            }
            if window != 0 {
                acc = self.mont_mul(&acc, &table[window]);
            }
        }
        self.from_mont(&acc)
    }
}

fn pad(mut v: Vec<u64>, k: usize) -> Vec<u64> {
    v.resize(k.max(v.len()), 0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mul_mod(a: u128, b: u128, m: u128) -> u128 {
        // Only valid when operands fit in u64 so the product fits u128.
        (a * b) % m
    }

    #[test]
    fn mul_mod_matches_naive_u64() {
        let m = BigUint::from(0xffff_ffff_ffff_ffc5u64); // odd
        let ctx = MontgomeryCtx::new(&m);
        let a = BigUint::from(0x1234_5678_9abc_def1u64);
        let b = BigUint::from(0x0fed_cba9_8765_4321u64);
        let got = ctx.mul_mod(&a, &b);
        let want = naive_mul_mod(
            0x1234_5678_9abc_def1u128,
            0x0fed_cba9_8765_4321u128,
            0xffff_ffff_ffff_ffc5u128,
        );
        assert_eq!(got.to_u128(), Some(want));
    }

    #[test]
    fn pow_mod_matches_fermat() {
        // p prime → a^(p-1) ≡ 1 (mod p)
        let p = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&p);
        let a = BigUint::from(123_456u64);
        assert_eq!(ctx.pow_mod(&a, &p.sub_u64(1)), BigUint::one());
    }

    #[test]
    fn pow_mod_edge_exponents() {
        let m = BigUint::from(101u64);
        let ctx = MontgomeryCtx::new(&m);
        let a = BigUint::from(7u64);
        assert_eq!(ctx.pow_mod(&a, &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.pow_mod(&a, &BigUint::one()), a);
        assert_eq!(
            ctx.pow_mod(&BigUint::zero(), &BigUint::from(5u64)),
            BigUint::zero()
        );
    }

    #[test]
    fn pow_mod_multi_limb_modulus() {
        // Compare against repeated mul_mod for a 192-bit modulus.
        let m = BigUint::from_limbs(vec![0xffff_ffff_ffff_fff1, 0xabcd, 0x1]);
        let m = if m.is_even() { m.add_u64(1) } else { m };
        let ctx = MontgomeryCtx::new(&m);
        let a = BigUint::from_limbs(vec![0xdead_beef, 0xcafe]);
        let mut expect = BigUint::one();
        for _ in 0..37 {
            expect = ctx.mul_mod(&expect, &a);
        }
        assert_eq!(ctx.pow_mod(&a, &BigUint::from(37u64)), expect);
    }

    #[test]
    fn base_reduced_before_exponentiation() {
        let m = BigUint::from(97u64);
        let ctx = MontgomeryCtx::new(&m);
        let big_base = BigUint::from(97u64 * 3 + 5);
        assert_eq!(
            ctx.pow_mod(&big_base, &BigUint::from(10u64)),
            ctx.pow_mod(&BigUint::from(5u64), &BigUint::from(10u64))
        );
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        MontgomeryCtx::new(&BigUint::from(100u64));
    }
}
