//! Division for [`BigUint`]: single-limb short division and Knuth's
//! Algorithm D for multi-limb divisors (TAOCP vol. 2, 4.3.1).

use crate::BigUint;
use std::ops::{Div, Rem};

impl BigUint {
    /// Quotient and remainder by a single limb. Panics on division by zero.
    pub fn div_rem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero");
        if self.is_zero() {
            return (BigUint::zero(), 0);
        }
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = 0u64;
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let cur = (rem as u128) << 64 | limb as u128;
            quotient[i] = (cur / divisor as u128) as u64;
            rem = (cur % divisor as u128) as u64;
        }
        (BigUint::from_limbs(quotient), rem)
    }

    /// Quotient and remainder. Panics on division by zero.
    ///
    /// Multi-limb divisors use Knuth Algorithm D: normalize so the divisor's
    /// top bit is set, estimate each quotient limb from the top 128 bits,
    /// correct the (at most two) over-estimates, multiply-subtract, and
    /// un-normalize the remainder.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }

        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;

        // D1: normalize so v[n-1] has its top bit set.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = shl_limbs(&divisor.limbs, shift);
        let mut u = shl_limbs(&self.limbs, shift);
        u.resize(self.limbs.len() + 1, 0); // u gets one extra high limb

        let mut q = vec![0u64; m + 1];
        let v_top = v[n - 1];
        let v_next = v[n - 2];

        // D2-D7: main loop over quotient positions.
        for j in (0..=m).rev() {
            // D3: estimate qhat from the top two limbs of the current window.
            let num = (u[j + n] as u128) << 64 | u[j + n - 1] as u128;
            let mut qhat = num / v_top as u128;
            let mut rhat = num % v_top as u128;
            // Correct while the two-limb test shows overestimation.
            while qhat >> 64 != 0 || qhat * v_next as u128 > (rhat << 64 | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            let mut qhat = qhat as u64;

            // D4: u[j..j+n+1] -= qhat * v
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat as u128 * v[i] as u128 + carry;
                carry = p >> 64;
                let t = u[j + i] as i128 - (p as u64) as i128 + borrow;
                u[j + i] = t as u64;
                borrow = t >> 64; // arithmetic shift: 0 or -1
            }
            let t = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = t as u64;
            borrow = t >> 64;

            // D5-D6: if we subtracted too much (probability ~2/2^64), add back.
            if borrow != 0 {
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let t = u[j + i] as u128 + v[i] as u128 + carry as u128;
                    u[j + i] = t as u64;
                    carry = (t >> 64) as u64;
                }
                u[j + n] = u[j + n].wrapping_add(carry);
            }
            q[j] = qhat;
        }

        // D8: un-normalize the remainder.
        let rem = shr_limbs(&u[..n], shift);
        (BigUint::from_limbs(q), BigUint::from_limbs(rem))
    }

    /// `self mod divisor` as a convenience wrapper over [`BigUint::div_rem`].
    pub fn rem_of(&self, divisor: &BigUint) -> BigUint {
        self.div_rem(divisor).1
    }

    /// `self / 2`, truncating.
    pub fn half(&self) -> BigUint {
        self >> 1
    }
}

/// Left-shifts limbs by `shift < 64` bits, possibly appending a limb.
fn shl_limbs(limbs: &[u64], shift: usize) -> Vec<u64> {
    debug_assert!(shift < 64);
    if shift == 0 {
        return limbs.to_vec();
    }
    let mut out = Vec::with_capacity(limbs.len() + 1);
    let mut carry = 0u64;
    for &limb in limbs {
        out.push(limb << shift | carry);
        carry = limb >> (64 - shift);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Right-shifts limbs by `shift < 64` bits.
fn shr_limbs(limbs: &[u64], shift: usize) -> Vec<u64> {
    debug_assert!(shift < 64);
    if shift == 0 {
        return limbs.to_vec();
    }
    let mut out = vec![0u64; limbs.len()];
    let mut carry = 0u64;
    for (i, &limb) in limbs.iter().enumerate().rev() {
        out[i] = limb >> shift | carry;
        carry = limb << (64 - shift);
    }
    out
}

impl Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Div for BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).0
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Rem for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).1
    }
}

impl Rem<&BigUint> for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Div<&BigUint> for BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn div_rem_u64_cross_check() {
        let a = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        let d = 0x9999_1111u64;
        let (q, r) = BigUint::from(a).div_rem_u64(d);
        assert_eq!(q.to_u128(), Some(a / d as u128));
        assert_eq!(r, (a % d as u128) as u64);
    }

    #[test]
    fn div_rem_small_cases() {
        let (q, r) = BigUint::from(7u64).div_rem(&BigUint::from(3u64));
        assert_eq!((q.to_u64(), r.to_u64()), (Some(2), Some(1)));
        let (q, r) = BigUint::from(3u64).div_rem(&BigUint::from(7u64));
        assert_eq!((q.to_u64(), r.to_u64()), (Some(0), Some(3)));
    }

    #[test]
    fn div_rem_multi_limb_identity() {
        // Reconstruct: a = q*d + r with r < d, for structured operands.
        let a = BigUint::from_limbs(vec![
            0xdead_beef_dead_beef,
            0x0123_4567_89ab_cdef,
            0xfeed_face_cafe_f00d,
            0x0fed_cba9_8765_4321,
        ]);
        let d = BigUint::from_limbs(vec![0xffff_ffff_0000_0001, 0x8000_0000_0000_0000]);
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn div_rem_triggers_correction_path() {
        // Divisor with v_top = MAX forces qhat estimates at the boundary.
        let d = BigUint::from_limbs(vec![0, u64::MAX]);
        let a = &(&d * &d) + &BigUint::from(12345u64);
        let (q, r) = a.div_rem(&d);
        assert_eq!(q, d);
        assert_eq!(r, BigUint::from(12345u64));
    }

    #[test]
    fn div_by_self_and_one() {
        let a = BigUint::from_limbs(vec![1, 2, 3]);
        let (q, r) = a.div_rem(&a);
        assert!(q.is_one() && r.is_zero());
        let (q, r) = a.div_rem(&BigUint::one());
        assert_eq!(q, a);
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::from(1u64).div_rem(&BigUint::zero());
    }
}
