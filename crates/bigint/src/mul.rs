//! Multiplication for [`BigUint`]: schoolbook with a Karatsuba fast path.

use crate::add_sub::{add_assign_limbs, sub_assign_limbs};
use crate::BigUint;
use std::ops::{Mul, MulAssign};

/// Below this limb count the O(n²) schoolbook loop beats Karatsuba's
/// bookkeeping. 2048-bit operands are 32 limbs, so Damgård-Jurik squarings at
/// `n^2` (64 limbs) already benefit from the recursive path.
const KARATSUBA_THRESHOLD: usize = 24;

/// Schoolbook product `a * b` into a fresh limb vector of len `a+b`.
fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &av) in a.iter().enumerate() {
        if av == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bv) in b.iter().enumerate() {
            let t = out[i + j] as u128 + av as u128 * bv as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    out
}

/// Karatsuba product. Splits at half the shorter operand and recurses:
/// `a·b = z2·B² + (z0 + z2 + (a1-a0)(b0-b1))·B + z0` (subtractive variant,
/// avoiding intermediate negative values by tracking comparison signs).
fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len() < KARATSUBA_THRESHOLD || b.len() < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = a.len().min(b.len()) / 2;
    let (a0, a1) = a.split_at(half);
    let (b0, b1) = b.split_at(half);

    let z0 = mul_karatsuba(a0, b0);
    let z2 = mul_karatsuba(a1, b1);

    // |a1 - a0| and |b0 - b1| with signs.
    let (da, da_neg) = abs_sub(a1, a0);
    let (db, db_neg) = abs_sub(b0, b1);
    let dz = mul_karatsuba(&da, &db);
    let dz_neg = da_neg ^ db_neg;

    // mid = z0 + z2 (+/-) dz
    let mut mid = z0.clone();
    add_assign_limbs(&mut mid, &z2);
    if dz_neg {
        // mid >= dz always holds: mid = a1·b0 + a0·b1 when dz subtracted.
        sub_assign_limbs(&mut mid, &dz);
    } else {
        add_assign_limbs(&mut mid, &dz);
    }

    let mut out = vec![0u64; a.len() + b.len()];
    add_into(&mut out, &z0, 0);
    add_into(&mut out, &mid, half);
    add_into(&mut out, &z2, 2 * half);
    out
}

/// `|x - y|` over raw limb slices plus a flag telling whether `x < y`.
fn abs_sub(x: &[u64], y: &[u64]) -> (Vec<u64>, bool) {
    let xt = trim(x);
    let yt = trim(y);
    match BigUint::cmp_limbs(xt, yt) {
        std::cmp::Ordering::Less => {
            let mut v = yt.to_vec();
            sub_assign_limbs(&mut v, xt);
            (v, true)
        }
        _ => {
            let mut v = xt.to_vec();
            sub_assign_limbs(&mut v, yt);
            (v, false)
        }
    }
}

fn trim(x: &[u64]) -> &[u64] {
    let mut n = x.len();
    while n > 0 && x[n - 1] == 0 {
        n -= 1;
    }
    &x[..n]
}

/// `out[shift..] += v` with carry propagation; `out` must be long enough.
fn add_into(out: &mut [u64], v: &[u64], shift: usize) {
    let mut carry = 0u64;
    let mut i = 0;
    while i < v.len() {
        let t = out[shift + i] as u128 + v[i] as u128 + carry as u128;
        out[shift + i] = t as u64;
        carry = (t >> 64) as u64;
        i += 1;
    }
    while carry != 0 {
        let t = out[shift + i] as u128 + carry as u128;
        out[shift + i] = t as u64;
        carry = (t >> 64) as u64;
        i += 1;
    }
}

impl BigUint {
    /// `self * rhs` where `rhs` is a single limb.
    pub fn mul_u64(&self, rhs: u64) -> BigUint {
        if rhs == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &limb in &self.limbs {
            let t = limb as u128 * rhs as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// `self²` (currently delegates to multiplication; kept as an explicit
    /// entry point so callers express intent and future squaring-specific
    /// optimizations land in one place).
    pub fn square(&self) -> BigUint {
        self * self
    }

    /// `self^exp` by binary exponentiation (no modulus — beware growth).
    pub fn pow(&self, mut exp: u64) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = base.square();
            }
        }
        acc
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        BigUint::from_limbs(mul_karatsuba(&self.limbs, &rhs.limbs))
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl Mul<&BigUint> for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        &self * rhs
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    #[test]
    fn mul_u128_cross_check() {
        let a = 0xdead_beef_1234_5678u64;
        let b = 0xcafe_babe_8765_4321u64;
        let p = BigUint::from(a).mul_u64(b);
        assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn mul_zero_and_one() {
        let a = BigUint::from(12345u64);
        assert!((&a * &BigUint::zero()).is_zero());
        assert_eq!(&a * &BigUint::one(), a);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build two operands well above the threshold with a deterministic
        // pattern and compare the two multiplication routines directly.
        let a: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let b: Vec<u64> = (0..80u64)
            .map(|i| (i + 7).wrapping_mul(0xBF58476D1CE4E5B9))
            .collect();
        let k = mul_karatsuba(&a, &b);
        let s = mul_schoolbook(&a, &b);
        assert_eq!(trim(&k), trim(&s));
    }

    #[test]
    fn pow_small_values() {
        assert_eq!(BigUint::from(3u64).pow(0), BigUint::one());
        assert_eq!(BigUint::from(3u64).pow(5), BigUint::from(243u64));
        assert_eq!(
            BigUint::from(2u64).pow(130).bit_len(),
            131,
            "2^130 has 131 bits"
        );
    }

    #[test]
    fn square_matches_mul() {
        let a = BigUint::from(0xffff_ffff_ffff_fff1u64);
        assert_eq!(a.square(), &a * &a);
    }
}
