//! Bit-shift operators for [`BigUint`].

use crate::BigUint;
use std::ops::{Shl, Shr};

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = shift / 64;
        let bit_shift = shift % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push(limb << bit_shift | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        &self << shift
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        let limb_shift = shift / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = shift % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = vec![0u64; src.len()];
        if bit_shift == 0 {
            out.copy_from_slice(src);
        } else {
            let mut carry = 0u64;
            for (i, &limb) in src.iter().enumerate().rev() {
                out[i] = limb >> bit_shift | carry;
                carry = limb << (64 - bit_shift);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        &self >> shift
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn shl_shr_roundtrip() {
        let a = BigUint::from(0xdead_beefu64);
        for s in [0usize, 1, 7, 63, 64, 65, 128, 200] {
            let shifted = &a << s;
            assert_eq!(&shifted >> s, a, "shift by {s}");
            assert_eq!(shifted.bit_len(), a.bit_len() + s);
        }
    }

    #[test]
    fn shr_to_zero() {
        assert!((BigUint::from(u64::MAX) >> 64).is_zero());
        assert!((BigUint::from(u64::MAX) >> 1000).is_zero());
    }

    #[test]
    fn shl_matches_mul_by_power_of_two() {
        let a = BigUint::from(12345u64);
        assert_eq!(&a << 5, a.mul_u64(32));
    }
}
