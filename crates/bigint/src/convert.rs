//! Byte and string conversion for [`BigUint`].

use crate::BigUint;
use std::str::FromStr;

/// Error produced when parsing a [`BigUint`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl std::fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ParseErrorKind::Empty => write!(f, "empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
        }
    }
}

impl std::error::Error for ParseBigUintError {}

impl BigUint {
    /// Builds a value from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> BigUint {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = limb << 8 | b as u64;
            }
            limbs.push(limb);
        }
        BigUint::from_limbs(limbs)
    }

    /// Builds a value from little-endian bytes.
    pub fn from_bytes_le(bytes: &[u8]) -> BigUint {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.chunks(8) {
            let mut limb = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                limb |= (b as u64) << (8 * i);
            }
            limbs.push(limb);
        }
        BigUint::from_limbs(limbs)
    }

    /// Serializes to big-endian bytes with no leading zeros (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = self.to_bytes_le();
        out.reverse();
        out
    }

    /// Serializes to little-endian bytes with no trailing zeros (empty for
    /// zero).
    pub fn to_bytes_le(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &limb in &self.limbs {
            out.extend_from_slice(&limb.to_le_bytes());
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Number of bytes in the minimal big-endian encoding.
    pub fn byte_len(&self) -> usize {
        self.bit_len().div_ceil(8)
    }

    /// Parses a decimal string (ASCII digits only, no sign, no separators).
    pub fn parse_decimal(s: &str) -> Result<BigUint, ParseBigUintError> {
        Self::parse_radix(s, 10)
    }

    /// Parses a hexadecimal string (no `0x` prefix).
    pub fn parse_hex(s: &str) -> Result<BigUint, ParseBigUintError> {
        Self::parse_radix(s, 16)
    }

    fn parse_radix(s: &str, radix: u32) -> Result<BigUint, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = BigUint::zero();
        for c in s.chars() {
            let d = c.to_digit(radix).ok_or(ParseBigUintError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = acc.mul_u64(radix as u64).add_u64(d as u64);
        }
        Ok(acc)
    }

    /// Renders the value in the given radix (2..=36), lowercase digits.
    pub fn to_str_radix(&self, radix: u64) -> String {
        assert!((2..=36).contains(&radix), "radix out of range");
        if self.is_zero() {
            return "0".to_string();
        }
        const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
        let mut digits = Vec::new();
        let mut cur = self.clone();
        // Extract several digits per division to cut the number of big
        // divisions: the largest power of `radix` fitting in u64.
        let mut chunk = radix;
        let mut chunk_digits = 1usize;
        while let Some(next) = chunk.checked_mul(radix) {
            chunk = next;
            chunk_digits += 1;
        }
        while !cur.is_zero() {
            let (q, mut r) = cur.div_rem_u64(chunk);
            cur = q;
            let emit = if cur.is_zero() {
                // Last chunk: no left padding.
                usize::MAX
            } else {
                chunk_digits
            };
            let mut produced = 0;
            while (r > 0 || produced < emit.min(chunk_digits)) && produced < chunk_digits {
                digits.push(DIGITS[(r % radix) as usize]);
                r /= radix;
                produced += 1;
            }
            if cur.is_zero() {
                // Strip the zero-padding we may have produced for the top chunk.
                while digits.last() == Some(&b'0') && digits.len() > 1 {
                    digits.pop();
                }
            }
        }
        digits.reverse();
        String::from_utf8(digits).expect("ASCII digits")
    }
}

impl FromStr for BigUint {
    type Err = ParseBigUintError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigUint::parse_decimal(s)
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn bytes_be_roundtrip() {
        let v = BigUint::parse_hex("0123456789abcdef00ff").unwrap();
        let bytes = v.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        assert_eq!(bytes[0], 0x01, "no leading zeros");
    }

    #[test]
    fn bytes_le_roundtrip() {
        let v = BigUint::from(0xdead_beef_cafeu64);
        assert_eq!(BigUint::from_bytes_le(&v.to_bytes_le()), v);
    }

    #[test]
    fn zero_encodes_empty() {
        assert!(BigUint::zero().to_bytes_be().is_empty());
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
        assert_eq!(BigUint::from_bytes_be(&[0, 0]), BigUint::zero());
    }

    #[test]
    fn decimal_roundtrip() {
        let s = "123456789012345678901234567890123456789";
        let v = BigUint::parse_decimal(s).unwrap();
        assert_eq!(v.to_str_radix(10), s);
    }

    #[test]
    fn hex_roundtrip() {
        let s = "ffeeddccbbaa99887766554433221100f";
        let v = BigUint::parse_hex(s).unwrap();
        assert_eq!(v.to_str_radix(16), s);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BigUint::parse_decimal("").is_err());
        assert!(BigUint::parse_decimal("12a3").is_err());
        assert!(BigUint::parse_hex("xyz").is_err());
    }

    #[test]
    fn to_str_radix_zero_and_powers() {
        assert_eq!(BigUint::zero().to_str_radix(10), "0");
        assert_eq!(
            BigUint::from(1u128 << 64).to_str_radix(16),
            "10000000000000000"
        );
        assert_eq!(
            BigUint::from(10_000_000_000_000_000_000u64)
                .mul_u64(10)
                .to_str_radix(10),
            "100000000000000000000"
        );
    }

    #[test]
    fn byte_len_matches_bit_len() {
        assert_eq!(BigUint::from(255u64).byte_len(), 1);
        assert_eq!(BigUint::from(256u64).byte_len(), 2);
        assert_eq!(BigUint::zero().byte_len(), 0);
    }
}
