//! `Display`, `Debug`, and hex formatting for [`BigUint`].

use crate::BigUint;
use std::fmt;

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_str_radix(10))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keep debug output short for huge values: decimal when small,
        // truncated hex with bit length otherwise.
        if self.bit_len() <= 128 {
            write!(f, "BigUint({})", self.to_str_radix(10))
        } else {
            let hex = self.to_str_radix(16);
            write!(
                f,
                "BigUint({} bits, 0x{}…{})",
                self.bit_len(),
                &hex[..8.min(hex.len())],
                &hex[hex.len().saturating_sub(8)..]
            )
        }
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_str_radix(16))
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn display_decimal() {
        assert_eq!(format!("{}", BigUint::from(98765u64)), "98765");
        assert_eq!(format!("{}", BigUint::zero()), "0");
    }

    #[test]
    fn lower_hex() {
        assert_eq!(format!("{:x}", BigUint::from(0xabcdu64)), "abcd");
    }

    #[test]
    fn debug_truncates_huge_values() {
        let big = BigUint::one() << 300;
        let s = format!("{:?}", big);
        assert!(s.contains("301 bits"), "{s}");
    }
}
