//! Signed arbitrary-precision integers (sign + magnitude).
//!
//! [`BigInt`] exists for the places where intermediate values can go
//! negative: the extended Euclidean algorithm and the integer Lagrange
//! coefficients of threshold Damgård-Jurik decryption.

use crate::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`]. Zero is always [`Sign::Zero`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Zero.
    Zero,
    /// Strictly positive.
    Plus,
}

/// A signed arbitrary-precision integer.
#[derive(Clone, PartialEq, Eq)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt::from_biguint(BigUint::one())
    }

    /// Builds a non-negative value from a magnitude.
    pub fn from_biguint(mag: BigUint) -> Self {
        let sign = if mag.is_zero() {
            Sign::Zero
        } else {
            Sign::Plus
        };
        BigInt { sign, mag }
    }

    /// Builds a value from an explicit sign and magnitude (sign is corrected
    /// to [`Sign::Zero`] if the magnitude is zero).
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|`.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Converts to [`BigUint`] if non-negative.
    pub fn to_biguint(&self) -> Option<BigUint> {
        match self.sign {
            Sign::Minus => None,
            _ => Some(self.mag.clone()),
        }
    }

    /// The canonical representative of `self mod m` in `[0, m)`.
    ///
    /// Panics if `m` is zero.
    pub fn mod_floor(&self, m: &BigUint) -> BigUint {
        let r = &self.mag % m;
        match self.sign {
            Sign::Minus if !r.is_zero() => m - &r,
            _ => r,
        }
    }

    /// Truncated division: quotient and remainder with
    /// `self = q * d + r`, `|r| < |d|`, and `r` having the sign of `self`.
    pub fn div_rem(&self, d: &BigInt) -> (BigInt, BigInt) {
        assert!(!d.is_zero(), "division by zero");
        let (q_mag, r_mag) = self.mag.div_rem(&d.mag);
        let q_sign = match (self.sign, d.sign) {
            (Sign::Zero, _) => Sign::Zero,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        (
            BigInt::from_sign_mag(q_sign, q_mag),
            BigInt::from_sign_mag(self.sign, r_mag),
        )
    }

    /// `|self|` as a `BigInt`.
    pub fn abs(&self) -> BigInt {
        BigInt::from_sign_mag(
            if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Plus
            },
            self.mag.clone(),
        )
    }
}

impl From<BigUint> for BigInt {
    fn from(v: BigUint) -> Self {
        BigInt::from_biguint(v)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_biguint(BigUint::from(v as u64)),
            Ordering::Less => BigInt::from_sign_mag(Sign::Minus, BigUint::from(v.unsigned_abs())),
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_biguint(BigUint::from(v))
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        };
        BigInt {
            sign,
            mag: self.mag,
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, &self.mag + &rhs.mag),
            _ => match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_sign_mag(self.sign, &self.mag - &rhs.mag),
                Ordering::Less => BigInt::from_sign_mag(rhs.sign, &rhs.mag - &self.mag),
            },
        }
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, rhs: BigInt) -> BigInt {
        &self + &rhs
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, rhs: BigInt) -> BigInt {
        &self - &rhs
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        BigInt::from_sign_mag(sign, &self.mag * &rhs.mag)
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, rhs: BigInt) -> BigInt {
        &self * &rhs
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Minus, Sign::Minus) => other.mag.cmp(&self.mag),
            (Sign::Minus, _) => Ordering::Less,
            (Sign::Zero, Sign::Minus) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.mag.cmp(&other.mag),
            (Sign::Plus, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn signed_addition_table() {
        assert_eq!(&bi(5) + &bi(3), bi(8));
        assert_eq!(&bi(5) + &bi(-3), bi(2));
        assert_eq!(&bi(-5) + &bi(3), bi(-2));
        assert_eq!(&bi(-5) + &bi(-3), bi(-8));
        assert_eq!(&bi(5) + &bi(-5), bi(0));
    }

    #[test]
    fn signed_subtraction() {
        assert_eq!(&bi(3) - &bi(5), bi(-2));
        assert_eq!(&bi(-3) - &bi(-5), bi(2));
        assert_eq!(&bi(0) - &bi(7), bi(-7));
    }

    #[test]
    fn signed_multiplication() {
        assert_eq!(&bi(4) * &bi(-6), bi(-24));
        assert_eq!(&bi(-4) * &bi(-6), bi(24));
        assert_eq!(&bi(0) * &bi(-6), bi(0));
    }

    #[test]
    fn mod_floor_negative_values() {
        let m = BigUint::from(7u64);
        assert_eq!(bi(-1).mod_floor(&m), BigUint::from(6u64));
        assert_eq!(bi(-7).mod_floor(&m), BigUint::zero());
        assert_eq!(bi(-15).mod_floor(&m), BigUint::from(6u64));
        assert_eq!(bi(15).mod_floor(&m), BigUint::from(1u64));
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        let (q, r) = bi(-7).div_rem(&bi(2));
        assert_eq!((q, r), (bi(-3), bi(-1)));
        let (q, r) = bi(7).div_rem(&bi(-2));
        assert_eq!((q, r), (bi(-3), bi(1)));
    }

    #[test]
    fn ordering_spans_signs() {
        assert!(bi(-10) < bi(-2));
        assert!(bi(-2) < bi(0));
        assert!(bi(0) < bi(3));
        assert!(bi(3) < bi(10));
    }

    #[test]
    fn display_negative() {
        assert_eq!(format!("{}", bi(-42)), "-42");
    }
}
