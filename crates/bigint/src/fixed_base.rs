//! Fixed-base windowed modular exponentiation.
//!
//! The generic [`MontgomeryCtx::pow_mod`] spends one squaring per exponent
//! bit plus one multiplication per 4-bit window. When the *base* is known
//! ahead of time and many exponents will be raised to it — the
//! Damgård-Jurik randomizer base `h^(n^s)` on the encryption hot path, the
//! generator `(1+n)` when the binomial shortcut does not apply — all the
//! squarings can be paid once, at table-build time: precompute
//! `base^(d · 2^(w·i))` for every window position `i` and digit `d`, and an
//! exponentiation collapses to one Montgomery multiplication per non-zero
//! window. For a `B`-bit exponent that is ≤ `B/w` multiplications instead
//! of `B` squarings + `B/w` multiplications — a ~4–5× reduction at `w = 4`,
//! ~9× at `w = 8` (at `2^w` times the table size and build cost, so wide
//! windows only pay off for tables that serve very many exponentiations).

use crate::{BigUint, MontgomeryCtx};

/// Default window width in bits. 4 keeps the table at `15 · ⌈bits/4⌉`
/// entries — the sweet spot when a table serves tens-to-hundreds of
/// exponentiations. Callers that reuse one table across thousands of
/// exponentiations (the gossip re-randomization path) should pick a wider
/// window via [`FixedBaseExp::with_window`].
const DEFAULT_WINDOW_BITS: usize = 4;

/// Precomputed fixed-base exponentiation table for one `(base, modulus)`
/// pair, valid for exponents up to a declared bit length (larger exponents
/// transparently fall back to the generic square-and-multiply path).
///
/// ```
/// use cs_bigint::{BigUint, FixedBaseExp, MontgomeryCtx};
///
/// let m = BigUint::from(1_000_000_007u64);
/// let ctx = MontgomeryCtx::new(&m);
/// let base = BigUint::from(42u64);
/// let fixed = FixedBaseExp::new(&ctx, &base, 128);
/// let e = BigUint::from(123_456_789u64);
/// assert_eq!(fixed.pow_mod(&e), ctx.pow_mod(&base, &e));
/// ```
#[derive(Clone, Debug)]
pub struct FixedBaseExp {
    ctx: MontgomeryCtx,
    /// The base reduced mod n (kept for the oversized-exponent fallback).
    base: BigUint,
    /// `table[i][d-1] = base^(d · 2^(window_bits·i))` in Montgomery form.
    table: Vec<Vec<Vec<u64>>>,
    window_bits: usize,
    max_exp_bits: usize,
}

impl FixedBaseExp {
    /// Builds the window tables for exponents of up to `max_exp_bits` bits
    /// at the default 4-bit window.
    ///
    /// Table cost: `⌈max_exp_bits/4⌉ · 15` modulus-sized entries, built with
    /// one Montgomery multiplication each — amortized after a handful of
    /// exponentiations.
    pub fn new(ctx: &MontgomeryCtx, base: &BigUint, max_exp_bits: usize) -> Self {
        Self::with_window(ctx, base, max_exp_bits, DEFAULT_WINDOW_BITS)
    }

    /// Builds the window tables with an explicit window width (1..=12
    /// bits). Wider windows trade `(2^w − 1) · ⌈bits/w⌉` table entries —
    /// built once, one Montgomery multiplication each — for `⌈bits/w⌉`
    /// multiplications per exponentiation.
    ///
    /// Panics if `window_bits` is outside `1..=12` (a 13-bit window table
    /// would already be megabytes per position — a misuse, not a tuning).
    pub fn with_window(
        ctx: &MontgomeryCtx,
        base: &BigUint,
        max_exp_bits: usize,
        window_bits: usize,
    ) -> Self {
        assert!(
            (1..=12).contains(&window_bits),
            "window_bits must be in 1..=12"
        );
        let digits = (1usize << window_bits) - 1; // non-zero digits per window
        let modulus = ctx.modulus();
        let base = base % &modulus;
        let windows = max_exp_bits.max(1).div_ceil(window_bits);
        let mut table = Vec::with_capacity(windows);
        if !base.is_zero() {
            // cur = base^(2^(window_bits·i)) at the top of iteration i.
            let mut cur = ctx.to_mont(&base);
            for _ in 0..windows {
                let mut row = Vec::with_capacity(digits);
                row.push(cur.clone());
                for d in 1..digits {
                    let prev: &Vec<u64> = &row[d - 1];
                    row.push(ctx.mont_mul(prev, &cur));
                }
                // base^(2^w·2^(wi)) = base^((2^w−1)·2^(wi)) · base^(2^(wi)).
                cur = ctx.mont_mul(&row[digits - 1], &cur);
                table.push(row);
            }
        }
        FixedBaseExp {
            ctx: ctx.clone(),
            base,
            table,
            window_bits,
            max_exp_bits: windows * window_bits,
        }
    }

    /// The largest exponent bit length the tables cover.
    pub fn max_exp_bits(&self) -> usize {
        self.max_exp_bits
    }

    /// The window width the tables were built with.
    pub fn window_bits(&self) -> usize {
        self.window_bits
    }

    /// The modulus the table was built for.
    pub fn modulus(&self) -> BigUint {
        self.ctx.modulus()
    }

    /// `base^exp mod n` using the precomputed tables: one Montgomery
    /// multiplication per non-zero window, zero squarings.
    ///
    /// Exponents longer than [`Self::max_exp_bits`] fall back to the generic
    /// [`MontgomeryCtx::pow_mod`] (correct, just not accelerated).
    pub fn pow_mod(&self, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one() % self.ctx.modulus();
        }
        if self.base.is_zero() {
            return BigUint::zero();
        }
        let bits = exp.bit_len();
        if bits > self.max_exp_bits {
            return self.ctx.pow_mod(&self.base, exp);
        }
        let w = self.window_bits;
        let mut acc: Option<Vec<u64>> = None;
        for (i, row) in self.table.iter().enumerate().take(bits.div_ceil(w)) {
            let mut digit = 0usize;
            for b in (0..w).rev() {
                let bit_idx = i * w + b;
                digit <<= 1;
                if bit_idx < bits && exp.bit(bit_idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                let entry = &row[digit - 1];
                acc = Some(match acc {
                    Some(a) => self.ctx.mont_mul(&a, entry),
                    None => entry.clone(),
                });
            }
        }
        match acc {
            Some(a) => self.ctx.from_mont(&a),
            // All windows zero is impossible for a non-zero exponent, but
            // stay total.
            None => BigUint::one() % self.ctx.modulus(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_generic_pow_mod() {
        let m = BigUint::from(0xffff_ffff_ffff_ffc5u64);
        let ctx = MontgomeryCtx::new(&m);
        let base = BigUint::from(0x1234_5678u64);
        let fixed = FixedBaseExp::new(&ctx, &base, 192);
        for e in [0u64, 1, 2, 15, 16, 17, 255, u64::MAX] {
            let e = BigUint::from(e);
            assert_eq!(fixed.pow_mod(&e), ctx.pow_mod(&base, &e));
        }
    }

    #[test]
    fn all_window_widths_agree() {
        let m = BigUint::from_limbs(vec![0xffff_ffff_ffff_fff1, 0xabcd, 0x1]);
        let ctx = MontgomeryCtx::new(&m);
        let base = BigUint::from_limbs(vec![0xdead_beef, 0xcafe]);
        let e = BigUint::from_limbs(vec![0x0123_4567_89ab_cdef, 0xfedc_ba98]);
        let expect = ctx.pow_mod(&base, &e);
        for w in [1usize, 2, 3, 4, 5, 7, 8] {
            let fixed = FixedBaseExp::with_window(&ctx, &base, 192, w);
            assert_eq!(fixed.pow_mod(&e), expect, "window={w}");
            assert_eq!(fixed.window_bits(), w);
        }
    }

    #[test]
    fn oversized_exponent_falls_back() {
        let m = BigUint::from(1_000_003u64);
        let ctx = MontgomeryCtx::new(&m);
        let base = BigUint::from(7u64);
        let fixed = FixedBaseExp::new(&ctx, &base, 8);
        let e = BigUint::from(u128::MAX);
        assert_eq!(fixed.pow_mod(&e), ctx.pow_mod(&base, &e));
    }

    #[test]
    fn zero_base_and_reduction() {
        let m = BigUint::from(97u64);
        let ctx = MontgomeryCtx::new(&m);
        let zero = FixedBaseExp::new(&ctx, &BigUint::zero(), 32);
        assert_eq!(zero.pow_mod(&BigUint::from(5u64)), BigUint::zero());
        assert!(zero.pow_mod(&BigUint::zero()).is_one());
        // Base ≥ n is reduced first, like the generic path.
        let big = FixedBaseExp::new(&ctx, &BigUint::from(97u64 * 3 + 5), 32);
        assert_eq!(
            big.pow_mod(&BigUint::from(10u64)),
            ctx.pow_mod(&BigUint::from(5u64), &BigUint::from(10u64))
        );
    }

    #[test]
    fn multi_limb_modulus() {
        let m = BigUint::from_limbs(vec![0xffff_ffff_ffff_fff1, 0xabcd, 0x1]);
        let ctx = MontgomeryCtx::new(&m);
        let base = BigUint::from_limbs(vec![0xdead_beef, 0xcafe]);
        let fixed = FixedBaseExp::new(&ctx, &base, 256);
        let e = BigUint::from_limbs(vec![0x0123_4567_89ab_cdef, 0xfedc_ba98]);
        assert_eq!(fixed.pow_mod(&e), ctx.pow_mod(&base, &e));
    }
}
