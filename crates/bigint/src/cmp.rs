//! Ordering for [`BigUint`].

use crate::BigUint;
use std::cmp::Ordering;

impl BigUint {
    /// Compares magnitudes limb-wise (most significant first).
    pub(crate) fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        BigUint::cmp_limbs(&self.limbs, &other.limbs)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq<u64> for BigUint {
    fn eq(&self, other: &u64) -> bool {
        self.to_u64() == Some(*other)
    }
}

impl PartialOrd<u64> for BigUint {
    fn partial_cmp(&self, other: &u64) -> Option<Ordering> {
        match self.limbs.len() {
            0 => 0u64.partial_cmp(other),
            1 => self.limbs[0].partial_cmp(other),
            _ => Some(Ordering::Greater),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn ordering_by_length_then_limbs() {
        let small = BigUint::from(u64::MAX);
        let big = BigUint::from(u64::MAX as u128 + 1);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(small.cmp(&small), std::cmp::Ordering::Equal);
    }

    #[test]
    fn compare_with_u64() {
        let five = BigUint::from(5u64);
        assert!(five == 5u64);
        assert!(five < 6u64);
        assert!(BigUint::from(1u128 << 80) > 6u64);
        assert!(BigUint::zero() < 1u64);
    }
}
