//! Bit-level accessors for [`BigUint`].

use crate::BigUint;

impl BigUint {
    /// Returns bit `i` (little-endian position; bit 0 is the least
    /// significant). Out-of-range bits are `0`.
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        self.limbs[limb] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i` to `value`, growing the limb vector if needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let limb = i / 64;
        if value {
            if limb >= self.limbs.len() {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << (i % 64);
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << (i % 64));
            self.normalize();
        }
    }

    /// `true` iff the value is even (zero counts as even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// `true` iff the value is odd.
    #[inline]
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Number of trailing zero bits; `None` for the value zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &limb) in self.limbs.iter().enumerate() {
            if limb != 0 {
                return Some(i * 64 + limb.trailing_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn bit_get_set_roundtrip() {
        let mut v = BigUint::zero();
        v.set_bit(0, true);
        v.set_bit(100, true);
        assert!(v.bit(0) && v.bit(100));
        assert!(!v.bit(50) && !v.bit(101));
        assert_eq!(v.count_ones(), 2);
        v.set_bit(100, false);
        assert_eq!(v, BigUint::one());
    }

    #[test]
    fn clearing_top_bit_normalizes() {
        let mut v = BigUint::zero();
        v.set_bit(64, true);
        assert_eq!(v.limb_len(), 2);
        v.set_bit(64, false);
        assert!(v.is_zero());
        assert_eq!(v.limb_len(), 0);
    }

    #[test]
    fn parity() {
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert!(BigUint::from(u64::MAX).is_odd());
        assert!(BigUint::from(1u128 << 64).is_even());
    }

    #[test]
    fn trailing_zeros_across_limbs() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(BigUint::one().trailing_zeros(), Some(0));
        assert_eq!(BigUint::from(1u128 << 100).trailing_zeros(), Some(100));
    }
}
