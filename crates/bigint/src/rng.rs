//! Uniform random sampling of [`BigUint`] values.

use crate::BigUint;
use rand::Rng;

/// Samples a uniformly random value with exactly `bits` significant bits
/// (the top bit is forced to 1). Returns zero when `bits == 0`.
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let limbs_needed = bits.div_ceil(64);
    let mut limbs: Vec<u64> = (0..limbs_needed).map(|_| rng.gen()).collect();
    let top_bits = bits - (limbs_needed - 1) * 64;
    let top = &mut limbs[limbs_needed - 1];
    if top_bits < 64 {
        *top &= (1u64 << top_bits) - 1;
    }
    *top |= 1u64 << (top_bits - 1);
    BigUint::from_limbs(limbs)
}

/// Samples uniformly from `[0, bound)` by rejection.
///
/// Panics if `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "empty range");
    let bits = bound.bit_len();
    let limbs_needed = bits.div_ceil(64);
    let top_bits = bits - (limbs_needed - 1) * 64;
    let mask = if top_bits == 64 {
        u64::MAX
    } else {
        (1u64 << top_bits) - 1
    };
    // Rejection sampling: each draw succeeds with probability > 1/2.
    loop {
        let mut limbs: Vec<u64> = (0..limbs_needed).map(|_| rng.gen()).collect();
        limbs[limbs_needed - 1] &= mask;
        let candidate = BigUint::from_limbs(limbs);
        if candidate < *bound {
            return candidate;
        }
    }
}

/// Samples uniformly from `[low, high)`.
///
/// Panics if `low >= high`.
pub fn random_range<R: Rng + ?Sized>(rng: &mut R, low: &BigUint, high: &BigUint) -> BigUint {
    assert!(low < high, "empty range");
    let width = high - low;
    low + &random_below(rng, &width)
}

/// Samples a uniformly random element of `(Z/nZ)*`, i.e. a unit mod `n`.
///
/// For RSA-style `n` (product of two large primes) the first draw is a unit
/// with overwhelming probability.
pub fn random_unit<R: Rng + ?Sized>(rng: &mut R, n: &BigUint) -> BigUint {
    assert!(*n > 1u64, "modulus must exceed 1");
    loop {
        let candidate = random_range(rng, &BigUint::one(), n);
        if candidate.gcd(n).is_one() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = StdRng::seed_from_u64(7);
        for bits in [1usize, 8, 63, 64, 65, 129, 512] {
            let v = random_bits(&mut rng, bits);
            assert_eq!(v.bit_len(), bits, "requested {bits} bits");
        }
        assert!(random_bits(&mut rng, 0).is_zero());
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(11);
        let bound = BigUint::from(1000u64);
        for _ in 0..200 {
            assert!(random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn random_below_covers_small_range() {
        // With bound = 4, all residues should appear in 200 draws.
        let mut rng = StdRng::seed_from_u64(13);
        let bound = BigUint::from(4u64);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[random_below(&mut rng, &bound).to_u64().unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_range_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(17);
        let low = BigUint::from(500u64);
        let high = BigUint::from(600u64);
        for _ in 0..100 {
            let v = random_range(&mut rng, &low, &high);
            assert!(v >= low && v < high);
        }
    }

    #[test]
    fn random_unit_is_coprime() {
        let mut rng = StdRng::seed_from_u64(19);
        let n = BigUint::from(35u64); // 5 * 7 — units are plentiful
        for _ in 0..50 {
            let u = random_unit(&mut rng, &n);
            assert!(u.gcd(&n).is_one());
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let a = random_bits(&mut StdRng::seed_from_u64(42), 256);
        let b = random_bits(&mut StdRng::seed_from_u64(42), 256);
        assert_eq!(a, b);
    }
}
