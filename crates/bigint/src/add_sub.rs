//! Addition and subtraction for [`BigUint`].

use crate::BigUint;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Adds `b` into `a` (both little-endian), returning the final carry.
pub(crate) fn add_assign_limbs(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    let mut carry = 0u64;
    for (i, &bv) in b.iter().enumerate() {
        let (s1, c1) = a[i].overflowing_add(bv);
        let (s2, c2) = s1.overflowing_add(carry);
        a[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry != 0 {
        for limb in a.iter_mut().skip(b.len()) {
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            carry = c as u64;
            if carry == 0 {
                break;
            }
        }
        if carry != 0 {
            a.push(carry);
        }
    }
}

/// Subtracts `b` from `a` in place. Panics in debug builds if `b > a`;
/// callers must guarantee `a >= b`.
pub(crate) fn sub_assign_limbs(a: &mut [u64], b: &[u64]) {
    debug_assert!(BigUint::cmp_limbs(a, b) != std::cmp::Ordering::Less);
    let mut borrow = 0u64;
    for (i, &bv) in b.iter().enumerate() {
        let (d1, b1) = a[i].overflowing_sub(bv);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    if borrow != 0 {
        for limb in a.iter_mut().skip(b.len()) {
            let (d, b) = limb.overflowing_sub(borrow);
            *limb = d;
            borrow = b as u64;
            if borrow == 0 {
                break;
            }
        }
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
}

impl BigUint {
    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = self.limbs.clone();
        sub_assign_limbs(&mut limbs, &other.limbs);
        Some(BigUint::from_limbs(limbs))
    }

    /// `|self - other|`.
    pub fn abs_diff(&self, other: &BigUint) -> BigUint {
        if self >= other {
            self - other
        } else {
            other - self
        }
    }

    /// Adds a single `u64`.
    pub fn add_u64(&self, rhs: u64) -> BigUint {
        let mut limbs = self.limbs.clone();
        add_assign_limbs(&mut limbs, &[rhs]);
        BigUint::from_limbs(limbs)
    }

    /// Subtracts a single `u64`; panics if the result would be negative.
    pub fn sub_u64(&self, rhs: u64) -> BigUint {
        let mut limbs = self.limbs.clone();
        sub_assign_limbs(&mut limbs, &[rhs]);
        BigUint::from_limbs(limbs)
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut limbs = self.limbs.clone();
        add_assign_limbs(&mut limbs, &rhs.limbs);
        BigUint::from_limbs(limbs)
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(mut self, rhs: BigUint) -> BigUint {
        add_assign_limbs(&mut self.limbs, &rhs.limbs);
        self.normalize();
        self
    }
}

impl Add<&BigUint> for BigUint {
    type Output = BigUint;
    fn add(mut self, rhs: &BigUint) -> BigUint {
        add_assign_limbs(&mut self.limbs, &rhs.limbs);
        self.normalize();
        self
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        add_assign_limbs(&mut self.limbs, &rhs.limbs);
        self.normalize();
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    /// Panics if `rhs > self`; use [`BigUint::checked_sub`] when underflow is
    /// possible.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl Sub<&BigUint> for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        &self - rhs
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        sub_assign_limbs(&mut self.limbs, &rhs.limbs);
        self.normalize();
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::from(1u64);
        assert_eq!(&a + &b, BigUint::from(u64::MAX as u128 + 1));
    }

    #[test]
    fn add_carry_propagates_through_many_limbs() {
        // (2^192 - 1) + 1 = 2^192
        let a = BigUint::from_limbs(vec![u64::MAX; 3]);
        let sum = a.add_u64(1);
        assert_eq!(sum.limbs(), &[0, 0, 0, 1]);
    }

    #[test]
    fn sub_roundtrips_add() {
        let a = BigUint::from(0xdead_beef_dead_beefu64);
        let b = BigUint::from(0x1234_5678u64);
        assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn sub_with_borrow_chain() {
        // 2^192 - 1
        let a = BigUint::from_limbs(vec![0, 0, 0, 1]);
        let d = a.sub_u64(1);
        assert_eq!(d.limbs(), &[u64::MAX, u64::MAX, u64::MAX]);
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        assert!(BigUint::from(1u64)
            .checked_sub(&BigUint::from(2u64))
            .is_none());
    }

    #[test]
    fn abs_diff_symmetric() {
        let a = BigUint::from(100u64);
        let b = BigUint::from(250u64);
        assert_eq!(a.abs_diff(&b), BigUint::from(150u64));
        assert_eq!(b.abs_diff(&a), BigUint::from(150u64));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &BigUint::from(1u64) - &BigUint::from(2u64);
    }
}
