//! Greatest common divisor, extended Euclid, and modular inverse.

use crate::{BigInt, BigUint};

impl BigUint {
    /// Greatest common divisor (Euclid's algorithm).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple. Panics only if both arguments are zero? No —
    /// `lcm(0, x) = 0` by convention.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let g = self.gcd(other);
        &(self / &g) * other
    }

    /// Modular inverse: the unique `x` in `[0, m)` with
    /// `self * x ≡ 1 (mod m)`, or `None` when `gcd(self, m) != 1`.
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() {
            return None;
        }
        let (g, x, _) = extended_gcd(
            &BigInt::from_biguint(self % m),
            &BigInt::from_biguint(m.clone()),
        );
        if g != BigInt::one() {
            return None;
        }
        Some(x.mod_floor(m))
    }
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with
/// `a*x + b*y = g = gcd(a, b)` (`g >= 0`).
pub fn extended_gcd(a: &BigInt, b: &BigInt) -> (BigInt, BigInt, BigInt) {
    let (mut old_r, mut r) = (a.clone(), b.clone());
    let (mut old_s, mut s) = (BigInt::one(), BigInt::zero());
    let (mut old_t, mut t) = (BigInt::zero(), BigInt::one());
    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        old_r = std::mem::replace(&mut r, rem);
        let new_s = &old_s - &(&q * &s);
        old_s = std::mem::replace(&mut s, new_s);
        let new_t = &old_t - &(&q * &t);
        old_t = std::mem::replace(&mut t, new_t);
    }
    if old_r.is_negative() {
        (-old_r, -old_s, -old_t)
    } else {
        (old_r, old_s, old_t)
    }
}

/// Solves a two-congruence CRT system: the unique `x mod (m1*m2)` with
/// `x ≡ r1 (mod m1)` and `x ≡ r2 (mod m2)`, for coprime `m1, m2`.
///
/// Returns `None` if the moduli are not coprime.
pub fn crt_pair(r1: &BigUint, m1: &BigUint, r2: &BigUint, m2: &BigUint) -> Option<BigUint> {
    // x = r1 + m1 * ((r2 - r1) * m1^{-1} mod m2)
    let m1_inv = m1.mod_inverse(m2)?;
    let r1m = r1 % m1;
    let diff = BigInt::from_biguint(r2 % m2) - BigInt::from_biguint(&r1m % m2);
    let k = (&BigInt::from_biguint(m1_inv) * &diff).mod_floor(m2);
    Some(&r1m + &(m1 * &k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_known_values() {
        let a = BigUint::from(48u64);
        let b = BigUint::from(36u64);
        assert_eq!(a.gcd(&b), BigUint::from(12u64));
        assert_eq!(a.gcd(&BigUint::zero()), a);
        assert_eq!(BigUint::zero().gcd(&b), b);
    }

    #[test]
    fn lcm_known_values() {
        assert_eq!(
            BigUint::from(4u64).lcm(&BigUint::from(6u64)),
            BigUint::from(12u64)
        );
        assert!(BigUint::zero().lcm(&BigUint::from(5u64)).is_zero());
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        let a = BigInt::from(240i64);
        let b = BigInt::from(46i64);
        let (g, x, y) = extended_gcd(&a, &b);
        assert_eq!(g, BigInt::from(2i64));
        assert_eq!(&(&a * &x) + &(&b * &y), g);
    }

    #[test]
    fn mod_inverse_roundtrip() {
        let m = BigUint::from(1_000_000_007u64);
        let a = BigUint::from(123_456_789u64);
        let inv = a.mod_inverse(&m).unwrap();
        assert_eq!((&a * &inv) % &m, BigUint::one());
    }

    #[test]
    fn mod_inverse_of_non_coprime_is_none() {
        let m = BigUint::from(12u64);
        assert!(BigUint::from(4u64).mod_inverse(&m).is_none());
        assert!(BigUint::from(5u64).mod_inverse(&m).is_some());
    }

    #[test]
    fn mod_inverse_large_value_reduced_first() {
        let m = BigUint::from(97u64);
        let a = BigUint::from(97u64 * 5 + 3);
        let inv = a.mod_inverse(&m).unwrap();
        assert_eq!((&a % &m * &inv) % &m, BigUint::one());
    }

    #[test]
    fn crt_pair_reconstructs() {
        // x ≡ 2 mod 3, x ≡ 3 mod 5 → x = 8 mod 15
        let x = crt_pair(
            &BigUint::from(2u64),
            &BigUint::from(3u64),
            &BigUint::from(3u64),
            &BigUint::from(5u64),
        )
        .unwrap();
        assert_eq!(x, BigUint::from(8u64));
    }

    #[test]
    fn crt_pair_non_coprime_fails() {
        assert!(crt_pair(
            &BigUint::from(1u64),
            &BigUint::from(4u64),
            &BigUint::from(2u64),
            &BigUint::from(6u64),
        )
        .is_none());
    }
}
