//! Primality testing (Miller-Rabin) and random prime generation.

use crate::rng::{random_bits, random_range};
use crate::{BigUint, MontgomeryCtx};
use rand::Rng;

/// Trial-division primes: all primes below 2048, generated once.
fn small_primes() -> &'static [u64] {
    use std::sync::OnceLock;
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| {
        let limit = 2048usize;
        let mut sieve = vec![true; limit];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..limit {
            if sieve[i] {
                for j in (i * i..limit).step_by(i) {
                    sieve[j] = false;
                }
            }
        }
        sieve
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| p.then_some(i as u64))
            .collect()
    })
}

/// One Miller-Rabin round for witness `a` against odd `n = d·2^r + 1`.
fn miller_rabin_round(
    ctx: &MontgomeryCtx,
    n: &BigUint,
    d: &BigUint,
    r: usize,
    a: &BigUint,
) -> bool {
    let n_minus_1 = n.sub_u64(1);
    let mut x = ctx.pow_mod(a, d);
    if x.is_one() || x == n_minus_1 {
        return true;
    }
    for _ in 1..r {
        x = ctx.mul_mod(&x, &x);
        if x == n_minus_1 {
            return true;
        }
        if x.is_one() {
            return false; // non-trivial square root of 1
        }
    }
    false
}

/// Miller-Rabin probabilistic primality test with `rounds` random witnesses
/// (plus a fixed base-2 round). The error probability is at most `4^-rounds`.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if *n < 2u64 {
        return false;
    }
    for &p in small_primes() {
        let pb = BigUint::from(p);
        if *n == pb {
            return true;
        }
        if (n % &pb).is_zero() {
            return false;
        }
        if pb.square() > *n {
            return true; // fully trial-divided
        }
    }
    // n is odd and > 2048² here.
    let n_minus_1 = n.sub_u64(1);
    let r = n_minus_1
        .trailing_zeros()
        .expect("n-1 of odd n > 1 is non-zero even");
    let d = &n_minus_1 >> r;
    let ctx = MontgomeryCtx::new(n);

    if !miller_rabin_round(&ctx, n, &d, r, &BigUint::two()) {
        return false;
    }
    let two = BigUint::two();
    for _ in 0..rounds {
        let a = random_range(rng, &two, &n_minus_1);
        if !miller_rabin_round(&ctx, n, &d, r, &a) {
            return false;
        }
    }
    true
}

/// Default Miller-Rabin rounds used by the generators (error `<= 4^-32`).
pub const DEFAULT_MR_ROUNDS: usize = 32;

/// Generates a random prime with exactly `bits` bits (top two bits set, so
/// products of two such primes have the full `2·bits` length).
///
/// Panics if `bits < 4`.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 4, "prime size too small");
    loop {
        let mut candidate = random_bits(rng, bits);
        candidate.set_bit(0, true); // odd
        candidate.set_bit(bits - 1, true);
        if bits >= 2 {
            candidate.set_bit(bits - 2, true);
        }
        if quick_composite(&candidate) {
            continue;
        }
        if is_probable_prime(&candidate, DEFAULT_MR_ROUNDS, rng) {
            return candidate;
        }
    }
}

/// Generates a *safe* prime `p = 2q + 1` with `q` also prime, `p` having
/// exactly `bits` bits. Safe primes strengthen the threshold Damgård-Jurik
/// key setup; plain primes are functionally sufficient (see DESIGN.md §3.2).
pub fn gen_safe_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 5, "safe prime size too small");
    loop {
        let q = gen_prime(bits - 1, rng);
        let p = q.mul_u64(2).add_u64(1);
        if p.bit_len() != bits {
            continue;
        }
        if !quick_composite(&p) && is_probable_prime(&p, DEFAULT_MR_ROUNDS, rng) {
            return p;
        }
    }
}

/// Fast rejection by trial division against the small-prime table.
fn quick_composite(n: &BigUint) -> bool {
    for &p in small_primes() {
        let pb = BigUint::from(p);
        if pb.square() > *n {
            return false;
        }
        if (n % &pb).is_zero() && *n != pb {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_prime_table_correct() {
        let primes = small_primes();
        assert_eq!(&primes[..10], &[2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert!(primes.contains(&2039)); // largest prime < 2048
        assert!(!primes.contains(&2047)); // 23 * 89
    }

    #[test]
    fn known_primes_pass() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in ["1000000007", "4294967311", "18446744073709551557"] {
            let n = BigUint::parse_decimal(p).unwrap();
            assert!(is_probable_prime(&n, 16, &mut rng), "{p} should be prime");
        }
    }

    #[test]
    fn known_composites_fail() {
        let mut rng = StdRng::seed_from_u64(2);
        // Carmichael numbers (fool Fermat, not Miller-Rabin) and a prime square.
        for c in ["561", "41041", "825265", "25326001", "1194649"] {
            let n = BigUint::parse_decimal(c).unwrap();
            assert!(!is_probable_prime(&n, 16, &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn tiny_values() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!is_probable_prime(&BigUint::zero(), 4, &mut rng));
        assert!(!is_probable_prime(&BigUint::one(), 4, &mut rng));
        assert!(is_probable_prime(&BigUint::two(), 4, &mut rng));
        assert!(is_probable_prime(&BigUint::from(3u64), 4, &mut rng));
        assert!(!is_probable_prime(&BigUint::from(4u64), 4, &mut rng));
    }

    #[test]
    fn generated_prime_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = gen_prime(96, &mut rng);
        assert_eq!(p.bit_len(), 96);
        assert!(p.is_odd());
        // Top two bits set ⇒ p ≥ 3·2^94.
        assert!(p.bit(95) && p.bit(94));
    }

    #[test]
    fn generated_primes_differ() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = gen_prime(64, &mut rng);
        let b = gen_prime(64, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn safe_prime_structure() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = gen_safe_prime(48, &mut rng);
        assert_eq!(p.bit_len(), 48);
        let q = (&p.sub_u64(1)) >> 1;
        assert!(is_probable_prime(&q, 16, &mut rng), "(p-1)/2 must be prime");
    }
}
