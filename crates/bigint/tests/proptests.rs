//! Property-based tests for `cs-bigint`.
//!
//! Two families: (1) cross-checks against native `u128` arithmetic on small
//! values, (2) algebraic identities on arbitrarily large values built from
//! random byte strings.

use cs_bigint::{
    gcd::extended_gcd, rng::random_below, BigInt, BigUint, FixedBaseExp, MontgomeryCtx,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn big(v: u128) -> BigUint {
    BigUint::from(v)
}

/// Strategy: arbitrary BigUint up to ~512 bits from raw bytes.
fn any_biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(|bytes| BigUint::from_bytes_le(&bytes))
}

/// Strategy: non-zero BigUint.
fn nonzero_biguint() -> impl Strategy<Value = BigUint> {
    any_biguint().prop_map(|v| if v.is_zero() { BigUint::one() } else { v })
}

proptest! {
    // ---- u128 cross-checks -------------------------------------------------

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let got = &big(a as u128) + &big(b as u128);
        prop_assert_eq!(got.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let got = &big(a as u128) * &big(b as u128);
        prop_assert_eq!(got.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1..=u128::MAX) {
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let got = &big(hi) - &big(lo);
        prop_assert_eq!(got.to_u128(), Some(hi - lo));
    }

    // ---- algebraic identities on large values ------------------------------

    #[test]
    fn add_commutes(a in any_biguint(), b in any_biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn mul_commutes_and_distributes(a in any_biguint(), b in any_biguint(), c in any_biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn div_rem_reconstructs(a in any_biguint(), d in nonzero_biguint()) {
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn sub_inverts_add(a in any_biguint(), b in any_biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn shift_is_mul_by_power_of_two(a in any_biguint(), s in 0usize..200) {
        let shifted = &a << s;
        let back = &shifted >> s;
        prop_assert_eq!(back, a);
    }

    #[test]
    fn bytes_roundtrip(a in any_biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a.clone());
        prop_assert_eq!(BigUint::from_bytes_le(&a.to_bytes_le()), a);
    }

    #[test]
    fn decimal_roundtrip(a in any_biguint()) {
        let s = a.to_str_radix(10);
        prop_assert_eq!(BigUint::parse_decimal(&s).unwrap(), a);
    }

    #[test]
    fn hex_roundtrip(a in any_biguint()) {
        let s = a.to_str_radix(16);
        prop_assert_eq!(BigUint::parse_hex(&s).unwrap(), a);
    }

    // ---- modular arithmetic -------------------------------------------------

    #[test]
    fn montgomery_mul_matches_division(a in any_biguint(), b in any_biguint(), m in nonzero_biguint()) {
        // Force an odd modulus > 1.
        let mut m = m;
        if m.is_even() { m = m.add_u64(1); }
        if m.is_one() { m = BigUint::from(3u64); }
        let ctx = MontgomeryCtx::new(&m);
        let ar = &a % &m;
        let br = &b % &m;
        prop_assert_eq!(ctx.mul_mod(&ar, &br), (&ar * &br) % &m);
    }

    #[test]
    fn mod_pow_agrees_with_iterated_mul(a in any::<u64>(), e in 0u64..40, m in 3u64..u64::MAX) {
        let m = if m % 2 == 0 { m + 1 } else { m };
        let mb = BigUint::from(m);
        let ab = BigUint::from(a % m);
        let mut expect = BigUint::one();
        for _ in 0..e {
            expect = (&expect * &ab) % &mb;
        }
        prop_assert_eq!(ab.mod_pow(&BigUint::from(e), &mb), expect);
    }

    #[test]
    fn mod_inverse_is_inverse(a in 1u64..u64::MAX, m in 2u64..u64::MAX) {
        let ab = BigUint::from(a);
        let mb = BigUint::from(m);
        if let Some(inv) = ab.mod_inverse(&mb) {
            prop_assert_eq!((&ab * &inv) % &mb, BigUint::one());
        } else {
            prop_assert!(!ab.gcd(&mb).is_one());
        }
    }

    #[test]
    fn extended_gcd_bezout(a in any::<u64>(), b in any::<u64>()) {
        let ab = BigInt::from(a);
        let bb = BigInt::from(b);
        let (g, x, y) = extended_gcd(&ab, &bb);
        prop_assert_eq!(&(&ab * &x) + &(&bb * &y), g.clone());
        if a != 0 && b != 0 {
            let gu = g.to_biguint().unwrap();
            prop_assert!((&BigUint::from(a) % &gu).is_zero());
            prop_assert!((&BigUint::from(b) % &gu).is_zero());
        }
    }

    #[test]
    fn gcd_divides_both(a in nonzero_biguint(), b in nonzero_biguint()) {
        let g = a.gcd(&b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }

    // ---- fixed-base exponentiation ------------------------------------------

    /// The fixed-base windowed path must agree with the generic Montgomery
    /// `pow_mod` across random bases, exponents, and (odd) moduli —
    /// including the 0/1 exponent edges and exponents adjacent to the
    /// modulus (the `n^s`-shaped exponents the cryptosystem raises to).
    #[test]
    fn fixed_base_pow_matches_montgomery(
        base in any_biguint(),
        exp in any_biguint(),
        m in nonzero_biguint(),
    ) {
        // Any odd modulus > 1.
        let m = (&(&m << 1) + &BigUint::one()).add_u64(2);
        let ctx = MontgomeryCtx::new(&m);
        let fixed = FixedBaseExp::new(&ctx, &base, 520);
        prop_assert_eq!(fixed.pow_mod(&exp), ctx.pow_mod(&base, &exp));

        // Edge exponents: 0, 1, and modulus-adjacent (m−1, m, m+1).
        for e in [
            BigUint::zero(),
            BigUint::one(),
            m.sub_u64(1),
            m.clone(),
            m.add_u64(1),
        ] {
            prop_assert_eq!(fixed.pow_mod(&e), ctx.pow_mod(&base, &e));
        }
    }

    /// Oversized exponents (beyond the table) transparently fall back to
    /// the generic path.
    #[test]
    fn fixed_base_oversized_exponent_falls_back(
        base in any_biguint(),
        exp in any_biguint(),
        m in nonzero_biguint(),
    ) {
        let m = (&(&m << 1) + &BigUint::one()).add_u64(2);
        let ctx = MontgomeryCtx::new(&m);
        let fixed = FixedBaseExp::new(&ctx, &base, 16);
        prop_assert_eq!(fixed.pow_mod(&exp), ctx.pow_mod(&base, &exp));
    }

    // ---- randomness ---------------------------------------------------------

    #[test]
    fn random_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bb = BigUint::from(bound);
        let v = random_below(&mut rng, &bb);
        prop_assert!(v < bb);
    }
}

/// Deterministic heavyweight check: a 2048-bit Fermat test through the full
/// Montgomery pipeline, too slow for proptest's default case count but
/// valuable as a single integration-style assertion.
#[test]
fn fermat_identity_2048_bit_modulus() {
    // p, q are 64-bit primes; n = p·q; phi = (p-1)(q-1).
    let p = BigUint::parse_decimal("18446744073709551557").unwrap();
    let q = BigUint::parse_decimal("18446744073709551533").unwrap();
    let n = &p * &q;
    let phi = &p.sub_u64(1) * &q.sub_u64(1);
    // Euler: a^phi ≡ 1 mod n for gcd(a, n) = 1. Raise n to the 16th power to
    // get a ~2048-bit odd modulus exercise (identity holds mod n^k for the
    // adjusted phi·n^(k-1)).
    let k = 16usize;
    let mut nk = BigUint::one();
    for _ in 0..k {
        nk = &nk * &n;
    }
    let mut exp = phi;
    for _ in 0..k - 1 {
        exp = &exp * &n;
    }
    let a = BigUint::from(65537u64);
    assert_eq!(a.mod_pow(&exp, &nk), BigUint::one());
    assert!(nk.bit_len() > 2000);
}
