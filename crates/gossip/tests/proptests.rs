//! Property-based tests for the gossip layer: conservation and convergence
//! invariants must hold for arbitrary populations, values, seeds, and
//! failure settings.

use cs_gossip::epidemic::{coverage, EpidemicNode, Versioned};
use cs_gossip::pushsum::{max_relative_error, PushSumNode};
use cs_gossip::{FailureModel, Network, Overlay};
use proptest::prelude::*;

fn network_from(values: &[f64], seed: u64, failure: FailureModel) -> Network<PushSumNode> {
    let nodes: Vec<PushSumNode> = values
        .iter()
        .map(|&v| PushSumNode::new(vec![v], 1.0))
        .collect();
    Network::new(nodes, Overlay::Full, failure, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mass_conserved_for_any_population(
        values in proptest::collection::vec(-100.0f64..100.0, 2..40),
        seed in any::<u64>(),
        cycles in 1usize..20,
    ) {
        let mut net = network_from(&values, seed, FailureModel::none());
        let mass_before: f64 = values.iter().sum();
        net.run_cycles(cycles);
        let mass_after: f64 = net.nodes().iter().map(|n| n.mass().0[0]).sum();
        prop_assert!((mass_before - mass_after).abs() < 1e-6,
            "mass drifted: {mass_before} → {mass_after}");
        let weight_after: f64 = net.nodes().iter().map(|n| n.mass().1).sum();
        prop_assert!((weight_after - values.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn estimates_converge_to_true_average(
        values in proptest::collection::vec(-50.0f64..50.0, 8..32),
        seed in any::<u64>(),
    ) {
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut net = network_from(&values, seed, FailureModel::none());
        net.run_cycles(40);
        // The error is normalized by max(|truth|, 1e-12); when the average
        // sits near zero relative to the value spread, the *relative*
        // measure inflates — use an absolute tolerance on the value scale.
        let err = max_relative_error(net.nodes(), &[truth]) * truth.abs().max(1e-12);
        prop_assert!(err < 1e-2, "absolute error {err} after 40 cycles (values in ±50)");
    }

    #[test]
    fn message_loss_never_corrupts_mass(
        values in proptest::collection::vec(-10.0f64..10.0, 4..24),
        seed in any::<u64>(),
        drop in 0.0f64..0.9,
    ) {
        // Drops skip exchanges atomically, so mass stays exact regardless of
        // the loss rate.
        let mut net = network_from(&values, seed, FailureModel::lossy(drop));
        net.run_cycles(15);
        let mass_after: f64 = net.nodes().iter().map(|n| n.mass().0[0]).sum();
        prop_assert!((values.iter().sum::<f64>() - mass_after).abs() < 1e-6);
    }

    #[test]
    fn epidemic_version_floods_any_population(
        n in 4usize..128,
        source in any::<usize>(),
        seed in any::<u64>(),
    ) {
        let source = source % n;
        let nodes: Vec<_> = (0..n)
            .map(|i| {
                let v = if i == source { 1 } else { 0 };
                EpidemicNode::new(Versioned::new(v, v, 8))
            })
            .collect();
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), seed);
        // Push-pull epidemics cover n nodes in O(log n) cycles; 4·log2(n)+8
        // is a very safe bound.
        let cycles = 4 * (usize::BITS - n.leading_zeros()) as usize + 8;
        net.run_cycles(cycles);
        prop_assert_eq!(coverage(net.nodes(), 1), 1.0);
    }

    #[test]
    fn estimates_invariant_under_value_permutation(
        values in proptest::collection::vec(0.0f64..10.0, 6..16),
        seed in any::<u64>(),
    ) {
        // The aggregate is symmetric: shuffling who holds which value must
        // not change what the network converges to.
        let mut reversed = values.clone();
        reversed.reverse();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut net_a = network_from(&values, seed, FailureModel::none());
        let mut net_b = network_from(&reversed, seed, FailureModel::none());
        net_a.run_cycles(35);
        net_b.run_cycles(35);
        prop_assert!(max_relative_error(net_a.nodes(), &[truth]) < 1e-3);
        prop_assert!(max_relative_error(net_b.nodes(), &[truth]) < 1e-3);
    }
}
