//! Push-sum over additively-homomorphic ciphertexts.
//!
//! The paper's central building block: "a gossip sum algorithm working on
//! additively-homomorphic encrypted data". Classic push-sum halves a node's
//! value each exchange — impossible on a ciphertext, since multiplying the
//! plaintext by the modular inverse of 2 wrecks fixed-point encodings.
//!
//! The reconstruction (DESIGN.md §3.1) keeps push-sum's exact semantics with
//! a *denominator-exponent* representation. A node holds `(C⃗, k, w)` meaning
//! the plaintext vector `Dec(C⃗)/2^k` with push-sum weight `w`:
//!
//! * **halving** increments `k` and halves `w` — the ciphertexts are
//!   untouched;
//! * **addition** aligns denominators homomorphically:
//!   `k' = max(k₁,k₂)`, `C' = C₁^(2^(k'−k₁)) · C₂^(2^(k'−k₂))`;
//! * the cleartext weight is protocol metadata, not private data — exactly
//!   the weight any push-sum implementation must reveal to its peer.
//!
//! Plaintext magnitudes grow by at most `2^cycles`, absorbed by the huge
//! plaintext space `Z_{n^s}`. Estimates converge to the same ratio as
//! plaintext push-sum, but nobody can read them until the collaborative
//! threshold decryption at the end of the computation step.

use crate::network::{CycleProtocol, ExchangeCtx};
use cs_crypto::{
    Ciphertext, FastEncryptor, FixedPointCodec, PrivateKey, PublicKey, RandomizerPool,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Counters for homomorphic operations (drives the demo-style cost model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomomorphicOpCounts {
    /// Ciphertext additions performed.
    pub additions: u64,
    /// Power-of-two scalar multiplications (with non-zero exponent).
    pub pow2_scalings: u64,
    /// Re-randomizations before forwarding.
    pub rerandomizations: u64,
    /// Initial encryptions.
    pub encryptions: u64,
}

impl HomomorphicOpCounts {
    /// Element-wise sum.
    pub fn merge(&mut self, other: &HomomorphicOpCounts) {
        self.additions += other.additions;
        self.pow2_scalings += other.pow2_scalings;
        self.rerandomizations += other.rerandomizations;
        self.encryptions += other.encryptions;
    }
}

/// One half of an encrypted push-sum exchange: the ciphertext slots shed by
/// the initiator, with the denominator exponent and weight they carry. This
/// is the exact payload a message-passing deployment (`cs_net`) serializes.
#[derive(Clone, Serialize, Deserialize)]
pub struct HePush {
    /// The pushed ciphertext slots (already re-randomized when enabled).
    pub slots: Vec<Ciphertext>,
    /// The sender's denominator exponent after halving (plaintext meaning of
    /// slot `i` is `Dec(slots[i]) / 2^denom_exp`).
    pub denom_exp: u32,
    /// The halved push-sum weight travelling with the slots.
    pub weight: f64,
}

impl std::fmt::Debug for HePush {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HePush")
            .field("slots", &self.slots.len())
            .field("denom_exp", &self.denom_exp)
            .field("weight", &self.weight)
            .finish()
    }
}

/// One participant in the encrypted push-sum.
#[derive(Clone)]
pub struct HePushSumNode {
    pk: Arc<PublicKey>,
    /// Fixed-base fast path for the forward re-randomizations; `None` falls
    /// back to the generic [`PublicKey::rerandomize`].
    enc: Option<Arc<FastEncryptor>>,
    /// Pre-warmed randomizer pool for the forward re-randomizations; takes
    /// precedence over per-call generation when present (dry pools fall
    /// back transparently).
    pool: Option<RandomizerPool>,
    cipher: Vec<Ciphertext>,
    denom_exp: u32,
    weight: f64,
    rerandomize: bool,
    ops: HomomorphicOpCounts,
}

impl HePushSumNode {
    /// Creates a node by fixed-point-encoding and encrypting `values`.
    pub fn from_values<R: Rng + ?Sized>(
        pk: Arc<PublicKey>,
        codec: &FixedPointCodec,
        values: &[f64],
        weight: f64,
        rerandomize: bool,
        rng: &mut R,
    ) -> Self {
        let cipher: Vec<Ciphertext> = values
            .iter()
            .map(|&v| {
                let m = codec.encode(v, pk.n_s()).expect("value in range");
                pk.encrypt(&m, rng)
            })
            .collect();
        let ops = HomomorphicOpCounts {
            encryptions: cipher.len() as u64,
            ..Default::default()
        };
        HePushSumNode {
            pk,
            enc: None,
            pool: None,
            cipher,
            denom_exp: 0,
            weight,
            rerandomize,
            ops,
        }
    }

    /// Creates a node from pre-encrypted slots (the Chiaroscuro engine
    /// encrypts contributions itself so zero-slots can use the free trivial
    /// encryption).
    pub fn from_ciphertexts(
        pk: Arc<PublicKey>,
        cipher: Vec<Ciphertext>,
        weight: f64,
        rerandomize: bool,
    ) -> Self {
        HePushSumNode {
            pk,
            enc: None,
            pool: None,
            cipher,
            denom_exp: 0,
            weight,
            rerandomize,
            ops: HomomorphicOpCounts::default(),
        }
    }

    /// Attaches a fixed-base [`FastEncryptor`] so forward re-randomizations
    /// take the precomputed-window path instead of a full exponentiation.
    pub fn with_encryptor(mut self, enc: Arc<FastEncryptor>) -> Self {
        self.enc = Some(enc);
        self
    }

    /// Attaches a pre-warmed [`RandomizerPool`]: forward re-randomizations
    /// pop pooled randomizers (built during idle time) instead of paying a
    /// fixed-base exponentiation on the hot path. A dry pool falls back to
    /// fresh generation, so correctness never depends on pool sizing.
    pub fn with_pool(mut self, pool: RandomizerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Detaches the randomizer pool (leftovers included) so a long-lived
    /// host — the `cs_node` daemon — can refill it between steps and hand
    /// it to the next step's node.
    pub fn take_pool(&mut self) -> Option<RandomizerPool> {
        self.pool.take()
    }

    /// The encrypted slots (for collaborative decryption).
    pub fn ciphertexts(&self) -> &[Ciphertext] {
        &self.cipher
    }

    /// The denominator exponent `k` (plaintext = `Dec(C)/2^k`).
    pub fn denominator_exp(&self) -> u32 {
        self.denom_exp
    }

    /// The push-sum weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Homomorphic operation counters accumulated by this node.
    pub fn op_counts(&self) -> HomomorphicOpCounts {
        self.ops
    }

    /// Number of encrypted slots.
    pub fn dim(&self) -> usize {
        self.cipher.len()
    }

    /// Decrypts this node's estimate with a full private key (tests and
    /// invariant checks; the protocol itself uses threshold decryption).
    ///
    /// Returns `None` while the weight is numerically zero.
    pub fn decrypt_estimate(&self, sk: &PrivateKey, codec: &FixedPointCodec) -> Option<Vec<f64>> {
        if self.weight <= f64::MIN_POSITIVE {
            return None;
        }
        Some(
            self.cipher
                .iter()
                .map(|c| {
                    let raw = sk.decrypt(c);
                    codec.decode(&raw, self.pk.n_s(), self.denom_exp) / self.weight
                })
                .collect(),
        )
    }

    /// The *mass* this node holds in value space: `Dec(C)/2^k` per slot
    /// (conservation diagnostics).
    pub fn decrypt_mass(&self, sk: &PrivateKey, codec: &FixedPointCodec) -> Vec<f64> {
        self.cipher
            .iter()
            .map(|c| codec.decode(&sk.decrypt(c), self.pk.n_s(), self.denom_exp))
            .collect()
    }

    /// Serialized payload size of one push message from this node.
    pub fn message_bytes(&self) -> usize {
        self.cipher.len() * self.pk.ciphertext_bytes() + 4 + 8
    }

    /// First half of one push exchange: halves the local mass (increment the
    /// denominator exponent, halve the weight — ciphertexts untouched) and
    /// returns the shed half as a wire-ready payload, re-randomized when the
    /// node is configured to do so.
    pub fn split_push<R: Rng + ?Sized>(&mut self, rng: &mut R) -> HePush {
        self.denom_exp += 1;
        self.weight *= 0.5;
        let slots: Vec<Ciphertext> = self
            .cipher
            .iter()
            .map(|c| {
                if self.rerandomize {
                    self.ops.rerandomizations += 1;
                    match (&mut self.pool, &self.enc) {
                        (Some(pool), _) => pool.rerandomize(c, rng),
                        (None, Some(enc)) => enc.rerandomize(c, rng),
                        (None, None) => self.pk.rerandomize(c, rng),
                    }
                } else {
                    c.clone()
                }
            })
            .collect();
        HePush {
            slots,
            denom_exp: self.denom_exp,
            weight: self.weight,
        }
    }

    /// Second half of one push exchange: folds a received push into the
    /// local mass, aligning denominators homomorphically
    /// (`k' = max(k₁,k₂)`, `C' = C₁^(2^(k'−k₁)) · C₂^(2^(k'−k₂))`).
    pub fn absorb(&mut self, push: &HePush) {
        debug_assert_eq!(self.dim(), push.slots.len(), "dimension mismatch");
        let k_new = push.denom_exp.max(self.denom_exp);
        let incoming_shift = k_new - push.denom_exp;
        let local_shift = k_new - self.denom_exp;
        for (local, incoming) in self.cipher.iter_mut().zip(&push.slots) {
            let mut incoming = incoming.clone();
            if incoming_shift > 0 {
                incoming = self.pk.scalar_mul_pow2(&incoming, incoming_shift);
                self.ops.pow2_scalings += 1;
            }
            let mut aligned = local.clone();
            if local_shift > 0 {
                aligned = self.pk.scalar_mul_pow2(&aligned, local_shift);
                self.ops.pow2_scalings += 1;
            }
            *local = self.pk.add(&aligned, &incoming);
            self.ops.additions += 1;
        }
        self.denom_exp = k_new;
        self.weight += push.weight;
    }
}

impl std::fmt::Debug for HePushSumNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HePushSumNode")
            .field("slots", &self.cipher.len())
            .field("denom_exp", &self.denom_exp)
            .field("weight", &self.weight)
            .finish()
    }
}

impl CycleProtocol for HePushSumNode {
    fn exchange(&mut self, peer: &mut Self, ctx: &mut ExchangeCtx<'_>) {
        debug_assert_eq!(self.dim(), peer.dim(), "dimension mismatch");
        // The shared-memory exchange is the message-passing one with a
        // perfect link: split (re-randomizing so the wire ciphertext cannot
        // be linked to this node's stored one), deliver, absorb.
        let push = self.split_push(ctx.rng);
        peer.absorb(&push);
        ctx.record_message(self.message_bytes());
    }
}

/// Maximum relative error of all estimates against the true aggregate,
/// decrypting with the full key (test/diagnostic helper).
pub fn max_relative_error(
    nodes: &[HePushSumNode],
    sk: &PrivateKey,
    codec: &FixedPointCodec,
    truth: &[f64],
) -> f64 {
    let scale = truth
        .iter()
        .map(|t| t.abs())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    nodes
        .iter()
        .filter_map(|n| n.decrypt_estimate(sk, codec))
        .map(|est| {
            est.iter()
                .zip(truth)
                .map(|(e, t)| (e - t).abs() / scale)
                .fold(0.0f64, f64::max)
        })
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureModel, Network, Overlay};
    use cs_crypto::{KeyGenOptions, KeyPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        n: usize,
        seed: u64,
    ) -> (Arc<PublicKey>, KeyPair, FixedPointCodec, Vec<HePushSumNode>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&KeyGenOptions::insecure_test_size(), &mut rng);
        let pk = Arc::new(kp.public().clone());
        let codec = FixedPointCodec::new(20);
        let nodes: Vec<HePushSumNode> = (0..n)
            .map(|i| {
                HePushSumNode::from_values(
                    pk.clone(),
                    &codec,
                    &[i as f64, -(i as f64) * 0.5],
                    1.0,
                    false,
                    &mut rng,
                )
            })
            .collect();
        (pk, kp, codec, nodes)
    }

    #[test]
    fn converges_to_average_under_encryption() {
        let n = 16;
        let (_pk, kp, codec, nodes) = setup(n, 1);
        let truth = vec![(n - 1) as f64 / 2.0, -((n - 1) as f64) / 4.0];
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), 2);
        net.run_cycles(25);
        let err = max_relative_error(net.nodes(), kp.private(), &codec, &truth);
        assert!(err < 1e-3, "error {err}");
    }

    #[test]
    fn mass_conserved_in_value_space() {
        let (_pk, kp, codec, nodes) = setup(8, 3);
        let before: f64 = nodes
            .iter()
            .map(|n| n.decrypt_mass(kp.private(), &codec)[0])
            .sum();
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), 4);
        net.run_cycles(12);
        let after: f64 = net
            .nodes()
            .iter()
            .map(|n| n.decrypt_mass(kp.private(), &codec)[0])
            .sum();
        assert!(
            (before - after).abs() < 1e-3,
            "mass drifted: {before} → {after}"
        );
    }

    #[test]
    fn weight_conserved() {
        let (_pk, _kp, _codec, nodes) = setup(8, 5);
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), 6);
        net.run_cycles(15);
        let total_weight: f64 = net.nodes().iter().map(|n| n.weight()).sum();
        assert!((total_weight - 8.0).abs() < 1e-9);
    }

    #[test]
    fn matches_plaintext_pushsum_shape() {
        // Same seeds, same topology: encrypted and plaintext push-sum must
        // produce near-identical estimates (up to fixed-point granularity).
        let n = 10;
        let (_pk, kp, codec, he_nodes) = setup(n, 7);
        let ps_nodes: Vec<crate::pushsum::PushSumNode> = (0..n)
            .map(|i| crate::pushsum::PushSumNode::new(vec![i as f64, -(i as f64) * 0.5], 1.0))
            .collect();
        let mut he_net = Network::new(he_nodes, Overlay::Full, FailureModel::none(), 99);
        let mut ps_net = Network::new(ps_nodes, Overlay::Full, FailureModel::none(), 99);
        he_net.run_cycles(15);
        ps_net.run_cycles(15);
        for (he, ps) in he_net.nodes().iter().zip(ps_net.nodes()) {
            let he_est = he.decrypt_estimate(kp.private(), &codec).unwrap();
            let ps_est = ps.estimate().unwrap();
            for (a, b) in he_est.iter().zip(&ps_est) {
                assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn rerandomization_keeps_estimates_correct() {
        let mut rng = StdRng::seed_from_u64(8);
        let kp = KeyPair::generate(&KeyGenOptions::insecure_test_size(), &mut rng);
        let pk = Arc::new(kp.public().clone());
        let codec = FixedPointCodec::new(20);
        let nodes: Vec<HePushSumNode> = (0..8)
            .map(|i| {
                HePushSumNode::from_values(pk.clone(), &codec, &[i as f64], 1.0, true, &mut rng)
            })
            .collect();
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), 9);
        net.run_cycles(20);
        let err = max_relative_error(net.nodes(), kp.private(), &codec, &[3.5]);
        assert!(err < 1e-3, "error {err}");
        let total_ops: u64 = net
            .nodes()
            .iter()
            .map(|n| n.op_counts().rerandomizations)
            .sum();
        assert!(total_ops > 0, "re-randomizations must be counted");
    }

    #[test]
    fn op_counting_tracks_work() {
        let (_pk, _kp, _codec, nodes) = setup(6, 10);
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), 11);
        net.run_cycles(5);
        let mut total = HomomorphicOpCounts::default();
        for n in net.nodes() {
            total.merge(&n.op_counts());
        }
        // 5 cycles × 6 initiations × 2 slots = 60 additions expected.
        assert_eq!(total.additions, 60);
        assert!(total.pow2_scalings > 0);
        assert_eq!(total.encryptions, 12);
    }

    #[test]
    fn split_then_absorb_conserves_mass_and_aligns_denominators() {
        let mut rng = StdRng::seed_from_u64(13);
        let (_pk, kp, codec, mut nodes) = setup(2, 14);
        let before: Vec<f64> = nodes
            .iter()
            .map(|n| n.decrypt_mass(kp.private(), &codec)[0])
            .collect();
        let (a, b) = nodes.split_at_mut(1);
        let push = a[0].split_push(&mut rng);
        assert_eq!(push.denom_exp, 1);
        assert_eq!(push.weight, 0.5);
        b[0].absorb(&push);
        assert_eq!(b[0].denominator_exp(), 1);
        assert!((b[0].weight() - 1.5).abs() < 1e-12);
        let after: f64 = nodes
            .iter()
            .map(|n| n.decrypt_mass(kp.private(), &codec)[0])
            .sum();
        assert!((after - before.iter().sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn message_bytes_scale_with_key_and_slots() {
        let (_pk, _kp, _codec, nodes) = setup(2, 12);
        // 256-bit n → 512-bit n² → 64-byte ciphertexts; 2 slots + k + weight.
        let expected = 2 * 64 + 4 + 8;
        assert_eq!(nodes[0].message_bytes(), expected);
    }

    #[test]
    fn pooled_splits_preserve_mass_and_run_pool_dry() {
        let mut rng = StdRng::seed_from_u64(15);
        let kp = KeyPair::generate(&KeyGenOptions::insecure_test_size(), &mut rng);
        let pk = Arc::new(kp.public().clone());
        let codec = FixedPointCodec::new(20);
        let enc = Arc::new(FastEncryptor::new(pk.clone(), &mut rng));
        let mut a =
            HePushSumNode::from_values(pk.clone(), &codec, &[8.0, -4.0], 1.0, true, &mut rng)
                .with_encryptor(enc.clone());
        let mut pool = RandomizerPool::new(enc);
        pool.refill(3, &mut rng);
        a = a.with_pool(pool);
        let mut b = HePushSumNode::from_values(pk, &codec, &[0.0, 0.0], 1.0, true, &mut rng);
        // Two splits × two slots = four re-randomizations: three pooled,
        // one dry-pool fallback.
        for _ in 0..2 {
            let push = a.split_push(&mut rng);
            b.absorb(&push);
        }
        let leftover = a.take_pool().expect("pool installed");
        assert!(leftover.is_empty(), "all three pooled randomizers consumed");
        let mass: f64 = a
            .decrypt_mass(kp.private(), &codec)
            .iter()
            .zip(b.decrypt_mass(kp.private(), &codec).iter())
            .map(|(x, y)| x + y)
            .sum();
        assert!((mass - 4.0).abs() < 1e-6, "8 − 4 conserved, got {mass}");
    }
}
