//! Peer sampling.
//!
//! Gossip correctness rests on (approximately) uniform peer sampling. The
//! full-view overlay is Peersim's idealized setting; the partial view models
//! a Newscast-style membership service where each node only knows a random
//! subset refreshed over time.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Overlay topology used to sample gossip targets.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Overlay {
    /// Every node can contact every other node (idealized uniform sampling).
    Full,
    /// Each node holds a `view_size`-entry random view; each cycle a random
    /// entry of the view is replaced by a fresh uniform sample (a light
    /// abstraction of Newscast's view exchange).
    PartialView {
        /// Number of known peers per node.
        view_size: usize,
    },
}

/// Runtime state of the overlay (views for the partial case).
#[derive(Clone, Debug)]
pub struct OverlayState {
    overlay: Overlay,
    views: Vec<Vec<usize>>,
    n: usize,
}

impl OverlayState {
    /// Initializes the overlay for `n` nodes.
    ///
    /// Panics if `n < 2` (gossip needs someone to talk to) or if a partial
    /// view is configured with size 0.
    pub fn new(overlay: Overlay, n: usize, rng: &mut StdRng) -> Self {
        assert!(n >= 2, "gossip needs at least two nodes");
        let views = match &overlay {
            Overlay::Full => Vec::new(),
            Overlay::PartialView { view_size } => {
                assert!(*view_size >= 1, "view size must be positive");
                (0..n)
                    .map(|me| (0..*view_size).map(|_| sample_other(me, n, rng)).collect())
                    .collect()
            }
        };
        OverlayState { overlay, views, n }
    }

    /// Samples a gossip target for `me`.
    pub fn sample(&mut self, me: usize, rng: &mut StdRng) -> usize {
        match &self.overlay {
            Overlay::Full => sample_other(me, self.n, rng),
            Overlay::PartialView { .. } => {
                let view = &mut self.views[me];
                // Refresh one entry, then pick one.
                let refresh_idx = rng.gen_range(0..view.len());
                view[refresh_idx] = sample_other(me, self.n, rng);
                view[rng.gen_range(0..view.len())]
            }
        }
    }

    /// The configured overlay.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }
}

fn sample_other(me: usize, n: usize, rng: &mut StdRng) -> usize {
    // Uniform over the n-1 other nodes.
    let raw = rng.gen_range(0..n - 1);
    if raw >= me {
        raw + 1
    } else {
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn full_view_never_returns_self_and_covers_all() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = OverlayState::new(Overlay::Full, 10, &mut rng);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let t = state.sample(3, &mut rng);
            assert_ne!(t, 3);
            seen[t] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert_eq!(covered, 9, "all other nodes reachable");
    }

    #[test]
    fn full_view_approximately_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut state = OverlayState::new(Overlay::Full, 5, &mut rng);
        let mut counts = [0usize; 5];
        let trials = 40_000;
        for _ in 0..trials {
            counts[state.sample(0, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        for &c in &counts[1..] {
            let p = c as f64 / trials as f64;
            assert!((p - 0.25).abs() < 0.02, "p = {p}");
        }
    }

    #[test]
    fn partial_view_returns_known_peers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut state = OverlayState::new(Overlay::PartialView { view_size: 4 }, 50, &mut rng);
        for me in 0..50 {
            for _ in 0..20 {
                let t = state.sample(me, &mut rng);
                assert!(t < 50);
                assert_ne!(t, me);
            }
        }
    }

    #[test]
    fn partial_view_refresh_expands_coverage() {
        // With refresh, a node should eventually reach far more peers than
        // its view size.
        let mut rng = StdRng::seed_from_u64(4);
        let mut state = OverlayState::new(Overlay::PartialView { view_size: 3 }, 40, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..600 {
            seen.insert(state.sample(7, &mut rng));
        }
        assert!(seen.len() > 25, "coverage {} too small", seen.len());
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        OverlayState::new(Overlay::Full, 1, &mut rng);
    }
}
