//! Message and byte accounting.
//!
//! The demo GUI displays per-participant network costs; every simulated
//! exchange reports its payload here.

use serde::{Deserialize, Serialize};

/// Cumulative traffic counters for one simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Messages successfully delivered.
    pub messages: u64,
    /// Payload bytes successfully delivered.
    pub bytes: u64,
    /// Messages lost to drops or dead targets.
    pub dropped: u64,
    /// Exchanges skipped because the initiator was crashed.
    pub initiator_down: u64,
}

impl TrafficStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivered message of `bytes` payload.
    pub fn record_message(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
    }

    /// Records one lost message.
    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Records a skipped initiation.
    pub fn record_initiator_down(&mut self) {
        self.initiator_down += 1;
    }

    /// Average delivered bytes per message (0 when nothing was delivered).
    pub fn avg_message_bytes(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bytes as f64 / self.messages as f64
        }
    }

    /// Fraction of attempted messages that were lost.
    pub fn loss_rate(&self) -> f64 {
        let attempted = self.messages + self.dropped;
        if attempted == 0 {
            0.0
        } else {
            self.dropped as f64 / attempted as f64
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.dropped += other.dropped;
        self.initiator_down += other.initiator_down;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = TrafficStats::new();
        t.record_message(100);
        t.record_message(300);
        t.record_drop();
        assert_eq!(t.messages, 2);
        assert_eq!(t.bytes, 400);
        assert_eq!(t.avg_message_bytes(), 200.0);
        assert!((t.loss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let t = TrafficStats::new();
        assert_eq!(t.avg_message_bytes(), 0.0);
        assert_eq!(t.loss_rate(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = TrafficStats::new();
        a.record_message(10);
        let mut b = TrafficStats::new();
        b.record_message(20);
        b.record_drop();
        a.merge(&b);
        assert_eq!(a.messages, 2);
        assert_eq!(a.bytes, 30);
        assert_eq!(a.dropped, 1);
    }
}
