//! Epidemic (push-pull anti-entropy) dissemination of mergeable state.
//!
//! Once a perturbed aggregate is decrypted by some participants, everyone
//! needs it; and "the late participants simply synchronize on the latest
//! iteration during their gossip exchanges" (paper §II-B). Both are instances
//! of spreading a join-semilattice value: exchanges merge the two sides'
//! states, and the maximum/latest value floods the network in `O(log n)`
//! cycles.

use crate::network::{CycleProtocol, ExchangeCtx};

/// A join-semilattice value: merging is commutative, associative,
/// idempotent.
pub trait Merge: Clone {
    /// Merges `other` into `self`; returns `true` if `self` changed.
    fn merge_from(&mut self, other: &Self) -> bool;
    /// Serialized size in bytes (for traffic accounting).
    fn payload_bytes(&self) -> usize;
}

/// Epidemic node wrapping a mergeable value.
#[derive(Clone, Debug)]
pub struct EpidemicNode<T: Merge> {
    /// The node's current view of the disseminated value.
    pub value: T,
}

impl<T: Merge> EpidemicNode<T> {
    /// Creates a node with an initial value.
    pub fn new(value: T) -> Self {
        EpidemicNode { value }
    }
}

impl<T: Merge> CycleProtocol for EpidemicNode<T> {
    fn exchange(&mut self, peer: &mut Self, ctx: &mut ExchangeCtx<'_>) {
        // Push-pull: both directions in one exchange.
        ctx.record_message(self.value.payload_bytes());
        let peer_changed = peer.value.merge_from(&self.value);
        ctx.record_message(peer.value.payload_bytes());
        let _ = self.value.merge_from(&peer.value);
        let _ = peer_changed;
    }
}

/// A versioned payload: the highest `version` wins (the "latest iteration"
/// merge Chiaroscuro's synchronization needs).
#[derive(Clone, Debug, PartialEq)]
pub struct Versioned<T: Clone> {
    /// Monotone version (Chiaroscuro: iteration number).
    pub version: u64,
    /// The payload at that version.
    pub payload: T,
    /// Approximate serialized size of the payload.
    pub payload_size: usize,
}

impl<T: Clone> Versioned<T> {
    /// Creates a versioned value.
    pub fn new(version: u64, payload: T, payload_size: usize) -> Self {
        Versioned {
            version,
            payload,
            payload_size,
        }
    }
}

impl<T: Clone> Merge for Versioned<T> {
    fn merge_from(&mut self, other: &Self) -> bool {
        if other.version > self.version {
            self.version = other.version;
            self.payload = other.payload.clone();
            self.payload_size = other.payload_size;
            true
        } else {
            false
        }
    }

    fn payload_bytes(&self) -> usize {
        8 + self.payload_size
    }
}

/// Fraction of nodes whose value has at least the given version.
pub fn coverage<T: Clone>(nodes: &[EpidemicNode<Versioned<T>>], version: u64) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    nodes.iter().filter(|n| n.value.version >= version).count() as f64 / nodes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureModel, Network, Overlay};

    fn fresh_network(n: usize, seed: u64) -> Network<EpidemicNode<Versioned<u64>>> {
        let nodes: Vec<_> = (0..n)
            .map(|_| EpidemicNode::new(Versioned::new(0, 0u64, 8)))
            .collect();
        Network::new(nodes, Overlay::Full, FailureModel::none(), seed)
    }

    #[test]
    fn single_source_floods_logarithmically() {
        let n = 256;
        let mut net = fresh_network(n, 1);
        net.nodes_mut()[17] = EpidemicNode::new(Versioned::new(1, 4242u64, 8));
        // log2(256) = 8; push-pull needs ~log n + O(1) cycles.
        net.run_cycles(12);
        assert_eq!(coverage(net.nodes(), 1), 1.0, "everyone must have v1");
        assert!(net.nodes().iter().all(|nd| nd.value.payload == 4242));
    }

    #[test]
    fn highest_version_wins_everywhere() {
        let mut net = fresh_network(64, 2);
        net.nodes_mut()[3] = EpidemicNode::new(Versioned::new(5, 555u64, 8));
        net.nodes_mut()[40] = EpidemicNode::new(Versioned::new(9, 999u64, 8));
        net.run_cycles(15);
        for nd in net.nodes() {
            assert_eq!(nd.value.version, 9);
            assert_eq!(nd.value.payload, 999);
        }
    }

    #[test]
    fn coverage_grows_monotonically() {
        let mut net = fresh_network(128, 3);
        net.nodes_mut()[0] = EpidemicNode::new(Versioned::new(1, 1u64, 8));
        let mut last = coverage(net.nodes(), 1);
        for _ in 0..10 {
            net.run_cycle();
            let now = coverage(net.nodes(), 1);
            assert!(now >= last, "coverage must not shrink");
            last = now;
        }
        assert!(last > 0.9);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = Versioned::new(3, 30u64, 8);
        let b = Versioned::new(3, 31u64, 8);
        assert!(!a.merge_from(&b), "equal version must not overwrite");
        assert_eq!(a.payload, 30);
    }

    #[test]
    fn spreads_under_message_loss() {
        let n = 128;
        let nodes: Vec<_> = (0..n)
            .map(|_| EpidemicNode::new(Versioned::new(0, 0u64, 8)))
            .collect();
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::lossy(0.25), 4);
        net.nodes_mut()[0] = EpidemicNode::new(Versioned::new(1, 7u64, 8));
        net.run_cycles(25);
        assert!(
            coverage(net.nodes(), 1) > 0.99,
            "epidemic must beat 25% loss"
        );
    }
}
