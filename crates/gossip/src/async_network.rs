//! Event-driven simulation: asynchronous initiations at heterogeneous rates.
//!
//! Peersim offers a cycle-driven and an event-driven engine; the demo uses
//! the former, and so does [`crate::network::Network`]. This module is the
//! event-driven counterpart: each node initiates exchanges at the jitters of
//! its own Poisson clock (heterogeneous rates model slow phones next to fast
//! laptops), with no global rounds at all — the strongest form of the
//! paper's "proceeds without any global synchronization".
//!
//! Exchanges keep rendezvous semantics (an initiation atomically touches
//! both endpoints, like an RPC), so any [`CycleProtocol`] runs unchanged on
//! either engine.

use crate::failure::FailureModel;
use crate::network::{CycleProtocol, ExchangeCtx, NodeId};
use crate::overlay::{Overlay, OverlayState};
use crate::traffic::TrafficStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled initiation event (min-heap by time).
struct Event {
    time: f64,
    node: NodeId,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.node == other.node
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Callback installed by [`AsyncNetwork::set_exchange_observer`]:
/// `(clock, initiator, target)` after each completed rendezvous.
pub type ExchangeObserver = Box<dyn FnMut(f64, NodeId, NodeId)>;

/// An asynchronously scheduled population of `P` instances.
pub struct AsyncNetwork<P: CycleProtocol> {
    nodes: Vec<P>,
    alive: Vec<bool>,
    rates: Vec<f64>,
    overlay: OverlayState,
    failure: FailureModel,
    traffic: TrafficStats,
    rng: StdRng,
    clock: f64,
    queue: BinaryHeap<Event>,
    initiations: u64,
    /// Coarse observability hook, called once per *completed* exchange
    /// with `(clock, initiator, target)`. See [`Self::set_exchange_observer`].
    observer: Option<ExchangeObserver>,
}

impl<P: CycleProtocol> AsyncNetwork<P> {
    /// Builds a network where node `i` initiates exchanges as a Poisson
    /// process with rate `rates[i]` (exchanges per unit time).
    ///
    /// Panics on fewer than two nodes, a rate count mismatch, or
    /// non-positive rates.
    pub fn new(
        nodes: Vec<P>,
        overlay: Overlay,
        failure: FailureModel,
        rates: Vec<f64>,
        seed: u64,
    ) -> Self {
        assert!(nodes.len() >= 2, "need at least two nodes");
        assert_eq!(nodes.len(), rates.len(), "one rate per node");
        assert!(
            rates.iter().all(|&r| r > 0.0 && r.is_finite()),
            "rates must be positive"
        );
        failure.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let overlay = OverlayState::new(overlay, nodes.len(), &mut rng);
        let mut queue = BinaryHeap::with_capacity(nodes.len());
        for (i, &rate) in rates.iter().enumerate() {
            let dt = exponential(&mut rng, rate);
            queue.push(Event { time: dt, node: i });
        }
        let alive = vec![true; nodes.len()];
        AsyncNetwork {
            nodes,
            alive,
            rates,
            overlay,
            failure,
            traffic: TrafficStats::new(),
            rng,
            clock: 0.0,
            queue,
            initiations: 0,
            observer: None,
        }
    }

    /// Installs a coarse exchange observer: `f(clock, initiator, target)`
    /// fires after every completed rendezvous (dropped or dead-peer
    /// initiations never reach it). This is the event-driven engine's
    /// tracing seam — the caller bridges into whatever recorder it likes
    /// (e.g. a `cs_obs` tracer) without this crate growing the dependency.
    /// The observer sees the simulation, it never steers it: scheduling,
    /// RNG draws, and protocol state are unaffected.
    pub fn set_exchange_observer(&mut self, f: ExchangeObserver) {
        self.observer = Some(f);
    }

    /// Uniform rate `1.0` for every node (the homogeneous baseline).
    pub fn with_uniform_rates(
        nodes: Vec<P>,
        overlay: Overlay,
        failure: FailureModel,
        seed: u64,
    ) -> Self {
        let n = nodes.len();
        Self::new(nodes, overlay, failure, vec![1.0; n], seed)
    }

    /// Current simulation time.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Total initiations processed so far.
    pub fn initiations(&self) -> u64 {
        self.initiations
    }

    /// Immutable view of the protocol instances.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Cumulative traffic counters.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Liveness of node `i`.
    pub fn is_alive(&self, i: NodeId) -> bool {
        self.alive[i]
    }

    /// Forces the liveness of a node.
    pub fn set_alive(&mut self, i: NodeId, alive: bool) {
        self.alive[i] = alive;
    }

    /// Advances the simulation until the clock reaches `t`.
    ///
    /// At mean rate 1 this processes about `n` initiations per unit time —
    /// one time unit corresponds to one cycle of the synchronous engine.
    pub fn run_until(&mut self, t: f64) {
        while let Some(ev) = self.queue.peek() {
            if ev.time > t {
                break;
            }
            let Event { time, node } = self.queue.pop().expect("peeked");
            self.clock = time;

            // Crash/recovery is evaluated lazily at the node's own events.
            if self.alive[node] {
                if self.rng.gen::<f64>() < self.failure.crash_prob {
                    self.alive[node] = false;
                }
            } else if self.rng.gen::<f64>() < self.failure.recovery_prob {
                self.alive[node] = true;
            }

            if self.alive[node] {
                self.initiations += 1;
                let target = self.overlay.sample(node, &mut self.rng);
                if !self.alive[target] || self.rng.gen::<f64>() < self.failure.drop_prob {
                    self.traffic.record_drop();
                } else {
                    let (initiator, peer) = pair_mut(&mut self.nodes, node, target);
                    let mut ctx = ExchangeCtx {
                        cycle: self.clock as u64,
                        initiator: node,
                        target,
                        rng: &mut self.rng,
                        traffic: &mut self.traffic,
                    };
                    initiator.exchange(peer, &mut ctx);
                    if let Some(obs) = &mut self.observer {
                        obs(self.clock, node, target);
                    }
                }
            } else {
                self.traffic.record_initiator_down();
            }

            // Schedule this node's next initiation.
            let dt = exponential(&mut self.rng, self.rates[node]);
            self.queue.push(Event {
                time: self.clock + dt,
                node,
            });
        }
        self.clock = t.max(self.clock);
    }
}

/// Exponential inter-arrival sample with the given rate.
fn exponential(rng: &mut StdRng, rate: f64) -> f64 {
    -(1.0 - rng.gen::<f64>()).ln() / rate
}

/// Mutable references to two distinct elements.
fn pair_mut<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j, "pair_mut requires distinct indices");
    if i < j {
        let (lo, hi) = v.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pushsum::{max_relative_error, PushSumNode};

    fn pushsum_nodes(n: usize) -> (Vec<PushSumNode>, Vec<f64>) {
        let nodes: Vec<PushSumNode> = (0..n)
            .map(|i| PushSumNode::new(vec![i as f64], 1.0))
            .collect();
        let truth = vec![(n - 1) as f64 / 2.0];
        (nodes, truth)
    }

    #[test]
    fn event_count_tracks_rates() {
        let (nodes, _) = pushsum_nodes(50);
        let mut net =
            AsyncNetwork::with_uniform_rates(nodes, Overlay::Full, FailureModel::none(), 1);
        net.run_until(20.0);
        // 50 nodes × rate 1 × 20 time units ≈ 1000 initiations.
        let got = net.initiations();
        assert!((800..1200).contains(&(got as usize)), "initiations {got}");
    }

    #[test]
    fn converges_under_asynchrony() {
        let (nodes, truth) = pushsum_nodes(64);
        let mut net =
            AsyncNetwork::with_uniform_rates(nodes, Overlay::Full, FailureModel::none(), 2);
        net.run_until(40.0); // ≈ 40 synchronous cycles of mixing
        let err = max_relative_error(net.nodes(), &truth);
        assert!(err < 1e-4, "async push-sum error {err}");
    }

    #[test]
    fn converges_with_heterogeneous_rates() {
        // Slow phones (0.2) mixed with fast laptops (3.0): convergence must
        // survive a 15× rate spread.
        let (nodes, truth) = pushsum_nodes(60);
        let rates: Vec<f64> = (0..60)
            .map(|i| if i % 3 == 0 { 0.2 } else { 3.0 })
            .collect();
        let mut net = AsyncNetwork::new(nodes, Overlay::Full, FailureModel::none(), rates, 3);
        net.run_until(120.0);
        // Slow nodes initiate rarely and converge passively (they still
        // receive pushes), so the straggler tolerance is looser than in the
        // homogeneous test.
        let err = max_relative_error(net.nodes(), &truth);
        assert!(err < 0.01, "heterogeneous push-sum error {err}");
    }

    #[test]
    fn exchange_observer_sees_every_completed_exchange_without_steering() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let (nodes, _) = pushsum_nodes(16);
        let mut plain =
            AsyncNetwork::with_uniform_rates(nodes, Overlay::Full, FailureModel::none(), 9);
        plain.run_until(10.0);
        let plain_values: Vec<Option<Vec<f64>>> =
            plain.nodes().iter().map(|n| n.estimate()).collect();

        let (nodes, _) = pushsum_nodes(16);
        let mut observed =
            AsyncNetwork::with_uniform_rates(nodes, Overlay::Full, FailureModel::none(), 9);
        let log: Rc<RefCell<Vec<(f64, NodeId, NodeId)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = log.clone();
        observed.set_exchange_observer(Box::new(move |t, a, b| sink.borrow_mut().push((t, a, b))));
        observed.run_until(10.0);

        let log = log.borrow();
        // No failures configured, so every initiation completes and the
        // observer saw each one, time-ordered and well-formed.
        assert_eq!(log.len() as u64, observed.initiations());
        assert!(log.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(log.iter().all(|&(_, a, b)| a != b && a < 16 && b < 16));
        // Observation is passive: same seed, same trajectory.
        let observed_values: Vec<Option<Vec<f64>>> =
            observed.nodes().iter().map(|n| n.estimate()).collect();
        assert_eq!(plain_values, observed_values);
    }

    #[test]
    fn mass_conserved_asynchronously() {
        let (nodes, _) = pushsum_nodes(32);
        let mass_before: f64 = nodes.iter().map(|n| n.mass().0[0]).sum();
        let mut net =
            AsyncNetwork::with_uniform_rates(nodes, Overlay::Full, FailureModel::none(), 4);
        net.run_until(25.0);
        let mass_after: f64 = net.nodes().iter().map(|n| n.mass().0[0]).sum();
        assert!((mass_before - mass_after).abs() < 1e-9);
    }

    #[test]
    fn clock_advances_monotonically_to_target() {
        let (nodes, _) = pushsum_nodes(8);
        let mut net =
            AsyncNetwork::with_uniform_rates(nodes, Overlay::Full, FailureModel::none(), 5);
        net.run_until(3.0);
        let t1 = net.clock();
        assert!(t1 >= 3.0);
        net.run_until(10.0);
        assert!(net.clock() >= t1);
    }

    #[test]
    fn crashed_nodes_do_not_initiate() {
        let (nodes, _) = pushsum_nodes(4);
        let mut net =
            AsyncNetwork::with_uniform_rates(nodes, Overlay::Full, FailureModel::none(), 6);
        net.set_alive(0, false);
        net.run_until(10.0);
        assert!(net.traffic().initiator_down > 0);
        assert!(!net.is_alive(0));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let (nodes, _) = pushsum_nodes(20);
            let mut net =
                AsyncNetwork::with_uniform_rates(nodes, Overlay::Full, FailureModel::none(), seed);
            net.run_until(15.0);
            (
                net.initiations(),
                net.nodes()
                    .iter()
                    .map(|n| n.estimate().unwrap()[0])
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn zero_rate_rejected() {
        let (nodes, _) = pushsum_nodes(4);
        AsyncNetwork::new(
            nodes,
            Overlay::Full,
            FailureModel::none(),
            vec![1.0, 0.0, 1.0, 1.0],
            7,
        );
    }
}
