//! The cycle-driven simulator core.
//!
//! Mirrors Peersim's model: a population of protocol instances, advanced one
//! cycle at a time; in each cycle every live node (visited in randomized
//! order) initiates one exchange with a sampled peer. Exchanges are
//! synchronous shared-memory interactions, exactly like Peersim's
//! `nextCycle` calling methods on the peer object.

use crate::failure::FailureModel;
use crate::overlay::{Overlay, OverlayState};
use crate::traffic::TrafficStats;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Index of a node within a [`Network`].
pub type NodeId = usize;

/// Context handed to protocol exchanges: RNG, cycle number, and traffic
/// accounting.
pub struct ExchangeCtx<'a> {
    /// Current cycle number (0-based).
    pub cycle: u64,
    /// Initiating node.
    pub initiator: NodeId,
    /// Receiving node.
    pub target: NodeId,
    /// Deterministic RNG shared by the simulation.
    pub rng: &'a mut StdRng,
    pub(crate) traffic: &'a mut TrafficStats,
}

impl ExchangeCtx<'_> {
    /// Records one delivered message of `bytes` payload.
    pub fn record_message(&mut self, bytes: usize) {
        self.traffic.record_message(bytes);
    }
}

/// A gossip protocol advanced by the simulator.
pub trait CycleProtocol {
    /// One push exchange: the initiator (`self`) interacts with `peer`.
    ///
    /// Both sides may mutate their state; implementations must call
    /// [`ExchangeCtx::record_message`] for each message the real protocol
    /// would put on the wire.
    fn exchange(&mut self, peer: &mut Self, ctx: &mut ExchangeCtx<'_>);
}

/// A simulated population of `P` instances.
pub struct Network<P: CycleProtocol> {
    nodes: Vec<P>,
    alive: Vec<bool>,
    overlay: OverlayState,
    failure: FailureModel,
    traffic: TrafficStats,
    rng: StdRng,
    cycle: u64,
}

impl<P: CycleProtocol> Network<P> {
    /// Builds a network over the given protocol instances.
    ///
    /// Panics if fewer than two nodes are supplied or the failure model is
    /// invalid.
    pub fn new(nodes: Vec<P>, overlay: Overlay, failure: FailureModel, seed: u64) -> Self {
        assert!(nodes.len() >= 2, "need at least two nodes");
        failure.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let overlay = OverlayState::new(overlay, nodes.len(), &mut rng);
        let alive = vec![true; nodes.len()];
        Network {
            nodes,
            alive,
            overlay,
            failure,
            traffic: TrafficStats::new(),
            rng,
            cycle: 0,
        }
    }

    /// Number of nodes (live or crashed).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the network has no nodes (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable view of all protocol instances.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable view of all protocol instances (setup / inspection between
    /// phases).
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// Liveness of node `i`.
    pub fn is_alive(&self, i: NodeId) -> bool {
        self.alive[i]
    }

    /// Indices of currently live nodes.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).filter(|&i| self.alive[i]).collect()
    }

    /// Number of currently live nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Cumulative traffic counters.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Completed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The deterministic simulation RNG (for protocol setup draws that must
    /// share the simulation's stream).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Forces the liveness of a node (experiments scripting targeted
    /// failures).
    pub fn set_alive(&mut self, i: NodeId, alive: bool) {
        self.alive[i] = alive;
    }

    /// Runs one cycle: churn step, then one initiated exchange per live node
    /// in randomized order.
    pub fn run_cycle(&mut self) {
        // Churn.
        if self.failure.crash_prob > 0.0 || self.failure.recovery_prob > 0.0 {
            for i in 0..self.nodes.len() {
                if self.alive[i] {
                    if self.rng.gen::<f64>() < self.failure.crash_prob {
                        self.alive[i] = false;
                    }
                } else if self.rng.gen::<f64>() < self.failure.recovery_prob {
                    self.alive[i] = true;
                }
            }
        }

        // Randomized visit order, Peersim-style.
        let mut order: Vec<NodeId> = (0..self.nodes.len()).collect();
        order.shuffle(&mut self.rng);

        for me in order {
            if !self.alive[me] {
                self.traffic.record_initiator_down();
                continue;
            }
            let target = self.overlay.sample(me, &mut self.rng);
            if !self.alive[target] || self.rng.gen::<f64>() < self.failure.drop_prob {
                self.traffic.record_drop();
                continue;
            }
            let (initiator, peer) = pair_mut(&mut self.nodes, me, target);
            let mut ctx = ExchangeCtx {
                cycle: self.cycle,
                initiator: me,
                target,
                rng: &mut self.rng,
                traffic: &mut self.traffic,
            };
            initiator.exchange(peer, &mut ctx);
        }
        self.cycle += 1;
    }

    /// Runs `n` cycles.
    pub fn run_cycles(&mut self, n: usize) {
        for _ in 0..n {
            self.run_cycle();
        }
    }

    /// Consumes the network, returning the protocol instances and traffic.
    pub fn into_parts(self) -> (Vec<P>, TrafficStats) {
        (self.nodes, self.traffic)
    }
}

/// Mutable references to two distinct elements.
fn pair_mut<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j, "pair_mut requires distinct indices");
    if i < j {
        let (lo, hi) = v.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: counts exchanges on both sides and ships 8 bytes.
    struct Counter {
        initiated: u64,
        received: u64,
    }

    impl CycleProtocol for Counter {
        fn exchange(&mut self, peer: &mut Self, ctx: &mut ExchangeCtx<'_>) {
            self.initiated += 1;
            peer.received += 1;
            ctx.record_message(8);
        }
    }

    fn counters(n: usize) -> Vec<Counter> {
        (0..n)
            .map(|_| Counter {
                initiated: 0,
                received: 0,
            })
            .collect()
    }

    #[test]
    fn every_live_node_initiates_once_per_cycle() {
        let mut net = Network::new(counters(10), Overlay::Full, FailureModel::none(), 1);
        net.run_cycles(5);
        for node in net.nodes() {
            assert_eq!(node.initiated, 5);
        }
        assert_eq!(net.traffic().messages, 50);
        assert_eq!(net.traffic().bytes, 400);
    }

    #[test]
    fn receives_are_conserved() {
        let mut net = Network::new(counters(20), Overlay::Full, FailureModel::none(), 2);
        net.run_cycles(10);
        let total_recv: u64 = net.nodes().iter().map(|n| n.received).sum();
        assert_eq!(total_recv, 200, "every initiation lands somewhere");
    }

    #[test]
    fn drops_suppress_exchanges() {
        let mut net = Network::new(counters(10), Overlay::Full, FailureModel::lossy(1.0), 3);
        net.run_cycles(4);
        assert_eq!(net.traffic().messages, 0);
        assert_eq!(net.traffic().dropped, 40);
        for node in net.nodes() {
            assert_eq!(node.initiated, 0);
        }
    }

    #[test]
    fn churn_kills_and_revives() {
        let mut net = Network::new(
            counters(50),
            Overlay::Full,
            FailureModel::churn(0.5, 0.0),
            4,
        );
        net.run_cycles(6);
        assert!(net.alive_count() < 10, "heavy churn should kill most nodes");
        // Full recovery now.
        let mut net2 = Network::new(
            counters(50),
            Overlay::Full,
            FailureModel::churn(0.0, 1.0),
            5,
        );
        net2.set_alive(0, false);
        net2.run_cycle();
        assert!(net2.is_alive(0));
    }

    #[test]
    fn dead_targets_count_as_drops() {
        let mut net = Network::new(counters(2), Overlay::Full, FailureModel::none(), 6);
        net.set_alive(1, false);
        net.run_cycle();
        // Node 0 initiates toward the only peer (dead) → drop; node 1 is
        // down → initiator_down.
        assert_eq!(net.traffic().dropped, 1);
        assert_eq!(net.traffic().initiator_down, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut net = Network::new(counters(15), Overlay::Full, FailureModel::lossy(0.2), seed);
            net.run_cycles(8);
            (
                net.traffic().clone(),
                net.nodes().iter().map(|n| n.received).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn pair_mut_both_orders() {
        let mut v = vec![1, 2, 3];
        {
            let (a, b) = pair_mut(&mut v, 0, 2);
            std::mem::swap(a, b);
        }
        assert_eq!(v, vec![3, 2, 1]);
        {
            let (a, b) = pair_mut(&mut v, 2, 0);
            std::mem::swap(a, b);
        }
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "distinct indices")]
    fn pair_mut_same_index_panics() {
        pair_mut(&mut [1, 2], 1, 1);
    }
}
