//! Failure injection: crash-recovery churn and message loss.
//!
//! Chiaroscuro targets "possibly faulty computing nodes"; experiments probe
//! how aggregation quality degrades under churn and lossy links.

use serde::{Deserialize, Serialize};

/// Per-cycle failure probabilities.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Probability that a live node crashes at the start of a cycle.
    pub crash_prob: f64,
    /// Probability that a crashed node recovers at the start of a cycle.
    /// Recovered nodes rejoin with their pre-crash state (crash-recovery
    /// model; Chiaroscuro's late-participant sync covers the catch-up).
    pub recovery_prob: f64,
    /// Probability that any individual message is lost in transit.
    pub drop_prob: f64,
}

impl FailureModel {
    /// No failures at all.
    pub fn none() -> Self {
        FailureModel {
            crash_prob: 0.0,
            recovery_prob: 0.0,
            drop_prob: 0.0,
        }
    }

    /// Message loss only.
    pub fn lossy(drop_prob: f64) -> Self {
        FailureModel {
            crash_prob: 0.0,
            recovery_prob: 0.0,
            drop_prob,
        }
    }

    /// Churn only (crash + recovery).
    pub fn churn(crash_prob: f64, recovery_prob: f64) -> Self {
        FailureModel {
            crash_prob,
            recovery_prob,
            drop_prob: 0.0,
        }
    }

    /// Validates all probabilities are in `[0, 1]`.
    pub fn validate(&self) {
        for (name, p) in [
            ("crash_prob", self.crash_prob),
            ("recovery_prob", self.recovery_prob),
            ("drop_prob", self.drop_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} out of [0,1]: {p}");
        }
    }
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(FailureModel::none().drop_prob, 0.0);
        assert_eq!(FailureModel::lossy(0.1).drop_prob, 0.1);
        let c = FailureModel::churn(0.01, 0.5);
        assert_eq!(c.crash_prob, 0.01);
        assert_eq!(c.recovery_prob, 0.5);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_probability_panics() {
        FailureModel::lossy(1.5).validate();
    }
}
