//! # cs-gossip — cycle-driven gossip simulator and aggregation protocols
//!
//! The distribution substrate of the Chiaroscuro reproduction. The paper runs
//! its engine inside Peersim's cycle-driven model ("Chiaroscuro … implements
//! Peersim's `nextCycle` method by the core of its execution sequence"); this
//! crate is that simulator, built from scratch:
//!
//! * [`network::Network`]: a population of protocol instances advanced in
//!   randomized order one cycle at a time, with uniform peer sampling
//!   ([`overlay::Overlay`]), crash/recovery and message-drop injection
//!   ([`failure::FailureModel`]), and message/byte accounting
//!   ([`traffic::TrafficStats`]);
//! * [`pushsum`]: Kempe-Dobra-Gehrke push-sum over plaintext vectors — the
//!   gossip aggregation whose "approximation error … is guaranteed to
//!   converge to zero exponentially fast" (paper §II-A);
//! * [`homomorphic_pushsum`]: the paper's key building block, "a gossip sum
//!   algorithm working on additively-homomorphic encrypted data". Push-sum's
//!   halving cannot touch an encrypted value, so a node holds `(C, k)` with
//!   plaintext meaning `Dec(C)/2^k`: halving increments `k` (free) and
//!   addition aligns denominators with homomorphic power-of-two scalings
//!   (DESIGN.md §3.1);
//! * [`coalescence`]: an exactly-once merge-and-forward aggregation kept as
//!   an ablation baseline;
//! * [`epidemic`]: push-pull dissemination of mergeable state (decrypted
//!   results, iteration synchronization for late participants);
//! * [`async_network`]: the event-driven counterpart of the cycle engine —
//!   Poisson initiations at heterogeneous per-node rates, validating the
//!   protocol under true asynchrony (no global rounds at all).

//! ## Example: averaging 32 values with push-sum
//!
//! ```
//! use cs_gossip::pushsum::{max_relative_error, PushSumNode};
//! use cs_gossip::{FailureModel, Network, Overlay};
//!
//! let nodes: Vec<PushSumNode> = (0..32)
//!     .map(|i| PushSumNode::new(vec![i as f64], 1.0))
//!     .collect();
//! let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), 7);
//! net.run_cycles(30);
//! assert!(max_relative_error(net.nodes(), &[15.5]) < 1e-4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_network;
pub mod coalescence;
pub mod epidemic;
pub mod failure;
pub mod homomorphic_pushsum;
pub mod network;
pub mod overlay;
pub mod pushsum;
pub mod traffic;

pub use failure::FailureModel;
pub use network::{CycleProtocol, ExchangeCtx, Network, NodeId};
pub use overlay::Overlay;
pub use traffic::TrafficStats;
