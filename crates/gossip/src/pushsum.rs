//! Push-sum (Kempe, Dobra & Gehrke, FOCS 2003) over plaintext vectors.
//!
//! Every node holds a value vector and a weight; each exchange halves both
//! and pushes one half to a random peer. All estimates `value/weight`
//! converge to `Σ values / Σ weights` — the mass-conservation invariant makes
//! the diffusion exact in the limit and the error decays exponentially with
//! the number of cycles. With all weights 1 the estimate is the average; with
//! a single unit weight it is the sum.
//!
//! This plaintext variant is the reference for experiment E5 (convergence
//! speed, failure sensitivity) and the computational core of the simulated
//! crypto mode.

use crate::network::{CycleProtocol, ExchangeCtx};
use serde::{Deserialize, Serialize};

/// One half of a push-sum exchange: the value/weight mass the initiator
/// sheds toward a peer. This is exactly what crosses the wire in a
/// message-passing deployment (`cs_net`), so the type is serializable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlainPush {
    /// The halved value vector being pushed.
    pub values: Vec<f64>,
    /// The halved weight being pushed.
    pub weight: f64,
}

impl PlainPush {
    /// Serialized payload size: the vector plus the weight, 8 bytes per f64.
    pub fn message_bytes(&self) -> usize {
        8 * (self.values.len() + 1)
    }
}

/// One push-sum participant.
#[derive(Clone, Debug)]
pub struct PushSumNode {
    value: Vec<f64>,
    weight: f64,
}

impl PushSumNode {
    /// Creates a node holding `value` with the given initial `weight`.
    pub fn new(value: Vec<f64>, weight: f64) -> Self {
        assert!(weight >= 0.0 && weight.is_finite(), "invalid weight");
        PushSumNode { value, weight }
    }

    /// The node's current estimate of `Σ values / Σ weights`, or `None`
    /// while its weight is numerically zero.
    pub fn estimate(&self) -> Option<Vec<f64>> {
        if self.weight <= f64::MIN_POSITIVE {
            return None;
        }
        Some(self.value.iter().map(|v| v / self.weight).collect())
    }

    /// Current mass held by this node (for conservation checks).
    pub fn mass(&self) -> (&[f64], f64) {
        (&self.value, self.weight)
    }

    /// Dimensionality of the aggregated vector.
    pub fn dim(&self) -> usize {
        self.value.len()
    }

    /// First half of one push exchange: halves the local mass and returns
    /// the shed half as a wire-ready message. The caller must deliver it to
    /// exactly one peer (or accept the mass loss, as a crashed link would).
    pub fn split_push(&mut self) -> PlainPush {
        for v in &mut self.value {
            *v *= 0.5;
        }
        self.weight *= 0.5;
        PlainPush {
            values: self.value.clone(),
            weight: self.weight,
        }
    }

    /// Second half of one push exchange: folds a received push into the
    /// local mass.
    pub fn absorb(&mut self, push: &PlainPush) {
        debug_assert_eq!(self.value.len(), push.values.len(), "dimension mismatch");
        for (v, p) in self.value.iter_mut().zip(&push.values) {
            *v += p;
        }
        self.weight += push.weight;
    }
}

impl CycleProtocol for PushSumNode {
    fn exchange(&mut self, peer: &mut Self, ctx: &mut ExchangeCtx<'_>) {
        debug_assert_eq!(self.value.len(), peer.value.len(), "dimension mismatch");
        // The shared-memory exchange is the message-passing one with a
        // perfect link: split, deliver, absorb.
        let push = self.split_push();
        peer.absorb(&push);
        ctx.record_message(push.message_bytes());
    }
}

/// Maximum relative error of all live nodes' estimates against the true
/// aggregate (diagnostic for convergence experiments).
pub fn max_relative_error(nodes: &[PushSumNode], truth: &[f64]) -> f64 {
    let scale = truth
        .iter()
        .map(|t| t.abs())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    nodes
        .iter()
        .filter_map(|n| n.estimate())
        .map(|est| {
            est.iter()
                .zip(truth)
                .map(|(e, t)| (e - t).abs() / scale)
                .fold(0.0f64, f64::max)
        })
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureModel, Network, Overlay};

    fn average_network(n: usize, seed: u64) -> (Network<PushSumNode>, Vec<f64>) {
        // Node i holds the scalar value i.
        let nodes: Vec<PushSumNode> = (0..n)
            .map(|i| PushSumNode::new(vec![i as f64], 1.0))
            .collect();
        let truth = vec![(n - 1) as f64 / 2.0];
        (
            Network::new(nodes, Overlay::Full, FailureModel::none(), seed),
            truth,
        )
    }

    #[test]
    fn converges_to_average() {
        let (mut net, truth) = average_network(64, 1);
        net.run_cycles(40);
        let err = max_relative_error(net.nodes(), &truth);
        assert!(err < 1e-6, "error {err}");
    }

    #[test]
    fn error_decays_roughly_exponentially() {
        let (mut net, truth) = average_network(128, 2);
        let mut errors = Vec::new();
        for _ in 0..30 {
            net.run_cycles(1);
            errors.push(max_relative_error(net.nodes(), &truth));
        }
        // Error after 30 cycles must be many orders below error after 5.
        assert!(
            errors[29] < errors[4] * 1e-3,
            "late {} vs early {}",
            errors[29],
            errors[4]
        );
    }

    #[test]
    fn mass_conservation_without_failures() {
        let (mut net, _) = average_network(32, 3);
        let total_before: f64 = net.nodes().iter().map(|n| n.mass().0[0]).sum();
        let weight_before: f64 = net.nodes().iter().map(|n| n.mass().1).sum();
        net.run_cycles(25);
        let total_after: f64 = net.nodes().iter().map(|n| n.mass().0[0]).sum();
        let weight_after: f64 = net.nodes().iter().map(|n| n.mass().1).sum();
        assert!((total_before - total_after).abs() < 1e-9);
        assert!((weight_before - weight_after).abs() < 1e-12);
    }

    #[test]
    fn sum_mode_with_single_unit_weight() {
        let n = 40;
        let mut nodes: Vec<PushSumNode> = (0..n)
            .map(|i| PushSumNode::new(vec![(i + 1) as f64], 0.0))
            .collect();
        nodes[0] = PushSumNode::new(vec![1.0], 1.0);
        let truth = (2..=n).sum::<usize>() as f64 + 1.0;
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), 4);
        net.run_cycles(60);
        let err = max_relative_error(net.nodes(), &[truth]);
        assert!(err < 1e-6, "error {err}");
    }

    #[test]
    fn vector_aggregation() {
        let nodes: Vec<PushSumNode> = (0..16)
            .map(|i| PushSumNode::new(vec![i as f64, 2.0 * i as f64, -1.0], 1.0))
            .collect();
        let truth = vec![7.5, 15.0, -1.0];
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), 5);
        net.run_cycles(40);
        assert!(max_relative_error(net.nodes(), &truth) < 1e-6);
    }

    #[test]
    fn message_loss_slows_but_does_not_break_convergence_direction() {
        // A dropped exchange is skipped atomically (the initiator does not
        // halve), so no mass is lost — loss only removes mixing steps and
        // convergence merely slows. Verify the error still shrinks.
        let nodes: Vec<PushSumNode> = (0..64)
            .map(|i| PushSumNode::new(vec![i as f64], 1.0))
            .collect();
        let truth = vec![31.5];
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::lossy(0.10), 6);
        net.run_cycles(10);
        let early = max_relative_error(net.nodes(), &truth);
        net.run_cycles(40);
        let late = max_relative_error(net.nodes(), &truth);
        assert!(
            late < early,
            "error should keep shrinking: early {early}, late {late}"
        );
        assert!(late < 0.05, "late error {late}");
    }

    #[test]
    fn split_then_absorb_matches_exchange_semantics() {
        // Mass conservation across the split/absorb halves, and the push
        // itself carries exactly the shed mass.
        let mut a = PushSumNode::new(vec![4.0, 8.0], 1.0);
        let mut b = PushSumNode::new(vec![2.0, 2.0], 1.0);
        let push = a.split_push();
        assert_eq!(push.values, vec![2.0, 4.0]);
        assert_eq!(push.weight, 0.5);
        assert_eq!(push.message_bytes(), 24);
        b.absorb(&push);
        assert_eq!(a.mass().0, &[2.0, 4.0]);
        assert_eq!(a.mass().1, 0.5);
        assert_eq!(b.mass().0, &[4.0, 6.0]);
        assert_eq!(b.mass().1, 1.5);
    }

    #[test]
    fn partial_view_converges_too() {
        let nodes: Vec<PushSumNode> = (0..64)
            .map(|i| PushSumNode::new(vec![i as f64], 1.0))
            .collect();
        let truth = vec![31.5];
        let mut net = Network::new(
            nodes,
            Overlay::PartialView { view_size: 5 },
            FailureModel::none(),
            7,
        );
        net.run_cycles(60);
        assert!(max_relative_error(net.nodes(), &truth) < 1e-4);
    }
}
