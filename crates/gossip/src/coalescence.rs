//! Coalescence aggregation: exactly-once merge-and-forward.
//!
//! An alternative encrypted-sum gossip kept as an ablation baseline for the
//! homomorphic push-sum (the demo paper does not pin the aggregation down;
//! DESIGN.md §3.1 justifies our primary choice). Every node starts holding a
//! *bucket* — its encrypted contribution with contributor count 1. On each
//! exchange a bucket holder deposits its entire bucket at the peer, which
//! merges (homomorphic addition; counts add). Buckets never split, so every
//! contribution is counted exactly once; the number of buckets shrinks as
//! they collide, concentrating partial sums at few nodes.
//!
//! Compared to push-sum: exact partial sums (no approximation *within* a
//! bucket) but slow tail — the last few buckets take many cycles to meet,
//! which is exactly what experiment E5's ablation shows.

use crate::network::{CycleProtocol, ExchangeCtx};
use cs_crypto::{Ciphertext, PrivateKey, PublicKey};
use std::sync::Arc;

/// An aggregated partial sum: encrypted slot-wise total plus contributor
/// count.
#[derive(Clone, Debug)]
pub struct Bucket {
    /// Slot-wise encrypted sums.
    pub cipher: Vec<Ciphertext>,
    /// Number of contributions merged into this bucket.
    pub contributors: u64,
}

/// One participant in the coalescence aggregation.
#[derive(Clone)]
pub struct CoalescenceNode {
    pk: Arc<PublicKey>,
    bucket: Option<Bucket>,
}

impl CoalescenceNode {
    /// Creates a node holding its own single-contribution bucket.
    pub fn new(pk: Arc<PublicKey>, cipher: Vec<Ciphertext>) -> Self {
        CoalescenceNode {
            pk,
            bucket: Some(Bucket {
                cipher,
                contributors: 1,
            }),
        }
    }

    /// The bucket currently held, if any.
    pub fn bucket(&self) -> Option<&Bucket> {
        self.bucket.as_ref()
    }

    /// `true` iff this node still holds a bucket.
    pub fn holds_bucket(&self) -> bool {
        self.bucket.is_some()
    }

    /// Decrypts the held partial sum (diagnostics).
    pub fn decrypt_partial(&self, sk: &PrivateKey) -> Option<(Vec<cs_bigint::BigUint>, u64)> {
        self.bucket.as_ref().map(|b| {
            (
                b.cipher.iter().map(|c| sk.decrypt(c)).collect(),
                b.contributors,
            )
        })
    }
}

impl CycleProtocol for CoalescenceNode {
    fn exchange(&mut self, peer: &mut Self, ctx: &mut ExchangeCtx<'_>) {
        let Some(incoming) = self.bucket.take() else {
            return; // nothing to deposit; a real node would skip the send
        };
        ctx.record_message(incoming.cipher.len() * self.pk.ciphertext_bytes() + 8);
        match &mut peer.bucket {
            Some(existing) => {
                debug_assert_eq!(existing.cipher.len(), incoming.cipher.len());
                for (e, i) in existing.cipher.iter_mut().zip(&incoming.cipher) {
                    *e = self.pk.add(e, i);
                }
                existing.contributors += incoming.contributors;
            }
            None => peer.bucket = Some(incoming),
        }
    }
}

/// Number of buckets still in the network (aggregation progress metric).
pub fn bucket_count(nodes: &[CoalescenceNode]) -> usize {
    nodes.iter().filter(|n| n.holds_bucket()).count()
}

/// Total contributors across all buckets (conservation invariant: always
/// equals the initial population).
pub fn total_contributors(nodes: &[CoalescenceNode]) -> u64 {
    nodes
        .iter()
        .filter_map(|n| n.bucket())
        .map(|b| b.contributors)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureModel, Network, Overlay};
    use cs_bigint::BigUint;
    use cs_crypto::{KeyGenOptions, KeyPair};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (KeyPair, Vec<CoalescenceNode>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&KeyGenOptions::insecure_test_size(), &mut rng);
        let pk = Arc::new(kp.public().clone());
        let nodes = (0..n)
            .map(|i| {
                let c = pk.encrypt(&BigUint::from(i as u64 + 1), &mut rng);
                CoalescenceNode::new(pk.clone(), vec![c])
            })
            .collect();
        (kp, nodes)
    }

    #[test]
    fn buckets_shrink_and_conserve_contributors() {
        let n = 32;
        let (_kp, nodes) = setup(n, 1);
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), 2);
        assert_eq!(bucket_count(net.nodes()), n);
        net.run_cycles(10);
        let remaining = bucket_count(net.nodes());
        assert!(remaining < n / 2, "buckets should coalesce: {remaining}");
        assert_eq!(total_contributors(net.nodes()), n as u64);
    }

    #[test]
    fn partial_sums_are_exact() {
        // The sum over all buckets must equal the exact total at any time.
        let n = 16;
        let (kp, nodes) = setup(n, 3);
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), 4);
        net.run_cycles(6);
        let total: u64 = net
            .nodes()
            .iter()
            .filter_map(|node| node.decrypt_partial(kp.private()))
            .map(|(vals, _)| vals[0].to_u64().unwrap())
            .sum();
        let expected: u64 = (1..=n as u64).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn single_bucket_holds_complete_sum() {
        let n = 12;
        let (kp, nodes) = setup(n, 5);
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), 6);
        // Run long enough that coalescence completes (slow tail!).
        for _ in 0..300 {
            net.run_cycle();
            if bucket_count(net.nodes()) == 1 {
                break;
            }
        }
        if bucket_count(net.nodes()) == 1 {
            let (vals, contributors) = net
                .nodes()
                .iter()
                .find(|n| n.holds_bucket())
                .unwrap()
                .decrypt_partial(kp.private())
                .unwrap();
            assert_eq!(contributors, n as u64);
            assert_eq!(vals[0].to_u64().unwrap(), (1..=n as u64).sum::<u64>());
        } else {
            // The tail really is slow sometimes; the invariant still holds.
            assert_eq!(total_contributors(net.nodes()), n as u64);
        }
    }

    #[test]
    fn empty_handed_nodes_send_nothing() {
        let (_kp, nodes) = setup(4, 7);
        let mut net = Network::new(nodes, Overlay::Full, FailureModel::none(), 8);
        net.run_cycles(50);
        // After coalescence only bucket holders transmit (a lone bucket keeps
        // hopping: ~1 message/cycle), so traffic must sit far below the
        // 4 × 50 = 200 initiations yet above the 50 hop messages.
        let msgs = net.traffic().messages;
        assert!((50..140).contains(&msgs), "messages {msgs}");
    }
}
