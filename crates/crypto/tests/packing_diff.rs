//! Differential test suite for the packed crypto fast path.
//!
//! The packed pipeline (pack → encrypt → homomorphic aggregation →
//! threshold-decrypt → unpack) must agree **exactly**, on the fixed-point
//! integer grid, with the per-bucket unpacked pipeline running the same
//! aggregation — for random bucket counts, populations, denominator
//! schedules, and signed values. Both pipelines compute the same integer
//! `Σ_i c_i · (x_i + y_i)` per bucket (`c_i = 2^(K − k_i)` the push-sum
//! alignment coefficients, `y_i` the noise block), so the comparison is
//! `assert_eq!` on `i128`, not an epsilon.
//!
//! Lane-carry saturation is a *typed* failure: boundary tests pin down that
//! packing a too-large value returns [`CryptoError::LaneOverflow`] and that
//! an aggregate whose carry multiplier exceeds the planned headroom returns
//! [`CryptoError::LaneHeadroomExceeded`] — never silently wrapped lanes.

use cs_bigint::BigUint;
use cs_crypto::{
    CryptoError, FastEncryptor, FixedPointCodec, KeyGenOptions, PackedCodec, ThresholdKeyPair,
    ThresholdParams,
};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// One threshold key pair for the whole suite (keygen dominates wall-clock).
fn tkp() -> &'static ThresholdKeyPair {
    static KEY: OnceLock<ThresholdKeyPair> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC0FF_EE00);
        ThresholdKeyPair::generate(
            &KeyGenOptions::insecure_test_size(),
            ThresholdParams {
                threshold: 2,
                parties: 3,
            },
            &mut rng,
        )
        .expect("valid threshold params")
    })
}

fn fast_enc() -> Arc<FastEncryptor> {
    static ENC: OnceLock<Arc<FastEncryptor>> = OnceLock::new();
    ENC.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xFA57);
        Arc::new(FastEncryptor::new(
            Arc::new(tkp().public().clone()),
            &mut rng,
        ))
    })
    .clone()
}

/// Threshold-decrypts one ciphertext with shares 0 and 2.
fn threshold_decrypt(c: &cs_crypto::Ciphertext) -> BigUint {
    let t = tkp();
    let partials = vec![
        t.shares()[0].partial_decrypt(c),
        t.shares()[2].partial_decrypt(c),
    ];
    t.combine(&partials).expect("enough shares")
}

/// The aggregation schedule both pipelines replay: per participant, a
/// coefficient `2^(max_k − k_i)` (push-sum denominator alignment) applied
/// homomorphically before summation.
struct Schedule {
    /// Per-participant denominator exponents `k_i ≤ max_k`.
    ks: Vec<u32>,
    max_k: u32,
}

impl Schedule {
    fn new(ks: Vec<u32>) -> Self {
        let max_k = ks.iter().copied().max().unwrap_or(0);
        Schedule { ks, max_k }
    }

    /// The cleartext push-sum weight `Σ 2^−k_i` of the aggregate.
    fn weight(&self) -> f64 {
        self.ks.iter().map(|&k| (-(k as f64)).exp2()).sum()
    }
}

/// Runs the packed pipeline: pack data+noise per participant, encrypt with
/// the fixed-base encryptor, align + sum homomorphically, fold noise onto
/// data (step 2c), threshold-decrypt, unpack. Returns per-bucket integers.
fn packed_pipeline(
    codec: &PackedCodec,
    data: &[Vec<f64>],
    noise: &[Vec<f64>],
    sched: &Schedule,
    rng: &mut StdRng,
) -> Result<Vec<i128>, CryptoError> {
    let pk = tkp().public();
    let enc = fast_enc();
    let buckets = data[0].len();
    let cts = codec.ciphertexts_for(buckets);
    let mut acc_data = vec![pk.trivial_zero(); cts];
    let mut acc_noise = vec![pk.trivial_zero(); cts];
    for (i, (d, n)) in data.iter().zip(noise).enumerate() {
        let shift = sched.max_k - sched.ks[i];
        for (acc, values) in [(&mut acc_data, d), (&mut acc_noise, n)] {
            for (j, pt) in codec.pack(values)?.iter().enumerate() {
                let mut c = enc.encrypt(pt, rng);
                c = pk.scalar_mul_pow2(&c, shift);
                acc[j] = pk.add(&acc[j], &c);
            }
        }
    }
    let raws: Vec<BigUint> = acc_data
        .iter()
        .zip(&acc_noise)
        .map(|(d, n)| threshold_decrypt(&pk.add(d, n)))
        .collect();
    codec.unpack_integers(&raws, buckets, sched.max_k, sched.weight(), 2)
}

/// Runs the reference unpacked pipeline bucket by bucket with the plain
/// encryptor and the signed fixed-point residue codec.
fn unpacked_pipeline(
    fp: &FixedPointCodec,
    data: &[Vec<f64>],
    noise: &[Vec<f64>],
    sched: &Schedule,
    rng: &mut StdRng,
) -> Vec<i128> {
    let pk = tkp().public();
    let n_s = pk.n_s();
    let buckets = data[0].len();
    let mut out = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let mut acc = pk.trivial_zero();
        for (i, (d, n)) in data.iter().zip(noise).enumerate() {
            let shift = sched.max_k - sched.ks[i];
            for v in [d[b], n[b]] {
                let m = fp.encode(v, n_s).expect("value fits the residue space");
                let mut c = pk.encrypt(&m, rng);
                c = pk.scalar_mul_pow2(&c, shift);
                acc = pk.add(&acc, &c);
            }
        }
        let raw = threshold_decrypt(&acc);
        out.push(
            fp.decode_integer(&raw, n_s)
                .expect("aggregate fits the integer grid"),
        );
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline differential property: packed ≡ unpacked, exactly, on
    /// the fixed-point grid — random bucket counts, populations,
    /// denominator schedules, and signed (incl. negative) values.
    #[test]
    fn packed_equals_unpacked_pipeline(
        buckets in 1usize..10,
        population in 2usize..5,
        ks in vec(0u32..4, 2..5),
        seed in any::<u64>(),
        magnitudes in vec(-40.0f64..40.0, 1..10),
    ) {
        let population = population.min(ks.len());
        let sched = Schedule::new(ks[..population].to_vec());
        let fp = FixedPointCodec::new(8);
        let codec = PackedCodec::plan(fp, 64.0, population, 8, tkp().public().n_s()).unwrap();

        // Signed data and noise vectors, recycled from the sampled pool.
        let value = |i: usize, b: usize, flip: f64| -> f64 {
            let v = magnitudes[(i * 7 + b) % magnitudes.len()];
            if (i + b).is_multiple_of(2) { v * flip } else { -v * flip }
        };
        let data: Vec<Vec<f64>> = (0..population)
            .map(|i| (0..buckets).map(|b| value(i, b, 1.0)).collect())
            .collect();
        let noise: Vec<Vec<f64>> = (0..population)
            .map(|i| (0..buckets).map(|b| value(i, b, 0.25)).collect())
            .collect();

        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0x5EED);
        let packed = packed_pipeline(&codec, &data, &noise, &sched, &mut rng_a).unwrap();
        let unpacked = unpacked_pipeline(&fp, &data, &noise, &sched, &mut rng_b);
        prop_assert_eq!(packed, unpacked);
    }

    /// Re-randomization (the forwarding hot path) must be invisible to the
    /// differential: fixed-base re-randomized ciphertexts decrypt and
    /// unpack to the same integers.
    #[test]
    fn rerandomization_is_transparent_to_unpacking(
        buckets in 1usize..8,
        seed in any::<u64>(),
    ) {
        let fp = FixedPointCodec::new(8);
        let codec = PackedCodec::plan(fp, 64.0, 4, 8, tkp().public().n_s()).unwrap();
        let enc = fast_enc();
        let values: Vec<f64> = (0..buckets).map(|b| b as f64 * 1.5 - 3.0).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let cts: Vec<_> = codec
            .pack(&values)
            .unwrap()
            .iter()
            .map(|m| enc.encrypt(m, &mut rng))
            .collect();
        let rerand: Vec<_> = cts.iter().map(|c| enc.rerandomize(c, &mut rng)).collect();
        for (a, b) in cts.iter().zip(&rerand) {
            prop_assert!(a != b, "re-randomization must change the ciphertext");
        }
        let raws: Vec<BigUint> = rerand.iter().map(threshold_decrypt).collect();
        let ints = codec.unpack_integers(&raws, buckets, 0, 1.0, 1).unwrap();
        let expect: Vec<i128> = values
            .iter()
            .map(|v| (v * fp.scale()).round() as i128)
            .collect();
        prop_assert_eq!(ints, expect);
    }
}

// ---------------------------------------------------------------------------
// Boundary cases at lane-carry saturation: typed errors, no silent wrap.
// ---------------------------------------------------------------------------

/// A deliberately tight codec: tiny headroom, tiny value range.
fn tight_codec() -> PackedCodec {
    PackedCodec::from_parts(FixedPointCodec::new(0), 6, 3, 4).unwrap()
}

#[test]
fn pack_at_exact_lane_capacity_roundtrips() {
    let c = tight_codec();
    let cap = c.value_capacity() as f64; // bias − 1 on an integer grid
    let pts = c.pack(&[cap, -(c.bias() as f64)]).unwrap();
    let ints = c.unpack_integers(&pts, 2, 0, 1.0, 1).unwrap();
    assert_eq!(ints, vec![cap as i128, -c.bias()]);
}

#[test]
fn pack_one_past_capacity_is_lane_overflow() {
    let c = tight_codec();
    let too_big = c.value_capacity() as f64 + 1.0;
    assert_eq!(
        c.pack(&[too_big]).unwrap_err(),
        CryptoError::LaneOverflow { slot: 0 }
    );
    let too_small = -(c.bias() as f64) - 1.0;
    assert_eq!(
        c.pack(&[0.0, 0.0, too_small]).unwrap_err(),
        CryptoError::LaneOverflow { slot: 2 }
    );
}

#[test]
fn aggregate_beyond_headroom_is_typed_not_wrapped() {
    // headroom 3 bits → carry budget 2^3 = 8. A carry multiplier of 8 with
    // bias_count 1 is the exact boundary (allowed); 16 exceeds it.
    let c = tight_codec();
    let pts = c.pack(&[1.0]).unwrap();
    assert!(
        c.unpack_integers(&pts, 1, 3, 1.0, 1).is_ok(),
        "2^3 at budget"
    );
    assert_eq!(
        c.unpack_integers(&pts, 1, 4, 1.0, 1).unwrap_err(),
        CryptoError::LaneHeadroomExceeded
    );
    // The data+noise fold doubles the bias mass: budget halves.
    assert_eq!(
        c.unpack_integers(&pts, 1, 3, 1.0, 2).unwrap_err(),
        CryptoError::LaneHeadroomExceeded
    );
}

#[test]
fn homomorphic_saturation_is_caught_by_the_headroom_check() {
    // Sum 16 weight-1 encryptions of the same packed vector through the
    // real homomorphic path — more mass than the 3-bit headroom admits.
    // The unpack must refuse with the typed error instead of returning
    // neighbour-corrupted lanes.
    let c = tight_codec();
    let pk = tkp().public();
    let enc = fast_enc();
    let mut rng = StdRng::seed_from_u64(77);
    let pts = c.pack(&[3.0, -2.0]).unwrap();
    let mut acc = vec![pk.trivial_zero(); pts.len()];
    for _ in 0..16 {
        for (a, m) in acc.iter_mut().zip(&pts) {
            *a = pk.add(a, &enc.encrypt(m, &mut rng));
        }
    }
    let raws: Vec<BigUint> = acc.iter().map(threshold_decrypt).collect();
    assert_eq!(
        c.unpack_integers(&raws, 2, 0, 16.0, 1).unwrap_err(),
        CryptoError::LaneHeadroomExceeded
    );
}

#[test]
fn weight_zero_aggregate_is_rejected() {
    let c = tight_codec();
    let pts = c.pack(&[1.0]).unwrap();
    assert!(matches!(
        c.unpack_integers(&pts, 1, 0, 0.0, 1).unwrap_err(),
        CryptoError::InvalidParameters(_)
    ));
}
