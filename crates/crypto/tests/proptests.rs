//! Property-based tests for the Damgård-Jurik implementation.
//!
//! Key generation is expensive, so a single (insecure, test-sized) key pair
//! and threshold setup are shared across all cases via `OnceLock`.

use cs_bigint::BigUint;
use cs_crypto::{KeyGenOptions, KeyPair, ThresholdKeyPair, ThresholdParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn keypair() -> &'static KeyPair {
    static KP: OnceLock<KeyPair> = OnceLock::new();
    KP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        KeyPair::generate(&KeyGenOptions::insecure_test_size(), &mut rng)
    })
}

fn threshold() -> &'static ThresholdKeyPair {
    static TKP: OnceLock<ThresholdKeyPair> = OnceLock::new();
    TKP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        ThresholdKeyPair::deal_from_keypair(
            keypair().clone(),
            ThresholdParams {
                threshold: 3,
                parties: 5,
            },
            &mut rng,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn roundtrip_any_u128(m in any::<u128>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let mb = BigUint::from(m);
        let c = kp.public().encrypt(&mb, &mut rng);
        prop_assert_eq!(kp.private().decrypt(&c), mb);
    }

    #[test]
    fn additive_homomorphism(a in any::<u64>(), b in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = kp.public().encrypt(&BigUint::from(a), &mut rng);
        let cb = kp.public().encrypt(&BigUint::from(b), &mut rng);
        let sum = kp.public().add(&ca, &cb);
        prop_assert_eq!(
            kp.private().decrypt(&sum),
            BigUint::from(a as u128 + b as u128)
        );
    }

    #[test]
    fn scalar_homomorphism(m in any::<u32>(), k in any::<u32>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kp.public().encrypt(&BigUint::from(m), &mut rng);
        let ck = kp.public().scalar_mul(&c, &BigUint::from(k));
        prop_assert_eq!(
            kp.private().decrypt(&ck),
            BigUint::from(m as u128 * k as u128)
        );
    }

    #[test]
    fn sub_then_add_is_identity(a in any::<u64>(), b in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = kp.public().encrypt(&BigUint::from(a), &mut rng);
        let cb = kp.public().encrypt(&BigUint::from(b), &mut rng);
        let back = kp.public().add(&kp.public().sub(&ca, &cb), &cb);
        prop_assert_eq!(kp.private().decrypt(&back), BigUint::from(a));
    }

    #[test]
    fn rerandomization_invariant(m in any::<u64>(), seed in any::<u64>(), hops in 1usize..6) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = kp.public().encrypt(&BigUint::from(m), &mut rng);
        for _ in 0..hops {
            c = kp.public().rerandomize(&c, &mut rng);
        }
        prop_assert_eq!(kp.private().decrypt(&c), BigUint::from(m));
    }

    #[test]
    fn threshold_any_three_of_five(m in any::<u64>(), seed in any::<u64>(),
                                   picks in proptest::sample::subsequence(vec![0usize,1,2,3,4], 3)) {
        let tkp = threshold();
        let mut rng = StdRng::seed_from_u64(seed);
        let mb = BigUint::from(m);
        let c = tkp.public().encrypt(&mb, &mut rng);
        let partials: Vec<_> = picks
            .iter()
            .map(|&i| tkp.shares()[i].partial_decrypt(&c))
            .collect();
        prop_assert_eq!(tkp.combine(&partials).unwrap(), mb);
    }

    #[test]
    fn pow2_rescaling_chain(m in 1u32..1000, j1 in 0u32..12, j2 in 0u32..12, seed in any::<u64>()) {
        // The homomorphic push-sum applies several pow2 rescalings; their
        // composition must match a single rescale by the sum.
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kp.public().encrypt(&BigUint::from(m), &mut rng);
        let chained = kp.public().scalar_mul_pow2(&kp.public().scalar_mul_pow2(&c, j1), j2);
        let direct = kp.public().scalar_mul_pow2(&c, j1 + j2);
        prop_assert_eq!(
            kp.private().decrypt(&chained),
            kp.private().decrypt(&direct)
        );
    }

    #[test]
    fn ciphertext_serde_roundtrip(m in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kp.public().encrypt(&BigUint::from(m), &mut rng);
        let json = serde_json::to_string(&c).unwrap();
        let back: cs_crypto::Ciphertext = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn public_key_serde_roundtrip_rebuilds_caches(_x in 0u8..4) {
        let pk = keypair().public();
        let json = serde_json::to_string(pk).unwrap();
        let back: cs_crypto::PublicKey = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, pk);
        prop_assert_eq!(back.n_s1(), pk.n_s1());
        prop_assert_eq!(back.ciphertext_bytes(), pk.ciphertext_bytes());
    }

    #[test]
    fn key_share_serde_roundtrip_preserves_decryption(m in any::<u64>(), seed in any::<u64>(),
                                                      which in 0usize..5) {
        let tkp = threshold();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = tkp.public().encrypt(&BigUint::from(m), &mut rng);
        let share = &tkp.shares()[which];
        let json = serde_json::to_string(share).unwrap();
        let back: cs_crypto::KeyShare = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, share);
        // A rehydrated share must produce byte-identical partial decryptions.
        prop_assert_eq!(back.partial_decrypt(&c), share.partial_decrypt(&c));
    }

    #[test]
    fn partial_decryption_serde_roundtrip(m in any::<u64>(), seed in any::<u64>(),
                                          which in 0usize..5) {
        let tkp = threshold();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = tkp.public().encrypt(&BigUint::from(m), &mut rng);
        let p = tkp.shares()[which].partial_decrypt(&c);
        let json = serde_json::to_string(&p).unwrap();
        let back: cs_crypto::PartialDecryption = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &p);
        prop_assert_eq!(back.index(), p.index());
        prop_assert_eq!(back.value(), p.value());
    }

    #[test]
    fn corrupt_key_share_json_rejected(garbage in any::<u64>()) {
        // Structurally broken documents must error, never panic: a bare
        // string where the (index, value, exponent, pk) tuple belongs, and a
        // zero share index.
        prop_assert!(serde_json::from_str::<cs_crypto::KeyShare>(&format!("\"g{garbage}\"")).is_err());
        let zero_index = r#"[0, [1], [2], [[1], 1]]"#;
        prop_assert!(serde_json::from_str::<cs_crypto::KeyShare>(zero_index).is_err());
    }

    #[test]
    fn fixed_point_roundtrip_through_encryption(v in -1e6f64..1e6, seed in any::<u64>()) {
        let kp = keypair();
        let codec = cs_crypto::FixedPointCodec::new(20);
        let mut rng = StdRng::seed_from_u64(seed);
        let n_s = kp.public().n_s();
        let enc = codec.encode(v, n_s).unwrap();
        let c = kp.public().encrypt(&enc, &mut rng);
        let dec = codec.decode(&kp.private().decrypt(&c), n_s, 0);
        prop_assert!((dec - v).abs() < 2.0 / codec.scale());
    }
}
