//! Differential test suite for the decryption fast paths.
//!
//! PR "crypto hot path round two" rebuilt the entire decryption side on
//! fast paths — CRT-split exponentiation for private decryption and
//! partial-decryption shares, Straus multi-exponentiation behind cached
//! per-committee [`CombinePlan`]s for share combination — and every one of
//! them keeps its slow predecessor in-tree as a differential oracle. This
//! suite pins the equivalences down under randomized inputs:
//!
//! * CRT decryption ≡ generic decryption, bit for bit;
//! * CRT partial decryption ≡ generic partial decryption, bit for bit;
//! * plan-based (multi-exp, batched-inverse) combination ≡ the naive
//!   per-share `pow_mod` combination, for every committee subset —
//!   including the subsets whose Lagrange coefficients go negative;
//! * the fast and naive paths reject malformed subsets (duplicates, out of
//!   range, too few shares) with the *same* typed errors.
//!
//! [`CombinePlan`]: cs_crypto::threshold::CombinePlan

use cs_bigint::rng::random_below;
use cs_bigint::BigUint;
use cs_crypto::threshold::{combine_partials, combine_partials_naive, CombinePlanCache};
use cs_crypto::{KeyGenOptions, ThresholdKeyPair, ThresholdParams};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One 2-of-3 threshold key pair for the whole suite (keygen dominates).
fn tkp() -> &'static ThresholdKeyPair {
    static KEY: OnceLock<ThresholdKeyPair> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC0FF_EE00);
        ThresholdKeyPair::generate(
            &KeyGenOptions::insecure_test_size(),
            ThresholdParams {
                threshold: 2,
                parties: 3,
            },
            &mut rng,
        )
        .expect("valid threshold params")
    })
}

/// A wider committee where more Lagrange numerators change sign: 3-of-5.
fn tkp_wide() -> &'static ThresholdKeyPair {
    static KEY: OnceLock<ThresholdKeyPair> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC0FF_EE05);
        ThresholdKeyPair::generate(
            &KeyGenOptions::insecure_test_size(),
            ThresholdParams {
                threshold: 3,
                parties: 5,
            },
            &mut rng,
        )
        .expect("valid threshold params")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// CRT-split private decryption agrees with the generic single-modulus
    /// path on random plaintexts.
    #[test]
    fn crt_decrypt_equals_generic_decrypt(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp_rng = &mut StdRng::seed_from_u64(seed ^ 0xDEC0);
        let kp = cs_crypto::KeyPair::generate(&KeyGenOptions::insecure_test_size(), kp_rng);
        let m = random_below(&mut rng, kp.public().n_s());
        let c = kp.public().encrypt(&m, &mut rng);
        prop_assert!(kp.private().has_crt());
        prop_assert_eq!(kp.private().decrypt(&c), kp.private().decrypt_slow(&c));
        prop_assert_eq!(kp.private().without_crt().decrypt(&c), m);
    }

    /// CRT-split partial decryption produces bit-identical shares to the
    /// generic exponentiation, for every committee member.
    #[test]
    fn crt_partial_decrypt_equals_generic(seed in any::<u64>()) {
        let t = tkp();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_below(&mut rng, t.public().n_s());
        let c = t.public().encrypt(&m, &mut rng);
        for share in t.shares() {
            prop_assert!(share.has_crt_hint());
            let fast = share.partial_decrypt(&c);
            let slow = share.partial_decrypt_slow(&c);
            let stripped = share.without_crt().partial_decrypt(&c);
            prop_assert_eq!(&fast, &slow);
            prop_assert_eq!(&fast, &stripped);
        }
    }

    /// Plan-based combination (Straus multi-exp + batched inversion) agrees
    /// with the naive per-share path for every subset and arrival order of
    /// a 3-of-5 committee — the sign pattern of the integer Lagrange
    /// coefficients varies across these subsets, so both the numerator and
    /// the inverted-denominator accumulators are exercised.
    #[test]
    fn plan_combine_equals_naive_combine(
        seed in any::<u64>(),
        subset_seed in any::<u64>(),
    ) {
        let t = tkp_wide();
        let params = t.params();
        let delta = t.delta().clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_below(&mut rng, t.public().n_s());
        let c = t.public().encrypt(&m, &mut rng);

        // A random 3-subset in a random arrival order.
        let mut order: Vec<usize> = (0..params.parties).collect();
        let mut subset_rng = StdRng::seed_from_u64(subset_seed);
        for i in (1..order.len()).rev() {
            let j = (random_below(&mut subset_rng, &BigUint::from((i + 1) as u64)))
                .to_u64()
                .unwrap_or(0) as usize;
            order.swap(i, j);
        }
        let subset: Vec<_> = order[..params.threshold]
            .iter()
            .map(|&i| t.shares()[i].partial_decrypt(&c))
            .collect();

        let naive = combine_partials_naive(t.public(), params, &delta, &subset).unwrap();
        let fast = combine_partials(t.public(), params, &delta, &subset).unwrap();
        prop_assert_eq!(&fast, &naive);
        prop_assert_eq!(&fast, &m);

        // The cached plan and its batch form reproduce the same result.
        let cache = CombinePlanCache::new();
        let one = cache.combine(t.public(), params, &delta, &subset).unwrap();
        let batch = cache
            .combine_batch(t.public(), params, &delta, &[subset.clone(), subset])
            .unwrap();
        prop_assert_eq!(&one, &naive);
        prop_assert_eq!(&batch[0], &naive);
        prop_assert_eq!(&batch[1], &naive);
    }

    /// Batched combination over many ciphertexts (one shared Lagrange-
    /// denominator inversion, Montgomery's trick) decrypts each aggregate
    /// to the same plaintext as the one-shot path.
    #[test]
    fn combine_batch_equals_per_ciphertext_combine(
        plaintexts in vec(0u64..1u64 << 48, 1..6),
        seed in any::<u64>(),
    ) {
        let t = tkp();
        let params = t.params();
        let delta = t.delta().clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let cts: Vec<_> = plaintexts
            .iter()
            .map(|&m| t.public().encrypt(&BigUint::from(m), &mut rng))
            .collect();
        let groups: Vec<Vec<_>> = cts
            .iter()
            .map(|c| vec![
                t.shares()[2].partial_decrypt(c),
                t.shares()[0].partial_decrypt(c),
            ])
            .collect();
        let cache = CombinePlanCache::new();
        let batch = cache
            .combine_batch(t.public(), params, &delta, &groups)
            .unwrap();
        for (raw, (group, &m)) in batch.iter().zip(groups.iter().zip(&plaintexts)) {
            prop_assert_eq!(raw, &combine_partials_naive(t.public(), params, &delta, group).unwrap());
            prop_assert_eq!(raw, &BigUint::from(m));
        }
    }

    /// Malformed subsets fail identically on the fast and naive paths: a
    /// duplicated share index is rejected, not silently mis-weighted.
    #[test]
    fn index_rejection_parity_under_random_duplicates(
        dup in 0usize..3,
        seed in any::<u64>(),
    ) {
        let t = tkp();
        let params = t.params();
        let delta = t.delta().clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = t.public().encrypt(&BigUint::from(7u64), &mut rng);
        let p = t.shares()[dup].partial_decrypt(&c);
        let subset = vec![p.clone(), p];
        let naive = combine_partials_naive(t.public(), params, &delta, &subset).unwrap_err();
        let fast = combine_partials(t.public(), params, &delta, &subset).unwrap_err();
        let cached = CombinePlanCache::new()
            .combine(t.public(), params, &delta, &subset)
            .unwrap_err();
        prop_assert_eq!(format!("{naive:?}"), format!("{fast:?}"));
        prop_assert_eq!(format!("{naive:?}"), format!("{cached:?}"));
    }
}

/// Too few shares: the same typed error from all three paths.
#[test]
fn short_subsets_are_rejected_everywhere() {
    let t = tkp();
    let params = t.params();
    let delta = t.delta().clone();
    let mut rng = StdRng::seed_from_u64(3);
    let c = t.public().encrypt(&BigUint::from(9u64), &mut rng);
    let subset = vec![t.shares()[1].partial_decrypt(&c)];
    let naive = combine_partials_naive(t.public(), params, &delta, &subset).unwrap_err();
    let fast = combine_partials(t.public(), params, &delta, &subset).unwrap_err();
    let cached = CombinePlanCache::new()
        .combine(t.public(), params, &delta, &subset)
        .unwrap_err();
    assert_eq!(format!("{naive:?}"), format!("{fast:?}"));
    assert_eq!(format!("{naive:?}"), format!("{cached:?}"));
}
