//! Key material: generation, public keys with precomputed caches, private
//! keys.

use crate::CryptoError;
use cs_bigint::gcd::crt_pair;
use cs_bigint::prime::{gen_prime, gen_safe_prime};
use cs_bigint::{BigUint, MontgomeryCtx};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Parameters controlling key generation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyGenOptions {
    /// Bit length of the RSA modulus `n` (primes are `modulus_bits / 2`).
    pub modulus_bits: usize,
    /// Damgård-Jurik degree `s >= 1`; the plaintext space is `Z_{n^s}`.
    pub s: u32,
    /// Use safe primes (`p = 2p'+1`). Strengthens the threshold variant's
    /// security argument but slows generation; functionally optional (see
    /// DESIGN.md §3.2).
    pub safe_primes: bool,
}

impl KeyGenOptions {
    /// Production-leaning defaults: 2048-bit modulus, `s = 1`, safe primes.
    pub fn secure_default() -> Self {
        KeyGenOptions {
            modulus_bits: 2048,
            s: 1,
            safe_primes: true,
        }
    }

    /// Small parameters for tests: **cryptographically insecure** (256-bit
    /// modulus) but byte-for-byte the same code paths.
    pub fn insecure_test_size() -> Self {
        KeyGenOptions {
            modulus_bits: 256,
            s: 1,
            safe_primes: false,
        }
    }

    /// Test-size parameters with a custom degree `s`.
    pub fn insecure_test_size_s(s: u32) -> Self {
        KeyGenOptions {
            s,
            ..Self::insecure_test_size()
        }
    }
}

/// Damgård-Jurik public key with precomputed moduli and Montgomery context.
#[derive(Clone, Debug)]
pub struct PublicKey {
    n: BigUint,
    s: u32,
    n_s: BigUint,
    n_s1: BigUint,
    half_n_s: BigUint,
    mont: MontgomeryCtx,
}

impl PublicKey {
    /// Rebuilds a public key (and its caches) from the wire form `(n, s)`.
    pub fn from_parts(n: BigUint, s: u32) -> Self {
        assert!(s >= 1, "Damgård-Jurik degree must be >= 1");
        let mut n_s = n.clone();
        for _ in 1..s {
            n_s = &n_s * &n;
        }
        let n_s1 = &n_s * &n;
        let half_n_s = n_s.half();
        let mont = MontgomeryCtx::new(&n_s1);
        PublicKey {
            n,
            s,
            n_s,
            n_s1,
            half_n_s,
            mont,
        }
    }

    /// The RSA modulus `n`.
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// The degree `s`.
    pub fn s(&self) -> u32 {
        self.s
    }

    /// The plaintext modulus `n^s`.
    pub fn n_s(&self) -> &BigUint {
        &self.n_s
    }

    /// `n^s / 2`, the signed-encoding pivot.
    pub fn half_n_s(&self) -> &BigUint {
        &self.half_n_s
    }

    /// The ciphertext modulus `n^(s+1)`.
    pub fn n_s1(&self) -> &BigUint {
        &self.n_s1
    }

    /// Montgomery context for the ciphertext modulus (shared by every
    /// homomorphic operation).
    pub(crate) fn mont(&self) -> &MontgomeryCtx {
        &self.mont
    }

    /// Size of one serialized ciphertext in bytes.
    pub fn ciphertext_bytes(&self) -> usize {
        self.n_s1.byte_len()
    }

    /// Validates a plaintext against the message space.
    pub fn check_plaintext(&self, m: &BigUint) -> Result<(), CryptoError> {
        if *m >= self.n_s {
            Err(CryptoError::PlaintextOutOfRange)
        } else {
            Ok(())
        }
    }
}

impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.s == other.s
    }
}

impl Eq for PublicKey {}

impl Serialize for PublicKey {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (&self.n, self.s).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for PublicKey {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let (n, s): (BigUint, u32) = Deserialize::deserialize(deserializer)?;
        // Reject wire garbage before the cache build: `from_parts` (and the
        // Montgomery context underneath) require an odd modulus > 1, and the
        // degree must be >= 1.
        if s < 1 {
            return Err(D::Error::custom("Damgård-Jurik degree must be >= 1"));
        }
        if !n.is_odd() || n.is_one() || n.is_zero() {
            return Err(D::Error::custom("RSA modulus must be odd and > 1"));
        }
        Ok(PublicKey::from_parts(n, s))
    }
}

/// CRT exponentiation context for a factored Damgård-Jurik modulus.
///
/// Holding one is **equivalent to knowing the factorization of `n`** —
/// whoever has it can decrypt unilaterally. The contexts built here never
/// leave the process: key shares serialize without their CRT hint (a
/// deserialized share transparently uses the generic full-width path), so
/// shipping a share over the wire cannot leak `p`/`q`. In-process callers
/// (the dealer, [`crate::ThresholdKeyPair`], and the simulation substrates
/// that hold the dealer object anyway) get the fast path for free.
///
/// **Scope note.** This matches the repository's honest-but-curious,
/// trusted-dealer model (see `fastenc` for the analogous trade on the
/// encryption side): the dealer knows everything by construction, and the
/// per-process CRT hint grants no capability its holder did not already
/// have. A deployment with a distributed key generation ceremony must not
/// construct these.
///
/// The speedup: exponentiation mod `n^(s+1)` splits into one chain mod
/// `p^(s+1)` and one mod `q^(s+1)` — half-width moduli quarter the cost of
/// each Montgomery multiplication — and the exponents reduce mod the unit
/// group orders `p^s(p−1)` / `q^s(q−1)`, roughly halving their length.
/// Garner's formula stitches the halves back together.
#[derive(Clone, Debug)]
pub struct CrtContext {
    /// `p^(s+1)` Montgomery context.
    mont_p: MontgomeryCtx,
    /// `q^(s+1)` Montgomery context.
    mont_q: MontgomeryCtx,
    /// `|Z*_{p^(s+1)}| = p^s(p−1)`: exponents reduce mod this on the p side.
    order_p: BigUint,
    /// `|Z*_{q^(s+1)}| = q^s(q−1)`.
    order_q: BigUint,
    /// `p^(s+1)`.
    p_s1: BigUint,
    /// `q^(s+1)`.
    q_s1: BigUint,
    /// `(q^(s+1))^{-1} mod p^(s+1)` — Garner's recombination coefficient.
    q_s1_inv: BigUint,
}

impl CrtContext {
    /// Builds the per-prime-power contexts for modulus `p·q` at degree `s`.
    pub(crate) fn new(p: &BigUint, q: &BigUint, s: u32) -> Self {
        let pow_s1 = |x: &BigUint| {
            let mut acc = x.clone();
            for _ in 0..s {
                acc = &acc * x;
            }
            acc
        };
        let p_s1 = pow_s1(p);
        let q_s1 = pow_s1(q);
        let order_p = &(&p_s1 / p) * &p.sub_u64(1);
        let order_q = &(&q_s1 / q) * &q.sub_u64(1);
        let mont_p = MontgomeryCtx::new(&p_s1);
        let mont_q = MontgomeryCtx::new(&q_s1);
        let q_s1_inv = (&q_s1 % &p_s1)
            .mod_inverse(&p_s1)
            .expect("distinct primes: q^(s+1) is a unit mod p^(s+1)");
        CrtContext {
            mont_p,
            mont_q,
            order_p,
            order_q,
            p_s1,
            q_s1,
            q_s1_inv,
        }
    }

    /// Reduces an exponent to its per-prime-power residues, for callers
    /// that exponentiate with the same exponent many times (key shares).
    pub(crate) fn reduce_exp(&self, exp: &BigUint) -> (BigUint, BigUint) {
        (exp % &self.order_p, exp % &self.order_q)
    }

    /// `base^exp mod n^(s+1)` for a **unit** base (every well-formed
    /// ciphertext is one), with the exponent already reduced per side by
    /// [`Self::reduce_exp`].
    pub(crate) fn pow_mod_reduced(
        &self,
        base: &BigUint,
        exp_p: &BigUint,
        exp_q: &BigUint,
    ) -> BigUint {
        let xp = self.mont_p.pow_mod(base, exp_p);
        let xq = self.mont_q.pow_mod(base, exp_q);
        // Garner: x = x_q + q^(s+1) · ((x_p − x_q)·(q^(s+1))^{-1} mod p^(s+1)).
        let xq_mod_p = &xq % &self.p_s1;
        let diff = if xp >= xq_mod_p {
            &xp - &xq_mod_p
        } else {
            &(&self.p_s1 - &xq_mod_p) + &xp
        };
        let h = self.mont_p.mul_mod(&diff, &self.q_s1_inv);
        &xq + &(&self.q_s1 * &h)
    }
}

/// Private key: the decryption exponent `d` with `d ≡ 1 (mod n^s)` and
/// `d ≡ 0 (mod λ(n))`.
#[derive(Clone, Debug)]
pub struct PrivateKey {
    pub(crate) d: BigUint,
    pub(crate) lambda: BigUint,
    /// CRT fast path: per-prime-power contexts plus `d` reduced per side.
    /// Always present for locally generated keys; never serialized.
    crt: Option<Arc<CrtContext>>,
    pub(crate) d_p: BigUint,
    pub(crate) d_q: BigUint,
    pk: PublicKey,
}

impl PrivateKey {
    /// The associated public key.
    pub fn public(&self) -> &PublicKey {
        &self.pk
    }

    /// Carmichael's `λ(n) = lcm(p-1, q-1)`. Exposed for the threshold dealer.
    pub(crate) fn lambda(&self) -> &BigUint {
        &self.lambda
    }

    /// The decryption exponent (crate-internal; used by the threshold dealer).
    pub(crate) fn d(&self) -> &BigUint {
        &self.d
    }

    /// The CRT context, shared with key shares dealt from this key.
    pub(crate) fn crt(&self) -> Option<&Arc<CrtContext>> {
        self.crt.as_ref()
    }

    /// `c^d mod n^(s+1)` — through the CRT fast path when available.
    pub(crate) fn pow_d(&self, c: &BigUint) -> BigUint {
        match &self.crt {
            Some(crt) => crt.pow_mod_reduced(c, &self.d_p, &self.d_q),
            None => self.pk.mont().pow_mod(c, &self.d),
        }
    }

    /// Whether this key carries the CRT acceleration hint.
    pub fn has_crt(&self) -> bool {
        self.crt.is_some()
    }

    /// A copy of this key without the CRT hint — the differential oracle
    /// (decryption then takes exactly the pre-CRT full-width path).
    pub fn without_crt(&self) -> PrivateKey {
        PrivateKey {
            crt: None,
            ..self.clone()
        }
    }
}

/// A freshly generated key pair.
#[derive(Clone, Debug)]
pub struct KeyPair {
    public: PublicKey,
    private: PrivateKey,
}

impl KeyPair {
    /// Generates a key pair.
    ///
    /// Primes are `modulus_bits/2` each with the top two bits forced, so `n`
    /// has exactly `modulus_bits` bits.
    pub fn generate<R: Rng + ?Sized>(opts: &KeyGenOptions, rng: &mut R) -> KeyPair {
        assert!(opts.modulus_bits >= 16, "modulus too small");
        assert!(opts.s >= 1, "degree must be >= 1");
        let half = opts.modulus_bits / 2;
        loop {
            let (p, q) = if opts.safe_primes {
                (gen_safe_prime(half, rng), gen_safe_prime(half, rng))
            } else {
                (gen_prime(half, rng), gen_prime(half, rng))
            };
            if p == q {
                continue;
            }
            let n = &p * &q;
            if n.bit_len() != opts.modulus_bits {
                continue;
            }
            let lambda = p.sub_u64(1).lcm(&q.sub_u64(1));
            let public = PublicKey::from_parts(n, opts.s);
            // d ≡ 1 (mod n^s), d ≡ 0 (mod λ). n^s and λ are coprime for
            // balanced primes (see DESIGN.md §3.2), so CRT always succeeds.
            let d = crt_pair(&BigUint::one(), public.n_s(), &BigUint::zero(), &lambda)
                .expect("n^s and lambda are coprime for balanced primes");
            let crt = CrtContext::new(&p, &q, opts.s);
            let (d_p, d_q) = crt.reduce_exp(&d);
            let private = PrivateKey {
                d,
                lambda,
                crt: Some(Arc::new(crt)),
                d_p,
                d_q,
                pk: public.clone(),
            };
            return KeyPair { public, private };
        }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The private half.
    pub fn private(&self) -> &PrivateKey {
        &self.private
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keygen_produces_requested_modulus_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(&KeyGenOptions::insecure_test_size(), &mut rng);
        assert_eq!(kp.public().n().bit_len(), 256);
        assert_eq!(kp.public().s(), 1);
        assert_eq!(kp.public().n_s(), kp.public().n());
        assert_eq!(*kp.public().n_s1(), kp.public().n().square());
    }

    #[test]
    fn d_satisfies_crt_conditions() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = KeyPair::generate(&KeyGenOptions::insecure_test_size(), &mut rng);
        let d = &kp.private().d;
        assert!((d % kp.public().n_s()).is_one());
        assert!((d % kp.private().lambda()).is_zero());
    }

    #[test]
    fn degree_two_moduli() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = KeyPair::generate(&KeyGenOptions::insecure_test_size_s(2), &mut rng);
        let n = kp.public().n();
        assert_eq!(*kp.public().n_s(), n.square());
        assert_eq!(*kp.public().n_s1(), &n.square() * n);
    }

    #[test]
    fn public_key_serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let kp = KeyPair::generate(&KeyGenOptions::insecure_test_size(), &mut rng);
        let json = serde_json::to_string(kp.public()).unwrap();
        let back: PublicKey = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, kp.public());
        assert_eq!(back.n_s1(), kp.public().n_s1(), "caches rebuilt");
    }

    #[test]
    fn plaintext_range_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let kp = KeyPair::generate(&KeyGenOptions::insecure_test_size(), &mut rng);
        assert!(kp.public().check_plaintext(&BigUint::zero()).is_ok());
        assert!(kp
            .public()
            .check_plaintext(&kp.public().n_s().sub_u64(1))
            .is_ok());
        assert_eq!(
            kp.public().check_plaintext(kp.public().n_s()),
            Err(CryptoError::PlaintextOutOfRange)
        );
    }
}
