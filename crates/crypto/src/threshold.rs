//! Threshold Damgård-Jurik decryption.
//!
//! Chiaroscuro requires that "the decryption is performed collaboratively by
//! any subset of participants provided it is sufficiently large". This module
//! implements the Damgård-Jurik threshold construction:
//!
//! 1. a dealer generates the key pair and Shamir-shares the decryption
//!    exponent `d` over `Z_{n^s·λ(n)}` among `l` parties with threshold `t`
//!    (the paper assumes an initialized population — the dealer models the
//!    setup phase);
//! 2. each party computes a partial decryption `c_i = c^(2Δ·s_i)` with
//!    `Δ = l!`;
//! 3. any `t` partials combine to `c' = Π c_i^(2·λ^S_{0,i}) = c^(4Δ²·d)`,
//!    from which the plaintext is extracted with the discrete-log algorithm
//!    and a final multiplication by `(4Δ²)^{-1} mod n^s`.

use crate::keys::CrtContext;
use crate::shamir::{self, Share};
use crate::{Ciphertext, CryptoError, KeyGenOptions, KeyPair, PublicKey};
use cs_bigint::multi_exp::{batch_inverse, multi_exp_signed, MultiExpTerm};
use cs_bigint::{BigInt, BigUint};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Threshold configuration: `threshold` out of `parties`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdParams {
    /// Minimum number of partial decryptions needed.
    pub threshold: usize,
    /// Total number of key shares dealt.
    pub parties: usize,
}

impl ThresholdParams {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CryptoError> {
        if self.threshold == 0 {
            return Err(CryptoError::InvalidParameters("threshold must be >= 1"));
        }
        if self.threshold > self.parties {
            return Err(CryptoError::InvalidParameters(
                "threshold cannot exceed parties",
            ));
        }
        Ok(())
    }
}

/// Process-local CRT acceleration for one key share: the shared per-prime
/// contexts plus this share's exponent reduced mod each unit-group order.
/// Never serialized (see [`CrtContext`]'s scope note).
#[derive(Clone, Debug)]
struct ShareCrt {
    ctx: Arc<CrtContext>,
    exp_p: BigUint,
    exp_q: BigUint,
}

/// One party's share of the decryption key.
#[derive(Clone, Debug)]
pub struct KeyShare {
    index: u64,
    value: BigUint,
    /// `2Δ·s_i`, precomputed — the exponent of every partial decryption.
    exponent: BigUint,
    /// CRT fast path for the exponentiation; present when dealt in-process
    /// from a keypair that knows its factorization, absent on shares that
    /// crossed a serialization boundary.
    crt: Option<ShareCrt>,
    pk: PublicKey,
}

impl KeyShare {
    /// The 1-based share index.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The public key this share belongs to.
    pub fn public(&self) -> &PublicKey {
        &self.pk
    }

    /// Computes this party's partial decryption `c^(2Δ·s_i) mod n^(s+1)`.
    ///
    /// Runs the CRT fast path (half-width moduli, group-order-reduced
    /// exponents) when the share was dealt in-process; shares rebuilt from
    /// the wire take the generic full-width path. Both produce identical
    /// bytes for unit ciphertexts — [`Self::partial_decrypt_slow`] is the
    /// differential oracle.
    pub fn partial_decrypt(&self, c: &Ciphertext) -> PartialDecryption {
        let value = match &self.crt {
            Some(crt) => crt
                .ctx
                .pow_mod_reduced(c.as_biguint(), &crt.exp_p, &crt.exp_q),
            None => self.pk.mont().pow_mod(c.as_biguint(), &self.exponent),
        };
        PartialDecryption {
            index: self.index,
            value,
        }
    }

    /// Partial decryption through the generic full-width path, ignoring
    /// any CRT context — the differential oracle for the fast path.
    pub fn partial_decrypt_slow(&self, c: &Ciphertext) -> PartialDecryption {
        PartialDecryption {
            index: self.index,
            value: self.pk.mont().pow_mod(c.as_biguint(), &self.exponent),
        }
    }

    /// Whether this share carries the process-local CRT hint.
    pub fn has_crt_hint(&self) -> bool {
        self.crt.is_some()
    }

    /// A copy of this share without the CRT hint (the state a share is in
    /// after a serde roundtrip).
    pub fn without_crt(&self) -> KeyShare {
        KeyShare {
            crt: None,
            ..self.clone()
        }
    }

    /// Raw share value (used by tests asserting secrecy properties).
    pub fn share_value(&self) -> &BigUint {
        &self.value
    }

    /// Rebuilds a share from its wire parts (deserialization path — the
    /// caller vouches that `value` is a genuine Shamir share of the key
    /// behind `pk` and that `exponent = 2Δ·value` for the committee's Δ).
    /// Wire shares carry no CRT context.
    pub fn from_parts(index: u64, value: BigUint, exponent: BigUint, pk: PublicKey) -> Self {
        KeyShare {
            index,
            value,
            exponent,
            crt: None,
            pk,
        }
    }
}

impl Serialize for KeyShare {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (&self.index, &self.value, &self.exponent, &self.pk).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for KeyShare {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (index, value, exponent, pk): (u64, BigUint, BigUint, PublicKey) =
            Deserialize::deserialize(deserializer)?;
        if index == 0 {
            return Err(serde::de::Error::custom("share index must be >= 1"));
        }
        Ok(KeyShare::from_parts(index, value, exponent, pk))
    }
}

impl PartialEq for KeyShare {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
            && self.value == other.value
            && self.exponent == other.exponent
            && self.pk == other.pk
    }
}

impl Eq for KeyShare {}

/// A partial decryption contributed by one party.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialDecryption {
    index: u64,
    value: BigUint,
}

impl PartialDecryption {
    /// The contributing party's 1-based index.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.value.byte_len() + 8
    }

    /// The raw partial-decryption group element (wire codec access).
    pub fn value(&self) -> &BigUint {
        &self.value
    }

    /// Rebuilds a partial decryption from its wire parts.
    pub fn from_parts(index: u64, value: BigUint) -> Self {
        PartialDecryption { index, value }
    }
}

/// The dealer's output: public key, all key shares, and parameters.
///
/// ```
/// use cs_bigint::BigUint;
/// use cs_crypto::{KeyGenOptions, ThresholdKeyPair, ThresholdParams};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let tkp = ThresholdKeyPair::generate(
///     &KeyGenOptions::insecure_test_size(),
///     ThresholdParams { threshold: 2, parties: 3 },
///     &mut rng,
/// ).unwrap();
/// let c = tkp.public().encrypt(&BigUint::from(7u64), &mut rng);
/// let partials: Vec<_> = tkp.shares()[..2].iter().map(|s| s.partial_decrypt(&c)).collect();
/// assert_eq!(tkp.combine(&partials).unwrap(), BigUint::from(7u64));
/// ```
#[derive(Clone, Debug)]
pub struct ThresholdKeyPair {
    keypair: KeyPair,
    shares: Vec<KeyShare>,
    params: ThresholdParams,
    delta: BigUint,
}

impl ThresholdKeyPair {
    /// Runs the dealer: generates a key pair and Shamir-shares `d`.
    pub fn generate<R: Rng + ?Sized>(
        opts: &KeyGenOptions,
        params: ThresholdParams,
        rng: &mut R,
    ) -> Result<ThresholdKeyPair, CryptoError> {
        params.validate()?;
        let keypair = KeyPair::generate(opts, rng);
        Ok(Self::deal_from_keypair(keypair, params, rng))
    }

    /// Shares an existing key pair (lets tests reuse expensive keygen).
    pub fn deal_from_keypair<R: Rng + ?Sized>(
        keypair: KeyPair,
        params: ThresholdParams,
        rng: &mut R,
    ) -> ThresholdKeyPair {
        let pk = keypair.public().clone();
        let sharing_modulus = pk.n_s() * keypair.private().lambda();
        let raw_shares: Vec<Share> = shamir::split(
            keypair.private().d(),
            params.threshold,
            params.parties,
            &sharing_modulus,
            rng,
        );
        let delta = shamir::delta(params.parties);
        let two_delta = delta.mul_u64(2);
        // The dealer holds the factorization, so every share it deals gets
        // the process-local CRT fast path (reduced exponents + shared
        // contexts). Serialization strips it; see `CrtContext`.
        let crt_ctx = keypair.private().crt().cloned();
        let shares = raw_shares
            .into_iter()
            .map(|s| {
                let exponent = &two_delta * &s.value;
                let crt = crt_ctx.as_ref().map(|ctx| {
                    let (exp_p, exp_q) = ctx.reduce_exp(&exponent);
                    ShareCrt {
                        ctx: ctx.clone(),
                        exp_p,
                        exp_q,
                    }
                });
                KeyShare {
                    index: s.index,
                    exponent,
                    value: s.value,
                    crt,
                    pk: pk.clone(),
                }
            })
            .collect();
        ThresholdKeyPair {
            keypair,
            shares,
            params,
            delta,
        }
    }

    /// The public key.
    pub fn public(&self) -> &PublicKey {
        self.keypair.public()
    }

    /// All dealt key shares (the simulator hands one to each participant).
    pub fn shares(&self) -> &[KeyShare] {
        &self.shares
    }

    /// Threshold parameters.
    pub fn params(&self) -> ThresholdParams {
        self.params
    }

    /// The dealer's `Δ = parties!` scaling constant (what
    /// [`delta_for`] computes from the party count).
    pub fn delta(&self) -> &BigUint {
        &self.delta
    }

    /// The underlying non-threshold key pair — test/baseline use only; a
    /// real deployment's dealer erases it after dealing.
    pub fn as_keypair(&self) -> &KeyPair {
        &self.keypair
    }

    /// Combines at least `threshold` partial decryptions into the plaintext.
    pub fn combine(&self, partials: &[PartialDecryption]) -> Result<BigUint, CryptoError> {
        combine_partials(self.public(), self.params, &self.delta, partials)
    }
}

/// Validates the first `threshold` partials of a combine call and returns
/// their indices, in arrival order.
fn validated_subset_indices(
    params: ThresholdParams,
    partials: &[PartialDecryption],
) -> Result<Vec<u64>, CryptoError> {
    if partials.len() < params.threshold {
        return Err(CryptoError::NotEnoughShares {
            got: partials.len(),
            need: params.threshold,
        });
    }
    let subset = &partials[..params.threshold];
    let mut indices = Vec::with_capacity(subset.len());
    for p in subset {
        if p.index == 0 || p.index > params.parties as u64 {
            return Err(CryptoError::ShareIndexOutOfRange(p.index));
        }
        indices.push(p.index);
    }
    // Duplicate check on a sorted copy: O(t log t), not the O(t²)
    // `contains` scan this used to be.
    let mut sorted = indices.clone();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(CryptoError::DuplicateShareIndex(w[0]));
        }
    }
    Ok(indices)
}

/// Combines partial decryptions without needing the dealer object (the
/// protocol layer only has the public key and parameters).
///
/// Builds a one-shot [`CombinePlan`] for the subset and evaluates it —
/// Straus multi-exponentiation, one inversion. Callers that decrypt many
/// ciphertexts against the same committee subset should cache the plan in
/// a [`CombinePlanCache`] instead of re-deriving the Lagrange data per
/// call. [`combine_partials_naive`] keeps the per-partial `pow_mod` path
/// as the differential oracle.
pub fn combine_partials(
    pk: &PublicKey,
    params: ThresholdParams,
    delta: &BigUint,
    partials: &[PartialDecryption],
) -> Result<BigUint, CryptoError> {
    let indices = validated_subset_indices(params, partials)?;
    let plan = CombinePlan::new(pk, params, delta, &indices)?;
    plan.combine(pk, &partials[..params.threshold])
}

/// The pre-Straus reference combine: one full `pow_mod` per partial and a
/// `mod_inverse` per negative Lagrange coefficient (plus one for `4Δ²`).
/// Kept verbatim as the differential oracle for [`combine_partials`] and
/// [`CombinePlan`]; every production caller uses the fast path.
pub fn combine_partials_naive(
    pk: &PublicKey,
    params: ThresholdParams,
    delta: &BigUint,
    partials: &[PartialDecryption],
) -> Result<BigUint, CryptoError> {
    let indices = validated_subset_indices(params, partials)?;
    let subset = &partials[..params.threshold];

    // c' = Π c_i^(2·λ_{0,i}); negative coefficients exponentiate the group
    // inverse.
    let n_s1 = pk.n_s1();
    let mut acc = BigUint::one();
    for p in subset {
        let lambda = shamir::lagrange_at_zero(&indices, p.index, delta);
        let two_lambda = &lambda * &BigInt::from(2u64);
        let exp_mag = two_lambda.magnitude().clone();
        let base = if two_lambda.is_negative() {
            p.value.mod_inverse(n_s1).ok_or(CryptoError::NotAUnit)?
        } else {
            p.value.clone()
        };
        let factor = pk.mont().pow_mod(&base, &exp_mag);
        acc = pk.mont().mul_mod(&acc, &factor);
    }

    // acc = (1+n)^(4Δ²·m); recover m.
    let four_delta_sq = delta.square().mul_u64(4);
    let scaled = pk.dlog_one_plus_n(&acc);
    let inv = four_delta_sq
        .mod_inverse(pk.n_s())
        .ok_or(CryptoError::NotAUnit)?;
    Ok(scaled.mod_mul(&inv, pk.n_s()))
}

/// Precomputed combine data for one (committee subset, key) pair: the
/// `2λ_{0,i}` Lagrange magnitudes and signs, and `(4Δ²)^{-1} mod n^s`.
///
/// Deriving these costs `t` exact integer Lagrange evaluations plus one
/// extended-gcd inversion — work that is identical for every ciphertext a
/// given subset ever combines, which is why the protocol layers cache
/// plans per subset ([`CombinePlanCache`]) instead of re-deriving them on
/// every bucket of every step.
///
/// Evaluation is a Straus interleaved multi-exponentiation: all `t`
/// partials share one squaring chain, positive-λ factors accumulate into a
/// numerator and negative-λ factors into a denominator, and a single
/// inversion (batched across ciphertexts in [`Self::combine_batch`])
/// replaces the per-partial `mod_inverse` calls of the naive path.
#[derive(Clone, Debug)]
pub struct CombinePlan {
    /// The subset's share indices, in plan order.
    indices: Vec<u64>,
    /// Per index: `|2λ_{0,i}|` and whether the coefficient is negative.
    terms: Vec<(BigUint, bool)>,
    /// `(4Δ²)^{-1} mod n^s`.
    four_delta_sq_inv: BigUint,
}

impl CombinePlan {
    /// Derives the plan for a committee subset given as share indices
    /// (exactly `threshold` of them, each in `1..=parties`, no duplicates).
    pub fn new(
        pk: &PublicKey,
        params: ThresholdParams,
        delta: &BigUint,
        indices: &[u64],
    ) -> Result<CombinePlan, CryptoError> {
        params.validate()?;
        if indices.len() != params.threshold {
            return Err(CryptoError::NotEnoughShares {
                got: indices.len(),
                need: params.threshold,
            });
        }
        let mut sorted = indices.to_vec();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(CryptoError::DuplicateShareIndex(w[0]));
            }
        }
        let mut terms = Vec::with_capacity(indices.len());
        for &i in indices {
            if i == 0 || i > params.parties as u64 {
                return Err(CryptoError::ShareIndexOutOfRange(i));
            }
            let two_lambda = &shamir::lagrange_at_zero(indices, i, delta) * &BigInt::from(2u64);
            terms.push((two_lambda.magnitude().clone(), two_lambda.is_negative()));
        }
        let four_delta_sq_inv = delta
            .square()
            .mul_u64(4)
            .mod_inverse(pk.n_s())
            .ok_or(CryptoError::NotAUnit)?;
        Ok(CombinePlan {
            indices: indices.to_vec(),
            terms,
            four_delta_sq_inv,
        })
    }

    /// The subset this plan was derived for, in plan order.
    pub fn indices(&self) -> &[u64] {
        &self.indices
    }

    /// Straus-evaluates the numerator/denominator pair for one
    /// ciphertext's partials. Partials must cover exactly this plan's
    /// subset (any order).
    fn split_products(
        &self,
        pk: &PublicKey,
        partials: &[PartialDecryption],
    ) -> Result<(BigUint, BigUint), CryptoError> {
        let mut exp_terms = Vec::with_capacity(self.indices.len());
        for (&idx, (mag, neg)) in self.indices.iter().zip(&self.terms) {
            let p = partials
                .iter()
                .find(|p| p.index == idx)
                .ok_or(CryptoError::MismatchedShares)?;
            exp_terms.push(MultiExpTerm {
                base: p.value.clone(),
                exp: mag.clone(),
                negative: *neg,
            });
        }
        if partials.len() != self.indices.len() {
            return Err(CryptoError::MismatchedShares);
        }
        Ok(multi_exp_signed(pk.mont(), &exp_terms))
    }

    /// Recovers the plaintext from the combined group element
    /// `(1+n)^(4Δ²·m)`.
    fn finish(&self, pk: &PublicKey, acc: &BigUint) -> BigUint {
        let scaled = pk.dlog_one_plus_n(acc);
        scaled.mod_mul(&self.four_delta_sq_inv, pk.n_s())
    }

    /// Combines one ciphertext's partial decryptions into the plaintext.
    pub fn combine(
        &self,
        pk: &PublicKey,
        partials: &[PartialDecryption],
    ) -> Result<BigUint, CryptoError> {
        let (num, den) = self.split_products(pk, partials)?;
        let acc = if den.is_one() {
            num
        } else {
            let den_inv = den.mod_inverse(pk.n_s1()).ok_or(CryptoError::NotAUnit)?;
            pk.mont().mul_mod(&num, &den_inv)
        };
        Ok(self.finish(pk, &acc))
    }

    /// Combines many ciphertexts decrypted by the same subset, amortizing
    /// the denominator inversions across the whole batch with Montgomery's
    /// trick: one extended-gcd for the entire batch instead of one per
    /// ciphertext.
    pub fn combine_batch(
        &self,
        pk: &PublicKey,
        groups: &[Vec<PartialDecryption>],
    ) -> Result<Vec<BigUint>, CryptoError> {
        let mut nums = Vec::with_capacity(groups.len());
        let mut dens = Vec::with_capacity(groups.len());
        for partials in groups {
            let (num, den) = self.split_products(pk, partials)?;
            nums.push(num);
            dens.push(den);
        }
        let den_invs = batch_inverse(pk.mont(), &dens).ok_or(CryptoError::NotAUnit)?;
        Ok(nums
            .iter()
            .zip(&den_invs)
            .map(|(num, den_inv)| {
                let acc = pk.mont().mul_mod(num, den_inv);
                self.finish(pk, &acc)
            })
            .collect())
    }
}

/// A per-run cache of [`CombinePlan`]s keyed by committee subset.
///
/// Interior-locked so one cache can be shared across worker threads (the
/// sharded executor) or across a daemon's steps behind an `Arc`. The map
/// stays tiny: a run sees at most `C(parties, threshold)` distinct
/// subsets, and test committees are 2-of-3.
#[derive(Debug, Default)]
pub struct CombinePlanCache {
    plans: Mutex<HashMap<Vec<u64>, Arc<CombinePlan>>>,
}

impl CombinePlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached plan for a subset, deriving and inserting it on
    /// first sight. The key is the *sorted* index set — arrival order does
    /// not fragment the cache.
    pub fn plan_for(
        &self,
        pk: &PublicKey,
        params: ThresholdParams,
        delta: &BigUint,
        indices: &[u64],
    ) -> Result<Arc<CombinePlan>, CryptoError> {
        let mut key = indices.to_vec();
        key.sort_unstable();
        if let Some(plan) = self.plans.lock().expect("plan cache lock").get(&key) {
            return Ok(plan.clone());
        }
        let plan = Arc::new(CombinePlan::new(pk, params, delta, indices)?);
        self.plans
            .lock()
            .expect("plan cache lock")
            .insert(key, plan.clone());
        Ok(plan)
    }

    /// Validates and combines one ciphertext's partials through the cached
    /// plan for their subset.
    pub fn combine(
        &self,
        pk: &PublicKey,
        params: ThresholdParams,
        delta: &BigUint,
        partials: &[PartialDecryption],
    ) -> Result<BigUint, CryptoError> {
        let indices = validated_subset_indices(params, partials)?;
        let plan = self.plan_for(pk, params, delta, &indices)?;
        plan.combine(pk, &partials[..params.threshold])
    }

    /// Combines many ciphertexts decrypted by one subset (the subset of
    /// the first group; all groups must match it), batching the inversions.
    pub fn combine_batch(
        &self,
        pk: &PublicKey,
        params: ThresholdParams,
        delta: &BigUint,
        groups: &[Vec<PartialDecryption>],
    ) -> Result<Vec<BigUint>, CryptoError> {
        let Some(first) = groups.first() else {
            return Ok(Vec::new());
        };
        let indices = validated_subset_indices(params, first)?;
        let plan = self.plan_for(pk, params, delta, &indices)?;
        let trimmed: Vec<Vec<PartialDecryption>> = groups
            .iter()
            .map(|g| {
                if g.len() < params.threshold {
                    Err(CryptoError::NotEnoughShares {
                        got: g.len(),
                        need: params.threshold,
                    })
                } else {
                    Ok(g[..params.threshold].to_vec())
                }
            })
            .collect::<Result<_, _>>()?;
        plan.combine_batch(pk, &trimmed)
    }
}

/// `Δ = parties!`, re-exported for callers that combine without a dealer.
pub fn delta_for(parties: usize) -> BigUint {
    shamir::delta(parties)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_bigint::rng::random_below;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64, t: usize, l: usize, s: u32) -> (ThresholdKeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tkp = ThresholdKeyPair::generate(
            &KeyGenOptions::insecure_test_size_s(s),
            ThresholdParams {
                threshold: t,
                parties: l,
            },
            &mut rng,
        )
        .unwrap();
        (tkp, rng)
    }

    #[test]
    fn threshold_decryption_roundtrip() {
        let (tkp, mut rng) = setup(200, 3, 5, 1);
        let m = BigUint::from(123_456_789u64);
        let c = tkp.public().encrypt(&m, &mut rng);
        let partials: Vec<_> = tkp.shares()[..3]
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        assert_eq!(tkp.combine(&partials).unwrap(), m);
    }

    #[test]
    fn any_subset_of_shares_works() {
        let (tkp, mut rng) = setup(201, 2, 4, 1);
        let m = BigUint::from(42u64);
        let c = tkp.public().encrypt(&m, &mut rng);
        let all: Vec<_> = tkp
            .shares()
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    continue;
                }
                let subset = vec![all[a].clone(), all[b].clone()];
                assert_eq!(tkp.combine(&subset).unwrap(), m, "subset ({a},{b})");
            }
        }
    }

    #[test]
    fn extra_shares_are_ignored_beyond_threshold() {
        let (tkp, mut rng) = setup(202, 2, 5, 1);
        let m = BigUint::from(7u64);
        let c = tkp.public().encrypt(&m, &mut rng);
        let all: Vec<_> = tkp
            .shares()
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        assert_eq!(tkp.combine(&all).unwrap(), m);
    }

    #[test]
    fn threshold_matches_plain_decryption() {
        let (tkp, mut rng) = setup(203, 3, 4, 1);
        let m = random_below(&mut rng, tkp.public().n_s());
        let c = tkp.public().encrypt(&m, &mut rng);
        let partials: Vec<_> = tkp.shares()[1..4]
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        assert_eq!(tkp.combine(&partials).unwrap(), m);
        assert_eq!(tkp.as_keypair().private().decrypt(&c), m);
    }

    #[test]
    fn degree_two_threshold() {
        let (tkp, mut rng) = setup(204, 2, 3, 2);
        let m = tkp.public().n().add_u64(999); // exceeds n, needs s=2
        let c = tkp.public().encrypt(&m, &mut rng);
        let partials: Vec<_> = tkp.shares()[..2]
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        assert_eq!(tkp.combine(&partials).unwrap(), m);
    }

    #[test]
    fn too_few_shares_error() {
        let (tkp, mut rng) = setup(205, 3, 5, 1);
        let c = tkp.public().encrypt(&BigUint::one(), &mut rng);
        let partials: Vec<_> = tkp.shares()[..2]
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        assert!(matches!(
            tkp.combine(&partials),
            Err(CryptoError::NotEnoughShares { got: 2, need: 3 })
        ));
    }

    #[test]
    fn duplicate_share_error() {
        let (tkp, mut rng) = setup(206, 2, 3, 1);
        let c = tkp.public().encrypt(&BigUint::one(), &mut rng);
        let p = tkp.shares()[0].partial_decrypt(&c);
        assert!(matches!(
            tkp.combine(&[p.clone(), p]),
            Err(CryptoError::DuplicateShareIndex(1))
        ));
    }

    #[test]
    fn homomorphic_sum_then_threshold_decrypt() {
        // The Chiaroscuro shape: gossip-summed ciphertext, then collaborative
        // decryption.
        let (tkp, mut rng) = setup(207, 3, 6, 1);
        let pk = tkp.public();
        let mut acc = pk.trivial_zero();
        for v in [10u64, 20, 30, 40] {
            acc = pk.add(&acc, &pk.encrypt(&BigUint::from(v), &mut rng));
        }
        let partials: Vec<_> = tkp.shares()[2..5]
            .iter()
            .map(|sh| sh.partial_decrypt(&acc))
            .collect();
        assert_eq!(tkp.combine(&partials).unwrap(), BigUint::from(100u64));
    }

    #[test]
    fn invalid_params_rejected() {
        let mut rng = StdRng::seed_from_u64(208);
        let r = ThresholdKeyPair::generate(
            &KeyGenOptions::insecure_test_size(),
            ThresholdParams {
                threshold: 4,
                parties: 3,
            },
            &mut rng,
        );
        assert!(r.is_err());
    }

    #[test]
    fn fast_combine_matches_naive_all_subsets() {
        // 2-of-4 exercises negative Lagrange coefficients on most subsets.
        let (tkp, mut rng) = setup(220, 2, 4, 1);
        let m = random_below(&mut rng, tkp.public().n_s());
        let c = tkp.public().encrypt(&m, &mut rng);
        let all: Vec<_> = tkp
            .shares()
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    continue;
                }
                let subset = vec![all[a].clone(), all[b].clone()];
                let fast =
                    combine_partials(tkp.public(), tkp.params(), &tkp.delta, &subset).unwrap();
                let naive = combine_partials_naive(tkp.public(), tkp.params(), &tkp.delta, &subset)
                    .unwrap();
                assert_eq!(fast, naive, "subset ({a},{b})");
                assert_eq!(fast, m, "subset ({a},{b})");
            }
        }
    }

    #[test]
    fn partial_decrypt_crt_matches_slow_path() {
        let (tkp, mut rng) = setup(221, 2, 3, 2);
        let m = random_below(&mut rng, tkp.public().n_s());
        let c = tkp.public().encrypt(&m, &mut rng);
        for sh in tkp.shares() {
            assert!(sh.has_crt_hint(), "dealer-local shares carry CRT");
            let stripped = sh.without_crt();
            assert!(!stripped.has_crt_hint());
            let fast = sh.partial_decrypt(&c);
            assert_eq!(fast, sh.partial_decrypt_slow(&c), "share {}", sh.index());
            assert_eq!(fast, stripped.partial_decrypt(&c), "share {}", sh.index());
        }
    }

    #[test]
    fn plan_cache_combine_matches_oneshot() {
        let (tkp, mut rng) = setup(222, 3, 5, 1);
        let cache = CombinePlanCache::new();
        for _ in 0..3 {
            let m = random_below(&mut rng, tkp.public().n_s());
            let c = tkp.public().encrypt(&m, &mut rng);
            // Arrival order differs from sorted order; the cache key must not
            // fragment.
            let partials: Vec<_> = [3usize, 0, 4]
                .iter()
                .map(|&i| tkp.shares()[i].partial_decrypt(&c))
                .collect();
            let cached = cache
                .combine(tkp.public(), tkp.params(), &tkp.delta, &partials)
                .unwrap();
            assert_eq!(cached, m);
        }
    }

    #[test]
    fn plan_combine_batch_matches_per_ciphertext() {
        let (tkp, mut rng) = setup(223, 2, 4, 1);
        let cache = CombinePlanCache::new();
        let mut groups = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..5 {
            let m = random_below(&mut rng, tkp.public().n_s());
            let c = tkp.public().encrypt(&m, &mut rng);
            // Subset {2,4}: one negative Lagrange coefficient.
            let partials = vec![
                tkp.shares()[1].partial_decrypt(&c),
                tkp.shares()[3].partial_decrypt(&c),
            ];
            groups.push(partials);
            expected.push(m);
        }
        let batched = cache
            .combine_batch(tkp.public(), tkp.params(), &tkp.delta, &groups)
            .unwrap();
        assert_eq!(batched, expected);
        assert!(cache
            .combine_batch(tkp.public(), tkp.params(), &tkp.delta, &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn plan_rejects_bad_subsets() {
        let (tkp, mut rng) = setup(224, 2, 3, 1);
        let pk = tkp.public();
        let params = tkp.params();
        assert!(matches!(
            CombinePlan::new(pk, params, &tkp.delta, &[1]),
            Err(CryptoError::NotEnoughShares { got: 1, need: 2 })
        ));
        assert!(matches!(
            CombinePlan::new(pk, params, &tkp.delta, &[2, 2]),
            Err(CryptoError::DuplicateShareIndex(2))
        ));
        assert!(matches!(
            CombinePlan::new(pk, params, &tkp.delta, &[1, 4]),
            Err(CryptoError::ShareIndexOutOfRange(4))
        ));
        assert!(matches!(
            CombinePlan::new(pk, params, &tkp.delta, &[0, 1]),
            Err(CryptoError::ShareIndexOutOfRange(0))
        ));
        // A plan evaluated against partials from a different subset is
        // rejected, not silently miscombined.
        let plan = CombinePlan::new(pk, params, &tkp.delta, &[1, 2]).unwrap();
        let c = pk.encrypt(&BigUint::from(5u64), &mut rng);
        let wrong = vec![
            tkp.shares()[0].partial_decrypt(&c),
            tkp.shares()[2].partial_decrypt(&c),
        ];
        assert!(matches!(
            plan.combine(pk, &wrong),
            Err(CryptoError::MismatchedShares)
        ));
    }

    #[test]
    fn index_rejection_matches_between_fast_and_naive() {
        let (tkp, mut rng) = setup(225, 2, 3, 1);
        let c = tkp.public().encrypt(&BigUint::one(), &mut rng);
        let p1 = tkp.shares()[0].partial_decrypt(&c);
        let mut forged = tkp.shares()[1].partial_decrypt(&c);
        forged.index = 9;
        for partials in [
            vec![p1.clone(), p1.clone()],
            vec![p1.clone(), forged.clone()],
            vec![p1.clone()],
        ] {
            let fast = combine_partials(tkp.public(), tkp.params(), &tkp.delta, &partials);
            let naive = combine_partials_naive(tkp.public(), tkp.params(), &tkp.delta, &partials);
            assert_eq!(
                format!("{:?}", fast.as_ref().err()),
                format!("{:?}", naive.as_ref().err()),
                "fast and naive must reject identically"
            );
            assert!(fast.is_err());
        }
    }

    #[test]
    fn wire_deserialized_shares_take_generic_path() {
        let (tkp, mut rng) = setup(226, 2, 3, 1);
        let sh = &tkp.shares()[0];
        let json = serde_json::to_string(sh).unwrap();
        let back: KeyShare = serde_json::from_str(&json).unwrap();
        // The CRT hint is factorization knowledge — it must never survive
        // serialization (a committee member with it could decrypt alone).
        assert!(!back.has_crt_hint());
        assert_eq!(&back, sh);
        let c = tkp.public().encrypt(&BigUint::from(77u64), &mut rng);
        assert_eq!(back.partial_decrypt(&c), sh.partial_decrypt(&c));
    }
}
