//! Threshold Damgård-Jurik decryption.
//!
//! Chiaroscuro requires that "the decryption is performed collaboratively by
//! any subset of participants provided it is sufficiently large". This module
//! implements the Damgård-Jurik threshold construction:
//!
//! 1. a dealer generates the key pair and Shamir-shares the decryption
//!    exponent `d` over `Z_{n^s·λ(n)}` among `l` parties with threshold `t`
//!    (the paper assumes an initialized population — the dealer models the
//!    setup phase);
//! 2. each party computes a partial decryption `c_i = c^(2Δ·s_i)` with
//!    `Δ = l!`;
//! 3. any `t` partials combine to `c' = Π c_i^(2·λ^S_{0,i}) = c^(4Δ²·d)`,
//!    from which the plaintext is extracted with the discrete-log algorithm
//!    and a final multiplication by `(4Δ²)^{-1} mod n^s`.

use crate::shamir::{self, Share};
use crate::{Ciphertext, CryptoError, KeyGenOptions, KeyPair, PublicKey};
use cs_bigint::{BigInt, BigUint};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Threshold configuration: `threshold` out of `parties`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdParams {
    /// Minimum number of partial decryptions needed.
    pub threshold: usize,
    /// Total number of key shares dealt.
    pub parties: usize,
}

impl ThresholdParams {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CryptoError> {
        if self.threshold == 0 {
            return Err(CryptoError::InvalidParameters("threshold must be >= 1"));
        }
        if self.threshold > self.parties {
            return Err(CryptoError::InvalidParameters(
                "threshold cannot exceed parties",
            ));
        }
        Ok(())
    }
}

/// One party's share of the decryption key.
#[derive(Clone, Debug)]
pub struct KeyShare {
    index: u64,
    value: BigUint,
    /// `2Δ·s_i`, precomputed — the exponent of every partial decryption.
    exponent: BigUint,
    pk: PublicKey,
}

impl KeyShare {
    /// The 1-based share index.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The public key this share belongs to.
    pub fn public(&self) -> &PublicKey {
        &self.pk
    }

    /// Computes this party's partial decryption `c^(2Δ·s_i) mod n^(s+1)`.
    pub fn partial_decrypt(&self, c: &Ciphertext) -> PartialDecryption {
        PartialDecryption {
            index: self.index,
            value: self.pk.mont().pow_mod(c.as_biguint(), &self.exponent),
        }
    }

    /// Raw share value (used by tests asserting secrecy properties).
    pub fn share_value(&self) -> &BigUint {
        &self.value
    }

    /// Rebuilds a share from its wire parts (deserialization path — the
    /// caller vouches that `value` is a genuine Shamir share of the key
    /// behind `pk` and that `exponent = 2Δ·value` for the committee's Δ).
    pub fn from_parts(index: u64, value: BigUint, exponent: BigUint, pk: PublicKey) -> Self {
        KeyShare {
            index,
            value,
            exponent,
            pk,
        }
    }
}

impl Serialize for KeyShare {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (&self.index, &self.value, &self.exponent, &self.pk).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for KeyShare {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (index, value, exponent, pk): (u64, BigUint, BigUint, PublicKey) =
            Deserialize::deserialize(deserializer)?;
        if index == 0 {
            return Err(serde::de::Error::custom("share index must be >= 1"));
        }
        Ok(KeyShare::from_parts(index, value, exponent, pk))
    }
}

impl PartialEq for KeyShare {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
            && self.value == other.value
            && self.exponent == other.exponent
            && self.pk == other.pk
    }
}

impl Eq for KeyShare {}

/// A partial decryption contributed by one party.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialDecryption {
    index: u64,
    value: BigUint,
}

impl PartialDecryption {
    /// The contributing party's 1-based index.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.value.byte_len() + 8
    }

    /// The raw partial-decryption group element (wire codec access).
    pub fn value(&self) -> &BigUint {
        &self.value
    }

    /// Rebuilds a partial decryption from its wire parts.
    pub fn from_parts(index: u64, value: BigUint) -> Self {
        PartialDecryption { index, value }
    }
}

/// The dealer's output: public key, all key shares, and parameters.
///
/// ```
/// use cs_bigint::BigUint;
/// use cs_crypto::{KeyGenOptions, ThresholdKeyPair, ThresholdParams};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let tkp = ThresholdKeyPair::generate(
///     &KeyGenOptions::insecure_test_size(),
///     ThresholdParams { threshold: 2, parties: 3 },
///     &mut rng,
/// ).unwrap();
/// let c = tkp.public().encrypt(&BigUint::from(7u64), &mut rng);
/// let partials: Vec<_> = tkp.shares()[..2].iter().map(|s| s.partial_decrypt(&c)).collect();
/// assert_eq!(tkp.combine(&partials).unwrap(), BigUint::from(7u64));
/// ```
#[derive(Clone, Debug)]
pub struct ThresholdKeyPair {
    keypair: KeyPair,
    shares: Vec<KeyShare>,
    params: ThresholdParams,
    delta: BigUint,
}

impl ThresholdKeyPair {
    /// Runs the dealer: generates a key pair and Shamir-shares `d`.
    pub fn generate<R: Rng + ?Sized>(
        opts: &KeyGenOptions,
        params: ThresholdParams,
        rng: &mut R,
    ) -> Result<ThresholdKeyPair, CryptoError> {
        params.validate()?;
        let keypair = KeyPair::generate(opts, rng);
        Ok(Self::deal_from_keypair(keypair, params, rng))
    }

    /// Shares an existing key pair (lets tests reuse expensive keygen).
    pub fn deal_from_keypair<R: Rng + ?Sized>(
        keypair: KeyPair,
        params: ThresholdParams,
        rng: &mut R,
    ) -> ThresholdKeyPair {
        let pk = keypair.public().clone();
        let sharing_modulus = pk.n_s() * keypair.private().lambda();
        let raw_shares: Vec<Share> = shamir::split(
            keypair.private().d(),
            params.threshold,
            params.parties,
            &sharing_modulus,
            rng,
        );
        let delta = shamir::delta(params.parties);
        let two_delta = delta.mul_u64(2);
        let shares = raw_shares
            .into_iter()
            .map(|s| KeyShare {
                index: s.index,
                exponent: &two_delta * &s.value,
                value: s.value,
                pk: pk.clone(),
            })
            .collect();
        ThresholdKeyPair {
            keypair,
            shares,
            params,
            delta,
        }
    }

    /// The public key.
    pub fn public(&self) -> &PublicKey {
        self.keypair.public()
    }

    /// All dealt key shares (the simulator hands one to each participant).
    pub fn shares(&self) -> &[KeyShare] {
        &self.shares
    }

    /// Threshold parameters.
    pub fn params(&self) -> ThresholdParams {
        self.params
    }

    /// The underlying non-threshold key pair — test/baseline use only; a
    /// real deployment's dealer erases it after dealing.
    pub fn as_keypair(&self) -> &KeyPair {
        &self.keypair
    }

    /// Combines at least `threshold` partial decryptions into the plaintext.
    pub fn combine(&self, partials: &[PartialDecryption]) -> Result<BigUint, CryptoError> {
        combine_partials(self.public(), self.params, &self.delta, partials)
    }
}

/// Combines partial decryptions without needing the dealer object (the
/// protocol layer only has the public key and parameters).
pub fn combine_partials(
    pk: &PublicKey,
    params: ThresholdParams,
    delta: &BigUint,
    partials: &[PartialDecryption],
) -> Result<BigUint, CryptoError> {
    if partials.len() < params.threshold {
        return Err(CryptoError::NotEnoughShares {
            got: partials.len(),
            need: params.threshold,
        });
    }
    let subset = &partials[..params.threshold];
    let mut indices = Vec::with_capacity(subset.len());
    for p in subset {
        if p.index == 0 || p.index > params.parties as u64 {
            return Err(CryptoError::ShareIndexOutOfRange(p.index));
        }
        if indices.contains(&p.index) {
            return Err(CryptoError::DuplicateShareIndex(p.index));
        }
        indices.push(p.index);
    }

    // c' = Π c_i^(2·λ_{0,i}); negative coefficients exponentiate the group
    // inverse.
    let n_s1 = pk.n_s1();
    let mut acc = BigUint::one();
    for p in subset {
        let lambda = shamir::lagrange_at_zero(&indices, p.index, delta);
        let two_lambda = &lambda * &BigInt::from(2u64);
        let exp_mag = two_lambda.magnitude().clone();
        let base = if two_lambda.is_negative() {
            p.value.mod_inverse(n_s1).ok_or(CryptoError::NotAUnit)?
        } else {
            p.value.clone()
        };
        let factor = pk.mont().pow_mod(&base, &exp_mag);
        acc = pk.mont().mul_mod(&acc, &factor);
    }

    // acc = (1+n)^(4Δ²·m); recover m.
    let four_delta_sq = delta.square().mul_u64(4);
    let scaled = pk.dlog_one_plus_n(&acc);
    let inv = four_delta_sq
        .mod_inverse(pk.n_s())
        .expect("4Δ² is a unit mod n^s");
    Ok(scaled.mod_mul(&inv, pk.n_s()))
}

/// `Δ = parties!`, re-exported for callers that combine without a dealer.
pub fn delta_for(parties: usize) -> BigUint {
    shamir::delta(parties)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_bigint::rng::random_below;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64, t: usize, l: usize, s: u32) -> (ThresholdKeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tkp = ThresholdKeyPair::generate(
            &KeyGenOptions::insecure_test_size_s(s),
            ThresholdParams {
                threshold: t,
                parties: l,
            },
            &mut rng,
        )
        .unwrap();
        (tkp, rng)
    }

    #[test]
    fn threshold_decryption_roundtrip() {
        let (tkp, mut rng) = setup(200, 3, 5, 1);
        let m = BigUint::from(123_456_789u64);
        let c = tkp.public().encrypt(&m, &mut rng);
        let partials: Vec<_> = tkp.shares()[..3]
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        assert_eq!(tkp.combine(&partials).unwrap(), m);
    }

    #[test]
    fn any_subset_of_shares_works() {
        let (tkp, mut rng) = setup(201, 2, 4, 1);
        let m = BigUint::from(42u64);
        let c = tkp.public().encrypt(&m, &mut rng);
        let all: Vec<_> = tkp
            .shares()
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    continue;
                }
                let subset = vec![all[a].clone(), all[b].clone()];
                assert_eq!(tkp.combine(&subset).unwrap(), m, "subset ({a},{b})");
            }
        }
    }

    #[test]
    fn extra_shares_are_ignored_beyond_threshold() {
        let (tkp, mut rng) = setup(202, 2, 5, 1);
        let m = BigUint::from(7u64);
        let c = tkp.public().encrypt(&m, &mut rng);
        let all: Vec<_> = tkp
            .shares()
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        assert_eq!(tkp.combine(&all).unwrap(), m);
    }

    #[test]
    fn threshold_matches_plain_decryption() {
        let (tkp, mut rng) = setup(203, 3, 4, 1);
        let m = random_below(&mut rng, tkp.public().n_s());
        let c = tkp.public().encrypt(&m, &mut rng);
        let partials: Vec<_> = tkp.shares()[1..4]
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        assert_eq!(tkp.combine(&partials).unwrap(), m);
        assert_eq!(tkp.as_keypair().private().decrypt(&c), m);
    }

    #[test]
    fn degree_two_threshold() {
        let (tkp, mut rng) = setup(204, 2, 3, 2);
        let m = tkp.public().n().add_u64(999); // exceeds n, needs s=2
        let c = tkp.public().encrypt(&m, &mut rng);
        let partials: Vec<_> = tkp.shares()[..2]
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        assert_eq!(tkp.combine(&partials).unwrap(), m);
    }

    #[test]
    fn too_few_shares_error() {
        let (tkp, mut rng) = setup(205, 3, 5, 1);
        let c = tkp.public().encrypt(&BigUint::one(), &mut rng);
        let partials: Vec<_> = tkp.shares()[..2]
            .iter()
            .map(|sh| sh.partial_decrypt(&c))
            .collect();
        assert!(matches!(
            tkp.combine(&partials),
            Err(CryptoError::NotEnoughShares { got: 2, need: 3 })
        ));
    }

    #[test]
    fn duplicate_share_error() {
        let (tkp, mut rng) = setup(206, 2, 3, 1);
        let c = tkp.public().encrypt(&BigUint::one(), &mut rng);
        let p = tkp.shares()[0].partial_decrypt(&c);
        assert!(matches!(
            tkp.combine(&[p.clone(), p]),
            Err(CryptoError::DuplicateShareIndex(1))
        ));
    }

    #[test]
    fn homomorphic_sum_then_threshold_decrypt() {
        // The Chiaroscuro shape: gossip-summed ciphertext, then collaborative
        // decryption.
        let (tkp, mut rng) = setup(207, 3, 6, 1);
        let pk = tkp.public();
        let mut acc = pk.trivial_zero();
        for v in [10u64, 20, 30, 40] {
            acc = pk.add(&acc, &pk.encrypt(&BigUint::from(v), &mut rng));
        }
        let partials: Vec<_> = tkp.shares()[2..5]
            .iter()
            .map(|sh| sh.partial_decrypt(&acc))
            .collect();
        assert_eq!(tkp.combine(&partials).unwrap(), BigUint::from(100u64));
    }

    #[test]
    fn invalid_params_rejected() {
        let mut rng = StdRng::seed_from_u64(208);
        let r = ThresholdKeyPair::generate(
            &KeyGenOptions::insecure_test_size(),
            ThresholdParams {
                threshold: 4,
                parties: 3,
            },
            &mut rng,
        );
        assert!(r.is_err());
    }
}
