//! Encryption and decryption: the core Damgård-Jurik algorithms.

use crate::{Ciphertext, PrivateKey, PublicKey};
use cs_bigint::rng::random_unit;
use cs_bigint::BigUint;
use rand::Rng;

impl PublicKey {
    /// Encrypts `m ∈ [0, n^s)`: `c = (1+n)^m · r^(n^s) mod n^(s+1)` with a
    /// fresh uniform unit `r ∈ Z*_n`.
    ///
    /// Panics if `m >= n^s`; use [`PublicKey::check_plaintext`] to validate
    /// untrusted inputs first.
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> Ciphertext {
        assert!(m < self.n_s(), "plaintext out of range");
        let r = random_unit(rng, self.n());
        self.encrypt_with_randomness(m, &r)
    }

    /// Deterministic encryption with caller-provided randomness `r ∈ Z*_n`.
    /// Exposed for tests and for re-randomization; real users should call
    /// [`PublicKey::encrypt`].
    pub fn encrypt_with_randomness(&self, m: &BigUint, r: &BigUint) -> Ciphertext {
        let g_m = self.one_plus_n_pow(m);
        let r_ns = self.mont().pow_mod(r, self.n_s());
        Ciphertext(self.mont().mul_mod(&g_m, &r_ns))
    }

    /// `(1+n)^m mod n^(s+1)` by binomial expansion:
    /// `Σ_{k=0}^{s} C(m,k)·n^k`, where `C(m,k)` is computed mod `n^(s+1)`
    /// (valid because `k!` is a unit — `n` has no small factors).
    ///
    /// For `s = 1` this is just `1 + m·n`: one multiplication instead of a
    /// full modular exponentiation, the classic Paillier trick.
    pub(crate) fn one_plus_n_pow(&self, m: &BigUint) -> BigUint {
        let n_s1 = self.n_s1();
        let mut acc = BigUint::one();
        // term_k = C(m,k) · n^k mod n^(s+1), built incrementally:
        // C(m,k) = C(m,k-1)·(m-k+1)/k.
        let mut binom_num = BigUint::one(); // m·(m-1)···(m-k+1) mod n^(s+1)
        let mut n_pow = BigUint::one(); // n^k
        let mut k_fact = BigUint::one(); // k!
        for k in 1..=self.s() as u64 {
            // (m - k + 1) mod n^(s+1); m < n^s < n^(s+1) so mod_sub is safe.
            let factor = m.mod_sub(&BigUint::from(k - 1), n_s1);
            binom_num = binom_num.mod_mul(&factor, n_s1);
            n_pow = &n_pow * self.n();
            k_fact = k_fact.mul_u64(k);
            let k_fact_inv = k_fact.mod_inverse(n_s1).expect("k! is a unit mod n^(s+1)");
            let term = binom_num.mod_mul(&k_fact_inv, n_s1).mod_mul(&n_pow, n_s1);
            acc = acc.mod_add(&term, n_s1);
        }
        acc
    }

    /// Extracts `i mod n^s` from `b = (1+n)^i mod n^(s+1)`.
    ///
    /// This is the Damgård-Jurik discrete-log algorithm: the function
    /// `L(u) = (u-1)/n` recovers `i` plus higher binomial terms at each
    /// precision level `n^j`, which are peeled off with the previous level's
    /// estimate.
    pub(crate) fn dlog_one_plus_n(&self, b: &BigUint) -> BigUint {
        let n = self.n();
        let s = self.s() as usize;
        // Precompute n^1..n^(s+1).
        let mut n_pows = Vec::with_capacity(s + 2);
        n_pows.push(BigUint::one());
        for j in 1..=s + 1 {
            let next = &n_pows[j - 1] * n;
            n_pows.push(next);
        }

        let mut i = BigUint::zero();
        for j in 1..=s {
            let n_j = &n_pows[j];
            let n_j1 = &n_pows[j + 1];
            let b_j = b % n_j1;
            // L(b_j): exact division since b_j ≡ 1 (mod n).
            let t1 = &b_j.sub_u64(1) / n;
            let mut t1 = &t1 % n_j;
            let mut t2 = i.clone();
            let mut i_run = i.clone();
            let mut k_fact = BigUint::one();
            for k in 2..=j as u64 {
                i_run = i_run.mod_sub(&BigUint::one(), n_j);
                t2 = t2.mod_mul(&i_run, n_j);
                k_fact = k_fact.mul_u64(k);
                let k_fact_inv = k_fact.mod_inverse(n_j).expect("k! unit mod n^j");
                let term = t2
                    .mod_mul(&n_pows[(k - 1) as usize], n_j)
                    .mod_mul(&k_fact_inv, n_j);
                t1 = t1.mod_sub(&term, n_j);
            }
            i = t1;
        }
        i
    }
}

impl PrivateKey {
    /// Decrypts a ciphertext to its plaintext in `[0, n^s)`.
    ///
    /// `c^d = (1+n)^(m·d) · r^(n^s·d) = (1+n)^m mod n^(s+1)` because
    /// `d ≡ 1 (mod n^s)` kills the exponent on the `(1+n)` component and
    /// `d ≡ 0 (mod λ)` kills the random component entirely.
    ///
    /// The exponentiation runs through the CRT fast path (two half-width
    /// chains mod `p^(s+1)` and `q^(s+1)` with group-order-reduced
    /// exponents, Garner recombination) whenever the key carries its CRT
    /// context — always, for locally generated keys. [`Self::decrypt_slow`]
    /// keeps the pre-CRT full-width path as the differential oracle.
    pub fn decrypt(&self, c: &Ciphertext) -> BigUint {
        let pk = self.public();
        let b = self.pow_d(&c.0);
        pk.dlog_one_plus_n(&b)
    }

    /// Decrypts through the generic full-width `pow_mod`, ignoring any CRT
    /// context — the differential oracle for the CRT fast path (and the
    /// path a key without factorization knowledge would take).
    pub fn decrypt_slow(&self, c: &Ciphertext) -> BigUint {
        let pk = self.public();
        let b = pk.mont().pow_mod(&c.0, &self.d);
        pk.dlog_one_plus_n(&b)
    }
}

#[cfg(test)]
mod tests {
    use crate::{KeyGenOptions, KeyPair};
    use cs_bigint::rng::random_below;
    use cs_bigint::BigUint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_keypair(seed: u64, s: u32) -> KeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        KeyPair::generate(&KeyGenOptions::insecure_test_size_s(s), &mut rng)
    }

    #[test]
    fn roundtrip_small_values_s1() {
        let kp = test_keypair(10, 1);
        let mut rng = StdRng::seed_from_u64(11);
        for v in [0u64, 1, 2, 42, 1_000_000, u64::MAX] {
            let m = BigUint::from(v);
            let c = kp.public().encrypt(&m, &mut rng);
            assert_eq!(kp.private().decrypt(&c), m, "value {v}");
        }
    }

    #[test]
    fn roundtrip_random_values_s1() {
        let kp = test_keypair(12, 1);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let m = random_below(&mut rng, kp.public().n_s());
            let c = kp.public().encrypt(&m, &mut rng);
            assert_eq!(kp.private().decrypt(&c), m);
        }
    }

    #[test]
    fn roundtrip_s2_and_s3() {
        for s in [2u32, 3] {
            let kp = test_keypair(14 + s as u64, s);
            let mut rng = StdRng::seed_from_u64(20 + s as u64);
            for _ in 0..10 {
                let m = random_below(&mut rng, kp.public().n_s());
                let c = kp.public().encrypt(&m, &mut rng);
                assert_eq!(kp.private().decrypt(&c), m, "degree {s}");
            }
        }
    }

    #[test]
    fn plaintext_larger_than_n_works_for_s2() {
        // The whole point of s >= 2: messages exceeding n.
        let kp = test_keypair(30, 2);
        let mut rng = StdRng::seed_from_u64(31);
        let m = kp.public().n().add_u64(12345); // > n, < n²
        let c = kp.public().encrypt(&m, &mut rng);
        assert_eq!(kp.private().decrypt(&c), m);
    }

    #[test]
    fn encryption_is_probabilistic() {
        let kp = test_keypair(40, 1);
        let mut rng = StdRng::seed_from_u64(41);
        let m = BigUint::from(7u64);
        let c1 = kp.public().encrypt(&m, &mut rng);
        let c2 = kp.public().encrypt(&m, &mut rng);
        assert_ne!(c1, c2, "fresh randomness must differ");
        assert_eq!(kp.private().decrypt(&c1), kp.private().decrypt(&c2));
    }

    #[test]
    fn one_plus_n_pow_matches_modpow() {
        let kp = test_keypair(50, 2);
        let pk = kp.public();
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..5 {
            let m = random_below(&mut rng, pk.n_s());
            let fast = pk.one_plus_n_pow(&m);
            let slow = pk.n().add_u64(1).mod_pow(&m, pk.n_s1());
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn dlog_inverts_one_plus_n_pow() {
        let kp = test_keypair(60, 3);
        let pk = kp.public();
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..5 {
            let m = random_below(&mut rng, pk.n_s());
            let b = pk.one_plus_n_pow(&m);
            assert_eq!(pk.dlog_one_plus_n(&b), m);
        }
    }

    #[test]
    fn crt_decrypt_matches_slow_path() {
        for s in [1u32, 2, 3] {
            let kp = test_keypair(80 + s as u64, s);
            assert!(kp.private().has_crt(), "generated keys carry CRT");
            let no_crt = kp.private().without_crt();
            assert!(!no_crt.has_crt());
            let mut rng = StdRng::seed_from_u64(90 + s as u64);
            for _ in 0..8 {
                let m = random_below(&mut rng, kp.public().n_s());
                let c = kp.public().encrypt(&m, &mut rng);
                assert_eq!(kp.private().decrypt(&c), m, "CRT path, s={s}");
                assert_eq!(kp.private().decrypt_slow(&c), m, "slow path, s={s}");
                assert_eq!(no_crt.decrypt(&c), m, "stripped key, s={s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "plaintext out of range")]
    fn oversized_plaintext_panics() {
        let kp = test_keypair(70, 1);
        let mut rng = StdRng::seed_from_u64(71);
        let _ = kp.public().encrypt(kp.public().n_s(), &mut rng);
    }
}
