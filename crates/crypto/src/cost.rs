//! Measured per-operation crypto costs.
//!
//! The ICDE demo disables homomorphic operations during large simulations and
//! reports costs "based on actual average measures performed beforehand".
//! [`CryptoCostProfile::measure`] is that calibration pass: it times every
//! operation the protocol issues at the requested key size, so the simulator
//! can account realistic crypto cost without paying it on every simulated
//! message.

use crate::{KeyGenOptions, ThresholdKeyPair, ThresholdParams};
use cs_bigint::rng::random_below;
use cs_bigint::BigUint;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Average wall-clock cost of each Damgård-Jurik operation, in microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CryptoCostProfile {
    /// Modulus size the profile was measured at.
    pub key_bits: usize,
    /// Damgård-Jurik degree.
    pub s: u32,
    /// Threshold used for the combine measurement.
    pub threshold: usize,
    /// Encryption of one plaintext.
    pub encrypt_us: f64,
    /// Homomorphic addition of two ciphertexts.
    pub add_us: f64,
    /// Scalar multiplication by a small power of two (push-sum rescale).
    pub scalar_pow2_us: f64,
    /// Re-randomization of one ciphertext.
    pub rerandomize_us: f64,
    /// One partial decryption.
    pub partial_decrypt_us: f64,
    /// Combination of `threshold` partial decryptions.
    pub combine_us: f64,
    /// Size of one serialized ciphertext in bytes.
    pub ciphertext_bytes: usize,
}

impl CryptoCostProfile {
    /// Measures a profile by running `reps` of each operation at the given
    /// parameters. Key generation time is excluded (one-time setup).
    pub fn measure<R: Rng + ?Sized>(
        opts: &KeyGenOptions,
        threshold: ThresholdParams,
        reps: usize,
        rng: &mut R,
    ) -> CryptoCostProfile {
        assert!(reps >= 1);
        let tkp =
            ThresholdKeyPair::generate(opts, threshold, rng).expect("valid threshold parameters");
        let pk = tkp.public();

        let plaintexts: Vec<BigUint> = (0..reps).map(|_| random_below(rng, pk.n_s())).collect();

        let t0 = Instant::now();
        let cts: Vec<_> = plaintexts.iter().map(|m| pk.encrypt(m, rng)).collect();
        let encrypt_us = per_op_us(t0, reps);

        let t0 = Instant::now();
        for w in cts.windows(2) {
            let _ = pk.add(&w[0], &w[1]);
        }
        let add_us = per_op_us(t0, reps.saturating_sub(1).max(1));

        let t0 = Instant::now();
        for c in &cts {
            let _ = pk.scalar_mul_pow2(c, 16);
        }
        let scalar_pow2_us = per_op_us(t0, reps);

        let t0 = Instant::now();
        for c in &cts {
            let _ = pk.rerandomize(c, rng);
        }
        let rerandomize_us = per_op_us(t0, reps);

        let share = &tkp.shares()[0];
        let t0 = Instant::now();
        for c in &cts {
            let _ = share.partial_decrypt(c);
        }
        let partial_decrypt_us = per_op_us(t0, reps);

        let c = &cts[0];
        let partials: Vec<_> = tkp.shares()[..threshold.threshold]
            .iter()
            .map(|sh| sh.partial_decrypt(c))
            .collect();
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = tkp.combine(&partials).expect("combine");
        }
        let combine_us = per_op_us(t0, reps);

        CryptoCostProfile {
            key_bits: opts.modulus_bits,
            s: opts.s,
            threshold: threshold.threshold,
            encrypt_us,
            add_us,
            scalar_pow2_us,
            rerandomize_us,
            partial_decrypt_us,
            combine_us,
            ciphertext_bytes: pk.ciphertext_bytes(),
        }
    }

    /// A zero-cost profile (used when crypto accounting is disabled).
    pub fn zero() -> CryptoCostProfile {
        CryptoCostProfile {
            key_bits: 0,
            s: 1,
            threshold: 0,
            encrypt_us: 0.0,
            add_us: 0.0,
            scalar_pow2_us: 0.0,
            rerandomize_us: 0.0,
            partial_decrypt_us: 0.0,
            combine_us: 0.0,
            ciphertext_bytes: 0,
        }
    }

    /// A static profile with plausible 2048-bit laptop numbers, for when
    /// measuring is too slow (documentation examples, smoke tests). Derived
    /// from a one-off `measure` run on commodity hardware; real experiments
    /// should call [`CryptoCostProfile::measure`].
    pub fn nominal_2048() -> CryptoCostProfile {
        CryptoCostProfile {
            key_bits: 2048,
            s: 1,
            threshold: 5,
            encrypt_us: 9_000.0,
            add_us: 14.0,
            scalar_pow2_us: 260.0,
            rerandomize_us: 8_800.0,
            partial_decrypt_us: 31_000.0,
            combine_us: 160_000.0,
            ciphertext_bytes: 512,
        }
    }
}

fn per_op_us(start: Instant, ops: usize) -> f64 {
    start.elapsed().as_secs_f64() * 1e6 / ops as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measured_profile_is_positive_and_ordered() {
        let mut rng = StdRng::seed_from_u64(300);
        let profile = CryptoCostProfile::measure(
            &KeyGenOptions::insecure_test_size(),
            ThresholdParams {
                threshold: 2,
                parties: 3,
            },
            3,
            &mut rng,
        );
        assert!(profile.encrypt_us > 0.0);
        assert!(profile.add_us > 0.0);
        assert!(
            profile.add_us < profile.encrypt_us,
            "one modular multiplication must beat a full encryption"
        );
        assert!(profile.ciphertext_bytes >= 64, "256-bit n ⇒ 512-bit n²");
    }

    #[test]
    fn profile_serde_roundtrip() {
        let p = CryptoCostProfile::nominal_2048();
        let json = serde_json::to_string(&p).unwrap();
        let back: CryptoCostProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
