//! Fixed-point encoding of real values into the plaintext space `Z_{n^s}`.
//!
//! Time-series points are reals; Damgård-Jurik plaintexts are residues. The
//! codec maps `v ↦ round(v·2^f)` and wraps negatives as `n^s − |x|`, so
//! homomorphic sums of encodings decode to sums of values as long as the
//! aggregate magnitude stays below `n^s / 2` — comfortably true for any
//! realistic population (see DESIGN.md §3.6).

use crate::CryptoError;
use cs_bigint::BigUint;
use serde::{Deserialize, Serialize};

/// Fixed-point codec with `2^scale_bits` resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedPointCodec {
    scale_bits: u32,
}

impl Default for FixedPointCodec {
    /// 2⁻²⁰ ≈ 1e-6 resolution — ample for normalized consumption/medical
    /// series.
    fn default() -> Self {
        FixedPointCodec { scale_bits: 20 }
    }
}

impl FixedPointCodec {
    /// Creates a codec with the given fractional resolution.
    ///
    /// Panics if `scale_bits > 100` (values would not round-trip through
    /// `f64` scaling).
    pub fn new(scale_bits: u32) -> Self {
        assert!(scale_bits <= 100, "scale too fine for f64 round-trips");
        FixedPointCodec { scale_bits }
    }

    /// The fractional resolution in bits.
    pub fn scale_bits(&self) -> u32 {
        self.scale_bits
    }

    /// The scale factor `2^scale_bits` as `f64`.
    pub fn scale(&self) -> f64 {
        (self.scale_bits as f64).exp2()
    }

    /// Encodes a real value; errors on non-finite input or magnitude
    /// overflowing `n^s / 2`.
    pub fn encode(&self, v: f64, n_s: &BigUint) -> Result<BigUint, CryptoError> {
        if !v.is_finite() {
            return Err(CryptoError::EncodingOverflow);
        }
        let scaled = (v * self.scale()).round();
        if scaled.abs() >= 2f64.powi(126) {
            return Err(CryptoError::EncodingOverflow);
        }
        self.encode_integer(scaled as i128, n_s)
    }

    /// Encodes a pre-scaled integer (already in `2^scale_bits` units).
    pub fn encode_integer(&self, x: i128, n_s: &BigUint) -> Result<BigUint, CryptoError> {
        let mag = BigUint::from(x.unsigned_abs());
        if mag >= n_s.half() {
            return Err(CryptoError::EncodingOverflow);
        }
        if x >= 0 {
            Ok(mag)
        } else {
            Ok(n_s - &mag)
        }
    }

    /// Decodes a residue back to a real value. `extra_pow2` divides by an
    /// additional `2^extra_pow2` — the push-sum denominator (0 for plain
    /// decodes).
    pub fn decode(&self, m: &BigUint, n_s: &BigUint, extra_pow2: u32) -> f64 {
        let (mag, neg) = if *m > n_s.half() {
            (n_s - m, true)
        } else {
            (m.clone(), false)
        };
        let v = mag.to_f64_lossy() / self.scale() / (extra_pow2 as f64).exp2();
        if neg {
            -v
        } else {
            v
        }
    }

    /// Decodes to the signed integer grid (exact when it fits in `i128`).
    pub fn decode_integer(&self, m: &BigUint, n_s: &BigUint) -> Option<i128> {
        if *m > n_s.half() {
            let mag = n_s - m;
            mag.to_u128()
                .filter(|&u| u <= i128::MAX as u128)
                .map(|u| -(u as i128))
        } else {
            m.to_u128()
                .filter(|&u| u <= i128::MAX as u128)
                .map(|u| u as i128)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modulus() -> BigUint {
        // Any large odd modulus works for the codec.
        BigUint::parse_decimal("170141183460469231731687303715884105727").unwrap()
    }

    #[test]
    fn roundtrip_positive_and_negative() {
        let codec = FixedPointCodec::new(20);
        let n_s = modulus();
        for v in [0.0f64, 1.0, -1.0, 3.25159, -2.61828, 1e6, -1e6, 0.0000012] {
            let enc = codec.encode(v, &n_s).unwrap();
            let dec = codec.decode(&enc, &n_s, 0);
            assert!(
                (dec - v).abs() < 2.0 / codec.scale(),
                "value {v}: got {dec}"
            );
        }
    }

    #[test]
    fn sum_of_encodings_decodes_to_sum() {
        let codec = FixedPointCodec::new(20);
        let n_s = modulus();
        let a = codec.encode(1.5, &n_s).unwrap();
        let b = codec.encode(-2.25, &n_s).unwrap();
        let sum = a.mod_add(&b, &n_s);
        let dec = codec.decode(&sum, &n_s, 0);
        assert!((dec - (-0.75)).abs() < 2.0 / codec.scale());
    }

    #[test]
    fn extra_pow2_divides() {
        let codec = FixedPointCodec::new(10);
        let n_s = modulus();
        let enc = codec.encode(8.0, &n_s).unwrap();
        assert!((codec.decode(&enc, &n_s, 3) - 1.0).abs() < 1e-2);
    }

    #[test]
    fn integer_roundtrip_exact() {
        let codec = FixedPointCodec::new(0);
        let n_s = modulus();
        for x in [0i128, 1, -1, 123456789, -987654321] {
            let enc = codec.encode_integer(x, &n_s).unwrap();
            assert_eq!(codec.decode_integer(&enc, &n_s), Some(x));
        }
    }

    #[test]
    fn non_finite_rejected() {
        let codec = FixedPointCodec::default();
        let n_s = modulus();
        assert!(codec.encode(f64::NAN, &n_s).is_err());
        assert!(codec.encode(f64::INFINITY, &n_s).is_err());
    }

    #[test]
    fn overflow_rejected() {
        let codec = FixedPointCodec::new(0);
        let tiny = BigUint::from(100u64);
        assert!(codec.encode_integer(50, &tiny).is_err());
        assert!(codec.encode_integer(49, &tiny).is_ok());
        assert!(codec.encode_integer(-49, &tiny).is_ok());
    }
}
