//! Ciphertext packing: many fixed-point buckets in one Damgård-Jurik
//! plaintext.
//!
//! The plaintext space `Z_{n^s}` is thousands of bits wide, yet the
//! protocol's per-bucket payloads (one histogram/centroid coordinate each)
//! need only a few dozen bits — encrypting one bucket per ciphertext wastes
//! almost the entire space and pays one full exponentiation per bucket.
//! [`PackedCodec`] lays out `B` buckets in disjoint *lanes* of the
//! plaintext, so a single ciphertext carries a whole contribution vector
//! and every homomorphic addition sums all lanes at once.
//!
//! ## Lane layout
//!
//! ```text
//! plaintext = Σ_j  lane_j · 2^(j·lane_bits),     lane_bits = value + headroom
//!
//!   msb ──────────────────────────────────────────────────── lsb
//!   │ lane_{L-1} │ … │   lane_1   │           lane_0          │
//!   │            │   │            │ headroom bits │ value bits│
//! ```
//!
//! Each lane stores a **biased** value, `x + bias` with
//! `bias = 2^(value_bits-1)`, so lanes are always non-negative and a
//! negative bucket can never borrow from its neighbour. Under the
//! homomorphic operations the protocol uses — lane-wise addition and
//! multiplication by powers of two (the push-sum denominator alignment) —
//! the bias mass travels *exactly* with the push-sum weight: an aggregate
//! lane holds `Σ_i c_i·(x_i + bias)` where the integer coefficients satisfy
//! `Σ_i c_i = weight · 2^denom_exp`, both of which are cleartext protocol
//! metadata. Unpacking therefore subtracts `weight · 2^denom_exp · bias`
//! and rescales — no secret bookkeeping.
//!
//! ## Headroom arithmetic
//!
//! A lane must absorb the largest possible aggregate without carrying into
//! its neighbour. With population `≤ P`, denominator exponents `≤ K`, and
//! at most `bias_count ≤ 2` biased vectors folded together (data + noise in
//! protocol step 2c):
//!
//! ```text
//! lane_sum < bias_count · P · 2^K · 2^value_bits ≤ 2^(1 + ⌈log₂(P+1)⌉ + K + value_bits)
//! ```
//!
//! so `headroom_bits = ⌈log₂(P+1)⌉ + K + 1` suffices, and
//! [`PackedCodec::plan`] sizes lanes that way. Saturation is never silent:
//! packing a value that does not fit returns [`CryptoError::LaneOverflow`],
//! and unpacking an aggregate whose carry multiplier exceeds the planned
//! headroom returns [`CryptoError::LaneHeadroomExceeded`].

use crate::{CryptoError, FixedPointCodec};
use cs_bigint::BigUint;
use serde::{Deserialize, Serialize};

/// Packs fixed-point buckets into disjoint lanes of `Z_{n^s}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedCodec {
    fp: FixedPointCodec,
    value_bits: u32,
    headroom_bits: u32,
    lanes: usize,
}

/// Number of bits needed to represent `v` (0 for 0).
fn bits_for(v: u128) -> u32 {
    128 - v.leading_zeros()
}

impl PackedCodec {
    /// Plans a lane layout for the given protocol envelope.
    ///
    /// * `fp` — the per-bucket fixed-point resolution;
    /// * `max_abs_value` — public bound on any single bucket's magnitude;
    /// * `max_population` — upper bound on the aggregating population `P`;
    /// * `max_denom_exp` — upper bound on the push-sum denominator
    ///   exponent `K` (≥ the per-participant exchange budget);
    /// * `n_s` — the plaintext modulus the lanes must fit below.
    ///
    /// Errors with [`CryptoError::InvalidParameters`] when even a single
    /// lane does not fit `n_s` (packing should then stay disabled).
    pub fn plan(
        fp: FixedPointCodec,
        max_abs_value: f64,
        max_population: usize,
        max_denom_exp: u32,
        n_s: &BigUint,
    ) -> Result<PackedCodec, CryptoError> {
        if !(max_abs_value.is_finite() && max_abs_value >= 0.0) {
            return Err(CryptoError::InvalidParameters(
                "packed value bound must be finite and non-negative",
            ));
        }
        let max_fixed = (max_abs_value * fp.scale()).ceil();
        if max_fixed >= 2f64.powi(100) {
            return Err(CryptoError::InvalidParameters(
                "packed value bound too large for lane arithmetic",
            ));
        }
        // bias = 2^(value_bits-1) must strictly exceed the largest encoded
        // magnitude (+1 rounding slack).
        let value_bits = bits_for(max_fixed as u128 + 1) + 2;
        let headroom_bits = bits_for(max_population as u128 + 1) + max_denom_exp + 1;
        let lane_bits = (value_bits + headroom_bits) as usize;
        if value_bits + headroom_bits > 126 {
            return Err(CryptoError::InvalidParameters(
                "packed lane exceeds 126 bits; shrink the envelope",
            ));
        }
        // Lanes must sit strictly below n^s; reserving the top bit keeps
        // every packable plaintext < n^s by construction.
        let lanes = n_s.bit_len().saturating_sub(1) / lane_bits;
        if lanes == 0 {
            return Err(CryptoError::InvalidParameters(
                "plaintext space too small for one packed lane",
            ));
        }
        Ok(PackedCodec {
            fp,
            value_bits,
            headroom_bits,
            lanes,
        })
    }

    /// Builds a codec from explicit lane parameters (tests and tooling; use
    /// [`PackedCodec::plan`] for protocol envelopes).
    pub fn from_parts(
        fp: FixedPointCodec,
        value_bits: u32,
        headroom_bits: u32,
        lanes: usize,
    ) -> Result<PackedCodec, CryptoError> {
        if value_bits < 2 || value_bits + headroom_bits > 126 || lanes == 0 {
            return Err(CryptoError::InvalidParameters(
                "packed lane parameters out of range",
            ));
        }
        Ok(PackedCodec {
            fp,
            value_bits,
            headroom_bits,
            lanes,
        })
    }

    /// Buckets per ciphertext.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Width of one lane in bits (value + headroom).
    pub fn lane_bits(&self) -> u32 {
        self.value_bits + self.headroom_bits
    }

    /// Bits reserved for the biased value in each lane.
    pub fn value_bits(&self) -> u32 {
        self.value_bits
    }

    /// Bits reserved for aggregation carries in each lane.
    pub fn headroom_bits(&self) -> u32 {
        self.headroom_bits
    }

    /// The per-bucket fixed-point codec.
    pub fn fixed_point(&self) -> &FixedPointCodec {
        &self.fp
    }

    /// The lane bias `2^(value_bits-1)` added to every packed value.
    pub fn bias(&self) -> i128 {
        1i128 << (self.value_bits - 1)
    }

    /// Largest encoded magnitude a lane accepts (`bias − 1` on the
    /// fixed-point grid).
    pub fn value_capacity(&self) -> i128 {
        self.bias() - 1
    }

    /// Ciphertexts needed to carry `slots` buckets.
    pub fn ciphertexts_for(&self, slots: usize) -> usize {
        slots.div_ceil(self.lanes)
    }

    /// Packs a bucket vector into plaintexts, `lanes()` buckets each (the
    /// last one padded with biased zeros). Bucket `i` lands in lane
    /// `i % lanes()` of plaintext `i / lanes()`.
    ///
    /// Errors with [`CryptoError::LaneOverflow`] when a value exceeds the
    /// lane's biased range.
    pub fn pack(&self, values: &[f64]) -> Result<Vec<BigUint>, CryptoError> {
        let lane_bits = self.lane_bits() as usize;
        let mut out = Vec::with_capacity(self.ciphertexts_for(values.len()));
        for (chunk_idx, chunk) in values.chunks(self.lanes).enumerate() {
            let mut pt = BigUint::zero();
            for (lane, &v) in chunk.iter().enumerate() {
                let slot = chunk_idx * self.lanes + lane;
                let biased = self.biased_lane_value(v, slot)?;
                pt = &pt + &(BigUint::from(biased) << (lane * lane_bits));
            }
            // Padding lanes in the trailing plaintext still carry the bias
            // (every lane of every contribution must, so the bias mass stays
            // proportional to the push-sum weight).
            for lane in chunk.len()..self.lanes {
                pt = &pt + &(BigUint::from(self.bias() as u128) << (lane * lane_bits));
            }
            out.push(pt);
        }
        Ok(out)
    }

    /// Encodes one bucket as its biased lane value.
    fn biased_lane_value(&self, v: f64, slot: usize) -> Result<u128, CryptoError> {
        if !v.is_finite() {
            return Err(CryptoError::EncodingOverflow);
        }
        let scaled = (v * self.fp.scale()).round();
        if scaled.abs() >= 2f64.powi(100) {
            return Err(CryptoError::LaneOverflow { slot });
        }
        let fixed = scaled as i128;
        let biased = fixed + self.bias();
        if biased < 0 || biased >= (1i128 << self.value_bits) {
            return Err(CryptoError::LaneOverflow { slot });
        }
        Ok(biased as u128)
    }

    /// The integer carry multiplier `weight · 2^denom_exp = Σ_i c_i` of an
    /// aggregate, or an error when it is not usable.
    fn carry_multiplier(&self, denom_exp: u32, weight: f64) -> Result<u128, CryptoError> {
        let mult_f = weight * (denom_exp as f64).exp2();
        if !(mult_f.is_finite() && mult_f >= 0.5) {
            return Err(CryptoError::InvalidParameters(
                "aggregate weight too small to unbias packed lanes",
            ));
        }
        // A multiplier near u128::MAX (hostile/corrupt denominator — the
        // wire carries it as a raw u32) would saturate the cast and
        // overflow the headroom comparison; any such value is far beyond
        // every plannable headroom, so refuse with the saturation error.
        if mult_f >= 2f64.powi(126) {
            return Err(CryptoError::LaneHeadroomExceeded);
        }
        Ok(mult_f.round() as u128)
    }

    /// Recovers the exact per-bucket aggregate integers
    /// `Σ_i c_i · x_i` (on the fixed-point grid) from decrypted aggregate
    /// plaintexts.
    ///
    /// * `slots` — number of real buckets (trailing padding lanes are
    ///   dropped);
    /// * `denom_exp`, `weight` — the aggregate's push-sum metadata;
    /// * `bias_count` — how many biased vectors were folded into each lane
    ///   (1 for a plain aggregate, 2 after the data+noise combination).
    ///
    /// Errors with [`CryptoError::LaneHeadroomExceeded`] when the carry
    /// multiplier exceeds the planned headroom — lane sums could have
    /// wrapped, so nothing is returned rather than silently-wrong values.
    pub fn unpack_integers(
        &self,
        plaintexts: &[BigUint],
        slots: usize,
        denom_exp: u32,
        weight: f64,
        bias_count: u32,
    ) -> Result<Vec<i128>, CryptoError> {
        if plaintexts.len() != self.ciphertexts_for(slots) {
            return Err(CryptoError::InvalidParameters(
                "packed plaintext count does not match the bucket count",
            ));
        }
        let mult = self.carry_multiplier(denom_exp, weight)?;
        if bias_count as u128 * mult > 1u128 << self.headroom_bits {
            return Err(CryptoError::LaneHeadroomExceeded);
        }
        let lane_bits = self.lane_bits() as usize;
        let lane_modulus = BigUint::one() << lane_bits;
        let bias_mass = mult as i128 * bias_count as i128 * self.bias();
        let mut out = Vec::with_capacity(slots);
        for slot in 0..slots {
            let pt = &plaintexts[slot / self.lanes];
            let lane = slot % self.lanes;
            let raw = &(pt >> (lane * lane_bits)) % &lane_modulus;
            let raw = raw.to_u128().expect("lane fits 126 bits by construction") as i128;
            out.push(raw - bias_mass);
        }
        Ok(out)
    }

    /// Decodes an aggregate to per-bucket estimates, already normalized by
    /// the push-sum `weight` (the bias removal needs it anyway):
    /// `estimate_j = (lane_j − bias·weight·2^denom_exp·bias_count) /
    /// (scale · weight · 2^denom_exp)`.
    pub fn unpack_aggregate(
        &self,
        plaintexts: &[BigUint],
        slots: usize,
        denom_exp: u32,
        weight: f64,
        bias_count: u32,
    ) -> Result<Vec<f64>, CryptoError> {
        let ints = self.unpack_integers(plaintexts, slots, denom_exp, weight, bias_count)?;
        let mult = self.carry_multiplier(denom_exp, weight)? as f64;
        let denom = self.fp.scale() * mult;
        Ok(ints.into_iter().map(|i| i as f64 / denom).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modulus_256() -> BigUint {
        // 2^255 + 95: odd, 256 bits — shaped like a test-size n^s.
        (BigUint::one() << 255) + &BigUint::from(95u64)
    }

    fn codec() -> PackedCodec {
        PackedCodec::plan(FixedPointCodec::new(12), 16.0, 64, 10, &modulus_256()).unwrap()
    }

    #[test]
    fn plan_sizes_lanes_from_the_envelope() {
        let c = codec();
        // |x| ≤ 16 on a 2^12 grid → 17 bits + bias + slack.
        assert!(c.value_bits() >= 18, "value bits {}", c.value_bits());
        // population 64, denom ≤ 10, data+noise fold.
        assert!(c.headroom_bits() >= 18, "headroom {}", c.headroom_bits());
        assert!(c.lanes() >= 4, "lanes {}", c.lanes());
        assert!(c.lanes() * c.lane_bits() as usize <= 255);
    }

    #[test]
    fn pack_unpack_roundtrip_identity_aggregate() {
        let c = codec();
        let values = [1.5, -2.25, 0.0, 15.9, -15.9, 3.625, 0.5];
        let pts = c.pack(&values).unwrap();
        assert_eq!(pts.len(), c.ciphertexts_for(values.len()));
        // A single contribution is an aggregate with weight 1, denom 0.
        let back = c.unpack_aggregate(&pts, values.len(), 0, 1.0, 1).unwrap();
        for (v, b) in values.iter().zip(&back) {
            assert!((v - b).abs() < 2.0 / c.fixed_point().scale(), "{v} vs {b}");
        }
    }

    #[test]
    fn lane_addition_matches_scalar_addition() {
        let c = codec();
        let a = [1.0, -3.5, 7.25, -0.125];
        let b = [2.5, 3.5, -7.25, 10.0];
        let pa = c.pack(&a).unwrap();
        let pb = c.pack(&b).unwrap();
        let sum: Vec<BigUint> = pa.iter().zip(&pb).map(|(x, y)| x + y).collect();
        // Two weight-1 vectors added: weight 2, denom 0.
        let back = c.unpack_aggregate(&sum, a.len(), 0, 2.0, 1).unwrap();
        for i in 0..a.len() {
            let want = (a[i] + b[i]) / 2.0;
            assert!((back[i] - want).abs() < 2.0 / c.fixed_point().scale());
        }
    }

    #[test]
    fn pow2_scaling_matches_denominator_alignment() {
        let c = codec();
        let a = [4.0, -1.0];
        let pa = c.pack(&a).unwrap();
        // Multiply the plaintext by 2^3 — denominator exponent 3, weight 1.
        let scaled: Vec<BigUint> = pa.iter().map(|p| p << 3usize).collect();
        let back = c.unpack_aggregate(&scaled, a.len(), 3, 1.0, 1).unwrap();
        for (v, b) in a.iter().zip(&back) {
            assert!((v - b).abs() < 2.0 / c.fixed_point().scale());
        }
    }

    #[test]
    fn value_overflow_is_typed() {
        let c = codec();
        let err = c.pack(&[1e9]).unwrap_err();
        assert!(matches!(err, CryptoError::LaneOverflow { slot: 0 }));
        let err = c.pack(&[0.0, -1e9]).unwrap_err();
        assert!(matches!(err, CryptoError::LaneOverflow { slot: 1 }));
        assert!(matches!(
            c.pack(&[f64::NAN]).unwrap_err(),
            CryptoError::EncodingOverflow
        ));
    }

    #[test]
    fn headroom_saturation_is_typed() {
        let c = codec();
        let pts = c.pack(&[1.0]).unwrap();
        // Carry multiplier far beyond the planned population × 2^denom.
        let budget = 1u32 << 20;
        let err = c
            .unpack_aggregate(&pts, 1, budget.trailing_zeros() + 20, 1e6, 2)
            .unwrap_err();
        assert_eq!(err, CryptoError::LaneHeadroomExceeded);
    }

    #[test]
    fn hostile_denominator_is_typed_not_a_panic() {
        // A corrupt wire frame can claim any u32 denominator exponent; the
        // carry multiplier must refuse values beyond every plannable
        // headroom instead of saturating the u128 cast and overflowing.
        let c = codec();
        let pts = c.pack(&[1.0]).unwrap();
        for denom in [130u32, 500, 1023, u32::MAX] {
            let err = c.unpack_integers(&pts, 1, denom, 1.0, 2).unwrap_err();
            assert!(
                matches!(
                    err,
                    CryptoError::LaneHeadroomExceeded | CryptoError::InvalidParameters(_)
                ),
                "denom {denom}: {err:?}"
            );
        }
    }

    #[test]
    fn plan_rejects_impossible_envelopes() {
        let tiny = BigUint::from(1_000_003u64);
        assert!(matches!(
            PackedCodec::plan(FixedPointCodec::new(20), 10.0, 1000, 30, &tiny),
            Err(CryptoError::InvalidParameters(_))
        ));
    }

    #[test]
    fn padding_lanes_carry_bias() {
        let c = codec();
        // One bucket → the remaining lanes are biased zeros; unpacking a
        // full plaintext's worth of lanes must decode those to 0.
        let pts = c.pack(&[2.0]).unwrap();
        let all = c
            .unpack_aggregate(&pts, 1.min(c.lanes()), 0, 1.0, 1)
            .unwrap();
        assert!((all[0] - 2.0).abs() < 1e-3);
        let ints = c.unpack_integers(&pts, 1, 0, 1.0, 1).unwrap();
        assert_eq!(ints.len(), 1);
    }
}
