//! Error type for cryptographic operations.

use std::fmt;

/// Errors surfaced by the Damgård-Jurik implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A plaintext was not in `[0, n^s)`.
    PlaintextOutOfRange,
    /// A value expected to be a unit mod `n^(s+1)` shares a factor with `n`.
    NotAUnit,
    /// Threshold combination received fewer shares than the threshold.
    NotEnoughShares {
        /// Shares provided.
        got: usize,
        /// Threshold required.
        need: usize,
    },
    /// Threshold combination received two shares with the same index.
    DuplicateShareIndex(u64),
    /// A share index was outside `1..=parties`.
    ShareIndexOutOfRange(u64),
    /// Partial decryptions refer to different ciphertexts or keys.
    MismatchedShares,
    /// Fixed-point encoding overflow: the value cannot be represented.
    EncodingOverflow,
    /// A packed value does not fit its lane (pack-time saturation).
    LaneOverflow {
        /// Index of the offending bucket in the packed vector.
        slot: usize,
    },
    /// The aggregate carry multiplier exceeds the packed lanes' headroom:
    /// lane sums could have wrapped into their neighbours, so the unpacked
    /// values cannot be trusted.
    LaneHeadroomExceeded,
    /// Key generation parameters are invalid (e.g. threshold > parties).
    InvalidParameters(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::PlaintextOutOfRange => write!(f, "plaintext out of range [0, n^s)"),
            CryptoError::NotAUnit => write!(f, "value is not a unit modulo n^(s+1)"),
            CryptoError::NotEnoughShares { got, need } => {
                write!(f, "not enough decryption shares: got {got}, need {need}")
            }
            CryptoError::DuplicateShareIndex(i) => write!(f, "duplicate share index {i}"),
            CryptoError::ShareIndexOutOfRange(i) => write!(f, "share index {i} out of range"),
            CryptoError::MismatchedShares => write!(f, "partial decryptions do not match"),
            CryptoError::EncodingOverflow => write!(f, "fixed-point encoding overflow"),
            CryptoError::LaneOverflow { slot } => {
                write!(f, "packed value at bucket {slot} overflows its lane")
            }
            CryptoError::LaneHeadroomExceeded => {
                write!(
                    f,
                    "aggregate carry multiplier exceeds the packed lane headroom"
                )
            }
            CryptoError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
        }
    }
}

impl std::error::Error for CryptoError {}
