//! Homomorphic operations on ciphertexts.
//!
//! Everything the Chiaroscuro computation step needs: addition of encrypted
//! means and noise shares, scalar multiplication (notably by powers of two
//! for the push-sum denominator alignment), negation, plaintext addition,
//! and re-randomization of forwarded ciphertexts.

use crate::{Ciphertext, PublicKey};
use cs_bigint::rng::random_unit;
use cs_bigint::BigUint;
use rand::Rng;

impl PublicKey {
    /// Homomorphic addition: `Dec(add(c1, c2)) = Dec(c1) + Dec(c2) mod n^s`.
    pub fn add(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        Ciphertext(self.mont().mul_mod(&c1.0, &c2.0))
    }

    /// Adds a plaintext constant: `Dec(add_plain(c, k)) = Dec(c) + k mod n^s`.
    ///
    /// Cheaper than `add(c, encrypt(k))` — no randomness, no `r^(n^s)`.
    pub fn add_plain(&self, c: &Ciphertext, k: &BigUint) -> Ciphertext {
        let g_k = self.one_plus_n_pow(&(k % self.n_s()));
        Ciphertext(self.mont().mul_mod(&c.0, &g_k))
    }

    /// Scalar multiplication: `Dec(scalar_mul(c, k)) = k·Dec(c) mod n^s`.
    pub fn scalar_mul(&self, c: &Ciphertext, k: &BigUint) -> Ciphertext {
        Ciphertext(self.mont().pow_mod(&c.0, k))
    }

    /// Multiplies the plaintext by `2^j` — the homomorphic push-sum's
    /// denominator alignment (`j` is small: at most the number of gossip
    /// cycles). `c^(2^j)` is `j` straight squarings, so this skips the
    /// generic path's window-table build entirely.
    pub fn scalar_mul_pow2(&self, c: &Ciphertext, j: u32) -> Ciphertext {
        if j == 0 {
            return c.clone();
        }
        Ciphertext(self.mont().pow_mod_pow2(&c.0, j))
    }

    /// Homomorphic negation: `Dec(neg(c)) = n^s - Dec(c) mod n^s`.
    ///
    /// Computed as the group inverse of the ciphertext, which exists because
    /// ciphertexts are units mod `n^(s+1)`.
    pub fn neg(&self, c: &Ciphertext) -> Ciphertext {
        Ciphertext(
            c.0.mod_inverse(self.n_s1())
                .expect("ciphertexts are units mod n^(s+1)"),
        )
    }

    /// Homomorphic subtraction: `Dec(sub(c1, c2)) = Dec(c1) - Dec(c2) mod n^s`.
    pub fn sub(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        self.add(c1, &self.neg(c2))
    }

    /// Re-randomizes a ciphertext: same plaintext, fresh randomness.
    ///
    /// Chiaroscuro participants re-randomize before forwarding so an
    /// eavesdropper cannot link a forwarded ciphertext to the exchange it
    /// came from.
    pub fn rerandomize<R: Rng + ?Sized>(&self, c: &Ciphertext, rng: &mut R) -> Ciphertext {
        let r = random_unit(rng, self.n());
        let blind = self.mont().pow_mod(&r, self.n_s());
        Ciphertext(self.mont().mul_mod(&c.0, &blind))
    }

    /// An encryption of zero with fixed randomness `r = 1`.
    ///
    /// The assignment step initializes every non-selected cluster's mean
    /// with "encryptions of zero-valued time-series"; using the trivial
    /// randomness keeps that free (the gossip layer re-randomizes on the
    /// first forward).
    pub fn trivial_zero(&self) -> Ciphertext {
        Ciphertext(BigUint::one())
    }

    /// A deterministic "trivial" encryption of `m` (randomness fixed to 1).
    /// Used for protocol-internal constants; never for private data.
    pub fn trivial_encrypt(&self, m: &BigUint) -> Ciphertext {
        assert!(m < self.n_s(), "plaintext out of range");
        Ciphertext(self.one_plus_n_pow(m))
    }
}

#[cfg(test)]
mod tests {
    use crate::{KeyGenOptions, KeyPair};
    use cs_bigint::rng::random_below;
    use cs_bigint::BigUint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&KeyGenOptions::insecure_test_size(), &mut rng);
        (kp, rng)
    }

    #[test]
    fn addition_homomorphism() {
        let (kp, mut rng) = setup(100);
        let (pk, sk) = (kp.public(), kp.private());
        for _ in 0..10 {
            let a = random_below(&mut rng, pk.n_s());
            let b = random_below(&mut rng, pk.n_s());
            let ca = pk.encrypt(&a, &mut rng);
            let cb = pk.encrypt(&b, &mut rng);
            let sum = pk.add(&ca, &cb);
            assert_eq!(sk.decrypt(&sum), a.mod_add(&b, pk.n_s()));
        }
    }

    #[test]
    fn add_plain_matches_add_encrypted() {
        let (kp, mut rng) = setup(101);
        let (pk, sk) = (kp.public(), kp.private());
        let a = BigUint::from(1000u64);
        let k = BigUint::from(234u64);
        let ca = pk.encrypt(&a, &mut rng);
        assert_eq!(sk.decrypt(&pk.add_plain(&ca, &k)), BigUint::from(1234u64));
    }

    #[test]
    fn scalar_multiplication() {
        let (kp, mut rng) = setup(102);
        let (pk, sk) = (kp.public(), kp.private());
        let a = BigUint::from(37u64);
        let ca = pk.encrypt(&a, &mut rng);
        let c3a = pk.scalar_mul(&ca, &BigUint::from(3u64));
        assert_eq!(sk.decrypt(&c3a), BigUint::from(111u64));
    }

    #[test]
    fn scalar_mul_pow2_matches_shift() {
        let (kp, mut rng) = setup(103);
        let (pk, sk) = (kp.public(), kp.private());
        let a = BigUint::from(5u64);
        let ca = pk.encrypt(&a, &mut rng);
        for j in [0u32, 1, 7, 20] {
            let c = pk.scalar_mul_pow2(&ca, j);
            assert_eq!(sk.decrypt(&c), BigUint::from(5u64) << j as usize, "j={j}");
        }
    }

    #[test]
    fn negation_and_subtraction() {
        let (kp, mut rng) = setup(104);
        let (pk, sk) = (kp.public(), kp.private());
        let a = BigUint::from(100u64);
        let b = BigUint::from(58u64);
        let ca = pk.encrypt(&a, &mut rng);
        let cb = pk.encrypt(&b, &mut rng);
        assert_eq!(sk.decrypt(&pk.sub(&ca, &cb)), BigUint::from(42u64));
        // a - b where b > a wraps mod n^s:
        let wrapped = sk.decrypt(&pk.sub(&cb, &ca));
        assert_eq!(wrapped, pk.n_s().sub_u64(42));
    }

    #[test]
    fn rerandomize_preserves_plaintext_changes_ciphertext() {
        let (kp, mut rng) = setup(105);
        let (pk, sk) = (kp.public(), kp.private());
        let a = BigUint::from(777u64);
        let c = pk.encrypt(&a, &mut rng);
        let c2 = pk.rerandomize(&c, &mut rng);
        assert_ne!(c, c2);
        assert_eq!(sk.decrypt(&c2), a);
    }

    #[test]
    fn trivial_zero_decrypts_to_zero_and_is_additive_identity() {
        let (kp, mut rng) = setup(106);
        let (pk, sk) = (kp.public(), kp.private());
        let z = pk.trivial_zero();
        assert!(sk.decrypt(&z).is_zero());
        let a = BigUint::from(9u64);
        let ca = pk.encrypt(&a, &mut rng);
        assert_eq!(sk.decrypt(&pk.add(&ca, &z)), a);
    }

    #[test]
    fn long_homomorphic_sum_chain() {
        // Sum 50 encrypted values — the shape of a gossip aggregation.
        let (kp, mut rng) = setup(107);
        let (pk, sk) = (kp.public(), kp.private());
        let mut acc = pk.trivial_zero();
        let mut expect = 0u64;
        for i in 1..=50u64 {
            let c = pk.encrypt(&BigUint::from(i), &mut rng);
            acc = pk.add(&acc, &c);
            expect += i;
        }
        assert_eq!(sk.decrypt(&acc), BigUint::from(expect));
    }
}
