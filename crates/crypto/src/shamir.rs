//! Shamir secret sharing over `Z_M` for an arbitrary (not necessarily prime)
//! modulus, as used by threshold Damgård-Jurik.
//!
//! Over a non-prime modulus, Lagrange interpolation at 0 cannot divide by
//! arbitrary denominators; the Damgård-Jurik construction sidesteps this with
//! the `Δ = l!` factor, which makes every Lagrange coefficient an integer
//! (computed here exactly with [`BigInt`]).

use cs_bigint::rng::random_below;
use cs_bigint::{BigInt, BigUint};
use rand::Rng;

/// A share `(index, f(index) mod M)` with a 1-based index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Share {
    /// 1-based evaluation point.
    pub index: u64,
    /// `f(index) mod M`.
    pub value: BigUint,
}

/// Splits `secret` into `parties` shares with reconstruction threshold
/// `threshold` (any `threshold` shares suffice; fewer reveal nothing beyond
/// the modulus).
///
/// The polynomial is `f(x) = secret + a_1 x + … + a_{t-1} x^{t-1} mod M`
/// with uniformly random coefficients.
///
/// Panics if `threshold == 0`, `threshold > parties`, or `M <= 1`.
pub fn split<R: Rng + ?Sized>(
    secret: &BigUint,
    threshold: usize,
    parties: usize,
    modulus: &BigUint,
    rng: &mut R,
) -> Vec<Share> {
    assert!(threshold >= 1, "threshold must be at least 1");
    assert!(threshold <= parties, "threshold cannot exceed parties");
    assert!(*modulus > 1u64, "modulus must exceed 1");
    let mut coeffs = Vec::with_capacity(threshold);
    coeffs.push(secret % modulus);
    for _ in 1..threshold {
        coeffs.push(random_below(rng, modulus));
    }
    (1..=parties as u64)
        .map(|i| Share {
            index: i,
            value: eval_poly(&coeffs, i, modulus),
        })
        .collect()
}

/// Horner evaluation of `f(x) mod M`.
fn eval_poly(coeffs: &[BigUint], x: u64, modulus: &BigUint) -> BigUint {
    let xb = BigUint::from(x);
    let mut acc = BigUint::zero();
    for c in coeffs.iter().rev() {
        acc = acc.mod_mul(&xb, modulus).mod_add(c, modulus);
    }
    acc
}

/// `Δ = l!` as a big integer.
pub fn delta(parties: usize) -> BigUint {
    let mut acc = BigUint::one();
    for k in 2..=parties as u64 {
        acc = acc.mul_u64(k);
    }
    acc
}

/// The integer Lagrange coefficient `λ^S_{0,i} = Δ · Π_{j∈S, j≠i} j/(j−i)`
/// (an exact integer thanks to the `Δ` factor).
///
/// `subset` holds the distinct 1-based indices in `S`; `i` must be in it.
pub fn lagrange_at_zero(subset: &[u64], i: u64, delta: &BigUint) -> BigInt {
    debug_assert!(subset.contains(&i));
    let mut num = BigInt::from_biguint(delta.clone());
    let mut den = BigInt::one();
    for &j in subset {
        if j == i {
            continue;
        }
        num = &num * &BigInt::from(j);
        den = &den * &BigInt::from(j as i64 - i as i64);
    }
    let (q, r) = num.div_rem(&den);
    debug_assert!(r.is_zero(), "Δ must clear the Lagrange denominator");
    q
}

/// Reconstructs `Δ · secret mod M` from `threshold` shares (sanity/test
/// helper; the production path interpolates in the exponent — see
/// [`crate::threshold`]).
pub fn reconstruct_delta_secret(shares: &[Share], parties: usize, modulus: &BigUint) -> BigUint {
    let d = delta(parties);
    let subset: Vec<u64> = shares.iter().map(|s| s.index).collect();
    let mut acc = BigInt::zero();
    for share in shares {
        let lambda = lagrange_at_zero(&subset, share.index, &d);
        acc = &acc + &(&lambda * &BigInt::from_biguint(share.value.clone()));
    }
    acc.mod_floor(modulus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn delta_is_factorial() {
        assert_eq!(delta(1), BigUint::one());
        assert_eq!(delta(5), BigUint::from(120u64));
        assert_eq!(delta(10), BigUint::from(3628800u64));
    }

    #[test]
    fn reconstruction_from_any_threshold_subset() {
        let mut rng = StdRng::seed_from_u64(1);
        let modulus = BigUint::from(1_000_003u64 * 999_983); // composite
        let secret = BigUint::from(123_456u64);
        let (t, l) = (3usize, 5usize);
        let shares = split(&secret, t, l, &modulus, &mut rng);
        let d = delta(l);
        let want = secret.mod_mul(&d, &modulus);

        // every 3-subset of the 5 shares reconstructs Δ·secret
        for a in 0..l {
            for b in a + 1..l {
                for c in b + 1..l {
                    let subset = vec![shares[a].clone(), shares[b].clone(), shares[c].clone()];
                    assert_eq!(
                        reconstruct_delta_secret(&subset, l, &modulus),
                        want,
                        "subset ({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn more_shares_than_threshold_also_work() {
        let mut rng = StdRng::seed_from_u64(2);
        let modulus = BigUint::from(7919u64 * 7907);
        let secret = BigUint::from(4242u64);
        let shares = split(&secret, 2, 4, &modulus, &mut rng);
        let got = reconstruct_delta_secret(&shares, 4, &modulus);
        assert_eq!(got, secret.mod_mul(&delta(4), &modulus));
    }

    #[test]
    fn single_party_degenerate_case() {
        let mut rng = StdRng::seed_from_u64(3);
        let modulus = BigUint::from(101u64);
        let secret = BigUint::from(60u64);
        let shares = split(&secret, 1, 1, &modulus, &mut rng);
        assert_eq!(shares[0].value, secret, "t=1 share is the secret itself");
        assert_eq!(
            reconstruct_delta_secret(&shares, 1, &modulus),
            secret,
            "Δ = 1! = 1"
        );
    }

    #[test]
    fn below_threshold_does_not_reconstruct() {
        // Statistical check: with t=3, two shares interpolated as if t were 2
        // give the wrong answer (overwhelmingly).
        let mut rng = StdRng::seed_from_u64(4);
        let modulus = BigUint::from(1_000_000_007u64);
        let secret = BigUint::from(5u64);
        let shares = split(&secret, 3, 5, &modulus, &mut rng);
        let got = reconstruct_delta_secret(&shares[..2], 5, &modulus);
        assert_ne!(got, secret.mod_mul(&delta(5), &modulus));
    }

    #[test]
    fn lagrange_coefficients_sum_property() {
        // Σ_i λ_{0,i} = Δ when interpolating the constant polynomial 1.
        let d = delta(4);
        let subset = [1u64, 2, 4];
        let sum = subset.iter().fold(BigInt::zero(), |acc, &i| {
            &acc + &lagrange_at_zero(&subset, i, &d)
        });
        assert_eq!(sum, BigInt::from_biguint(d));
    }

    #[test]
    #[should_panic(expected = "threshold cannot exceed parties")]
    fn invalid_threshold_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        split(&BigUint::one(), 6, 5, &BigUint::from(101u64), &mut rng);
    }
}
