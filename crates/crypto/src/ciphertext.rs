//! The [`Ciphertext`] wrapper type.

use cs_bigint::BigUint;
use serde::{Deserialize, Serialize};

/// A Damgård-Jurik ciphertext: an element of `Z*_{n^(s+1)}`.
///
/// The wrapper is deliberately opaque — homomorphic operations go through
/// [`crate::PublicKey`] so the modulus and Montgomery context are always the
/// right ones.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext(pub(crate) BigUint);

impl Ciphertext {
    /// The raw group element (for serialization and size accounting).
    pub fn as_biguint(&self) -> &BigUint {
        &self.0
    }

    /// Rebuilds a ciphertext from a raw group element.
    ///
    /// The caller is responsible for the value being a valid element of
    /// `Z*_{n^(s+1)}` for the intended key (deserialization path).
    pub fn from_biguint(v: BigUint) -> Self {
        Ciphertext(v)
    }

    /// Serialized size in bytes (minimal big-endian encoding).
    pub fn byte_len(&self) -> usize {
        self.0.byte_len()
    }
}

impl std::fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ciphertext({} bits)", self.0.bit_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_does_not_leak_value() {
        let c = Ciphertext::from_biguint(BigUint::from(123456789u64));
        let s = format!("{c:?}");
        assert!(!s.contains("123456789"));
    }

    #[test]
    fn serde_roundtrip() {
        let c = Ciphertext::from_biguint(BigUint::from(987654321u64));
        let json = serde_json::to_string(&c).unwrap();
        let back: Ciphertext = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
