//! # cs-crypto — the Damgård-Jurik cryptosystem, from scratch
//!
//! This crate implements the encryption substrate of Chiaroscuro (ICDE 2016):
//! the Damgård-Jurik generalization of Paillier's additively homomorphic
//! public-key scheme (Damgård & Jurik, PKC 2001), including:
//!
//! * key generation over an RSA modulus `n = p·q` with configurable bit
//!   length and Damgård-Jurik degree `s` (plaintext space `Z_{n^s}`,
//!   ciphertext space `Z*_{n^(s+1)}`); Paillier is the `s = 1` special case;
//! * encryption `c = (1+n)^m · r^(n^s) mod n^(s+1)` with the binomial
//!   expansion fast path for `(1+n)^m`;
//! * decryption via the Damgård-Jurik discrete-logarithm extraction;
//! * the homomorphic operations Chiaroscuro's Diptych needs: ciphertext
//!   addition, plaintext addition, scalar multiplication (including the
//!   power-of-two rescaling used by the homomorphic push-sum), negation, and
//!   re-randomization;
//! * **threshold decryption**: the secret exponent `d` (with `d ≡ 1 mod n^s`
//!   and `d ≡ 0 mod λ(n)`) is Shamir-shared among `l` parties; any `t` of
//!   them produce partial decryptions `c_i = c^(2Δ·s_i)` (`Δ = l!`) that are
//!   combined with integer Lagrange coefficients — no trusted decryptor, as
//!   the paper requires ("the decryption is performed collaboratively by any
//!   subset of participants provided it is sufficiently large");
//! * fixed-point encoding of real-valued time-series into `Z_{n^s}`;
//! * a measured cost profile used by the simulator's cost model, mirroring
//!   the demo's "actual average measures performed beforehand".
//!
//! The adversary model is the paper's: honest-but-curious participants. No
//! zero-knowledge proofs of correct partial decryption are attached (they
//! guard against active adversaries, out of scope here and in the paper).
//!
//! ## Example
//!
//! ```
//! use cs_crypto::{KeyPair, KeyGenOptions};
//! use cs_bigint::BigUint;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let kp = KeyPair::generate(&KeyGenOptions::insecure_test_size(), &mut rng);
//! let c1 = kp.public().encrypt(&BigUint::from(20u64), &mut rng);
//! let c2 = kp.public().encrypt(&BigUint::from(22u64), &mut rng);
//! let sum = kp.public().add(&c1, &c2);
//! assert_eq!(kp.private().decrypt(&sum), BigUint::from(42u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ciphertext;
pub mod cost;
mod damgard_jurik;
mod encoding;
mod error;
pub mod fastenc;
mod homomorphic;
mod keys;
pub mod packing;
pub mod shamir;
pub mod threshold;

pub use ciphertext::Ciphertext;
pub use cost::CryptoCostProfile;
pub use encoding::FixedPointCodec;
pub use error::CryptoError;
pub use fastenc::{FastEncryptor, PoolBank, RandomizerPool};
pub use keys::{KeyGenOptions, KeyPair, PrivateKey, PublicKey};
pub use packing::PackedCodec;
pub use threshold::{KeyShare, PartialDecryption, ThresholdKeyPair, ThresholdParams};
