//! Integration tests for the TCP socket transport: stream reassembly under
//! arbitrary kernel read fragmentation, and bytes-on-wire accounting parity
//! with the in-memory channel transport.

use cs_bigint::BigUint;
use cs_crypto::{Ciphertext, PartialDecryption};
use cs_net::tcp::{encode_record, FrameReassembler, TcpTransport, MAX_RECORD_LEN};
use cs_net::wire::{decode_frame, encode_frame, Message, WireError};
use cs_net::{ChannelTransport, LinkConfig, Transport};
use proptest::collection::vec;
use proptest::prelude::*;
use std::time::Duration;

/// A message whose frame size varies with the sampled raw bytes, covering
/// every traffic class.
fn build_message(variant: u8, iteration: u64, raw_slots: &[Vec<u8>], floats: &[f64]) -> Message {
    let cipher = |bytes: &Vec<u8>| Ciphertext::from_biguint(BigUint::from_bytes_le(bytes));
    match variant % 5 {
        0 => Message::EncryptedPush {
            iteration,
            denom_exp: 3,
            weight: 0.25,
            slots: raw_slots.iter().map(cipher).collect(),
        },
        1 => Message::PlainPush {
            iteration,
            weight: 0.5,
            slots: floats.to_vec(),
        },
        2 => Message::DecryptShare {
            iteration,
            partials: raw_slots
                .iter()
                .enumerate()
                .map(|(i, bytes)| {
                    PartialDecryption::from_parts(i as u64 + 1, BigUint::from_bytes_le(bytes))
                })
                .collect(),
        },
        3 => Message::TerminationVote {
            iteration,
            completed: true,
        },
        _ => Message::Leave { node: iteration },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The length-prefix reader's core guarantee: a stream of records split
    /// at *arbitrary* byte boundaries across successive reads reassembles
    /// into exactly the records that went in, and every carried frame
    /// decodes identically to its whole-frame decode.
    #[test]
    fn records_split_at_arbitrary_boundaries_decode_identically(
        specs in vec((0u8..5, any::<u64>(), vec(vec(any::<u8>(), 0..24), 0..5), vec(-1e9f64..1e9, 0..8)), 1..6),
        cuts in vec(1usize..64, 0..24),
    ) {
        // Build the ground truth and the concatenated byte stream.
        let mut messages = Vec::new();
        let mut stream = Vec::new();
        for (i, (variant, iteration, raw_slots, floats)) in specs.iter().enumerate() {
            let msg = build_message(*variant, *iteration, raw_slots, floats);
            let frame = encode_frame(&msg);
            stream.extend_from_slice(&encode_record(i, i + 1, &frame));
            messages.push(msg);
        }

        // Split the stream at the sampled boundaries (cuts wrap around the
        // remaining length, so every fragmentation pattern is reachable,
        // including 1-byte reads and reads spanning several records).
        let mut reassembler = FrameReassembler::new();
        let mut decoded = Vec::new();
        let mut pos = 0usize;
        let mut cut_idx = 0usize;
        while pos < stream.len() {
            let remaining = stream.len() - pos;
            let take = if cut_idx < cuts.len() {
                cuts[cut_idx].min(remaining)
            } else {
                remaining
            };
            cut_idx += 1;
            reassembler.push(&stream[pos..pos + take]);
            pos += take;
            while let Some(rec) = reassembler.next_record().unwrap() {
                decoded.push((rec.from, rec.to, decode_frame(&rec.frame).unwrap()));
            }
        }

        prop_assert_eq!(decoded.len(), messages.len());
        for (i, (from, to, msg)) in decoded.iter().enumerate() {
            prop_assert_eq!(*from, i);
            prop_assert_eq!(*to, i + 1);
            prop_assert_eq!(msg, &messages[i]);
        }
        prop_assert_eq!(reassembler.pending(), 0, "no leftover bytes");
    }

    /// A hostile 12-byte record header — fully attacker-controlled before
    /// any payload byte arrives — can never make the reassembler demand
    /// memory past [`MAX_RECORD_LEN`]: an oversized declaration is rejected
    /// with the typed error from the header alone, and anything within the
    /// cap either waits for its bytes or yields exactly the declared frame.
    #[test]
    fn random_record_headers_never_oversize_the_reassembler(
        from in any::<u32>(),
        to in any::<u32>(),
        body_len in any::<u32>(),
        junk in vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&from.to_le_bytes());
        bytes.extend_from_slice(&to.to_le_bytes());
        bytes.extend_from_slice(&body_len.to_le_bytes());
        bytes.extend_from_slice(&junk);
        let total = bytes.len();
        let mut reassembler = FrameReassembler::new();
        reassembler.push(&bytes);
        let declared = 12usize + body_len as usize;
        match reassembler.next_record() {
            Err(e) => {
                prop_assert!(declared > MAX_RECORD_LEN, "in-cap headers never error");
                prop_assert!(
                    matches!(e, WireError::RecordTooLarge(n) if n == declared),
                    "oversize must be the typed rejection"
                );
            }
            Ok(None) => {
                prop_assert!(declared <= MAX_RECORD_LEN);
                prop_assert!(total < declared, "a complete in-cap record must be released");
            }
            Ok(Some(rec)) => {
                prop_assert!(declared <= MAX_RECORD_LEN);
                prop_assert_eq!(rec.from, from as usize);
                prop_assert_eq!(rec.to, to as usize);
                prop_assert_eq!(rec.frame.len(), 4 + body_len as usize);
            }
        }
        // Buffered bytes stay bounded by what was actually pushed — the
        // declared length never drives an allocation.
        prop_assert!(reassembler.pending() <= total);
    }
}

/// The per-class accounting parity lock: for the same message sequence on a
/// lossless link, `TcpTransport::send` must report exactly the per-class
/// message and byte counts `ChannelTransport` reports — the byte count is
/// the wire frame's length in both, never the TCP record framing.
#[test]
fn tcp_send_accounting_matches_channel_transport() {
    let n = 4;
    let channel = ChannelTransport::new(n, LinkConfig::ideal(), 9);
    let tcp = TcpTransport::loopback(n, LinkConfig::ideal(), 9).unwrap();

    let messages = vec![
        (
            0,
            1,
            Message::PlainPush {
                iteration: 1,
                weight: 0.5,
                slots: vec![1.0, 2.0, 3.0],
            },
        ),
        (
            1,
            2,
            Message::EncryptedPush {
                iteration: 1,
                denom_exp: 2,
                weight: 0.25,
                slots: vec![Ciphertext::from_biguint(BigUint::from(123456789u64))],
            },
        ),
        (
            2,
            3,
            Message::DecryptRequest {
                iteration: 1,
                slots: vec![Ciphertext::from_biguint(BigUint::from(42u64))],
            },
        ),
        (
            3,
            0,
            Message::DecryptShare {
                iteration: 1,
                partials: vec![PartialDecryption::from_parts(1, BigUint::from(7u64))],
            },
        ),
        (
            0,
            2,
            Message::TerminationVote {
                iteration: 1,
                completed: true,
            },
        ),
        (
            1,
            3,
            Message::Join {
                node: 1,
                iteration: 1,
            },
        ),
        (2, 0, Message::Leave { node: 2 }),
    ];

    for (from, to, msg) in &messages {
        let frame = encode_frame(msg);
        let class = msg.class();
        let a = channel.send(*from, *to, frame.clone(), class).unwrap();
        let b = tcp.send(*from, *to, frame, class).unwrap();
        assert_eq!(a, b, "send must report the same bytes-on-wire");
        assert_eq!(a, msg.encoded_len(), "and both match encoded_len");
    }

    // Drain the TCP side so the comparison happens after real delivery —
    // the counters are send-side, but this proves the frames actually flew.
    let mut delivered = 0;
    for (_, to, _) in &messages {
        if tcp.recv_timeout(*to, Duration::from_secs(5)).is_some() {
            delivered += 1;
        }
    }
    assert_eq!(delivered, messages.len());

    let cs = channel.snapshot();
    let ts = tcp.snapshot();
    assert_eq!(cs.gossip, ts.gossip, "gossip class counters diverge");
    assert_eq!(cs.decrypt, ts.decrypt, "decrypt class counters diverge");
    assert_eq!(cs.control, ts.control, "control class counters diverge");
    assert_eq!(cs.messages(), messages.len() as u64);
    assert_eq!(cs.dropped(), 0);
    assert_eq!(ts.dropped(), 0);
}
